"""Drive the existing agent classes over real sockets.

The simulated engines hand each :class:`~repro.agents.base.FetchAction`
to an in-process handler; the swarm instead renders it as HTTP/1.1
wire bytes, sends it to a live :class:`~repro.serve.server.DetectorServer`
(or anything speaking HTTP on a socket), and feeds the framed response
back into the agent generator.  Agent behaviour — link-following,
robots.txt fetches, beacon loading, think times — is untouched; only
the transport changes.

Client identity: each socket comes from the same local address, so the
swarm carries the agent's simulated ``client_ip`` in ``X-Forwarded-For``
(the server trusts it by default).  That preserves the (IP, User-Agent)
session keys the detectors partition on, making a live run comparable
to a simulated one.

Think times are scaled by ``think_scale`` (default 0: full speed) and
capped, so a week-long simulated session replays against a live socket
in milliseconds while preserving inter-request ordering.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.agents.base import Agent, FetchAction, FetchResult
from repro.http.headers import Headers
from repro.http.message import Method, Request, Response, error_response
from repro.http.uri import Url
from repro.serve.http11 import HttpParseError, read_response
from repro.util.rng import RngStream
from repro.workload.mixes import mix_by_name


@dataclass(frozen=True)
class SwarmConfig:
    """Parameters for one swarm run."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Number of agent sessions to sample from the mix.
    sessions: int = 20
    mix_name: str = "codeen_week"
    seed: int = 2006
    #: Concurrent agent sessions in flight.
    concurrency: int = 16
    #: Multiplier on agent think times (0 disables sleeping entirely).
    think_scale: float = 0.0
    #: Upper bound on one scaled think sleep, in wall seconds.
    think_cap: float = 0.05
    #: Carry the agent's simulated IP in ``X-Forwarded-For``.
    forward_ip: bool = True
    #: Per-session request budget (mirrors ``SessionBudget``).
    max_requests: int = 500
    request_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.sessions < 0:
            raise ValueError("sessions must be non-negative")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.think_scale < 0:
            raise ValueError("think_scale must be non-negative")
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")


@dataclass
class AgentReport:
    """What one agent session did against the live server."""

    client_ip: str
    user_agent: str
    kind: str
    true_label: str
    requests: int = 0
    errors: int = 0
    statuses: dict[int, int] = field(default_factory=dict)


@dataclass
class SwarmResult:
    """All agent reports from one swarm run."""

    reports: list[AgentReport]

    @property
    def requests(self) -> int:
        return sum(r.requests for r in self.reports)

    @property
    def errors(self) -> int:
        return sum(r.errors for r in self.reports)

    def identities(self) -> dict[tuple[str, str], tuple[str, str]]:
        """(client_ip, user_agent) -> (kind, true label).

        Feed this to :meth:`DetectorServer.annotate_ground_truth` so the
        live trace carries the same synthetic ground truth a recorded
        workload would (CLF ``ident``/``authuser`` fields).
        """
        return {
            (r.client_ip, r.user_agent): (r.kind, r.true_label)
            for r in self.reports
        }

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.reports:
            counts[report.kind] = counts.get(report.kind, 0) + 1
        return counts


def render_request(
    method: Method,
    url: Url,
    headers: Headers,
) -> bytes:
    """Absolute-form HTTP/1.1 request bytes (the CoDeeN proxy idiom)."""
    lines = [f"{method.value} {url} HTTP/1.1", f"Host: {url.host}"]
    for name, value in headers:
        lines.append(f"{name}: {value}")
    if method is Method.POST and "Content-Length" not in headers:
        lines.append("Content-Length: 0")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class _Connection:
    """One keep-alive client connection, reopened on demand."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    async def round_trip(
        self, wire: bytes, head: bool, timeout: float
    ) -> tuple[int, Headers, bytes]:
        """Send one request, read one response; one reconnect retry."""
        for attempt in (0, 1):
            reader, writer = await self._ensure()
            try:
                writer.write(wire)
                await writer.drain()
                status, headers, body, keep_alive = await asyncio.wait_for(
                    read_response(reader, head=head), timeout
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                BrokenPipeError,
            ):
                # The server may have closed an idle keep-alive socket
                # between requests; retry exactly once on a fresh one.
                await self.close()
                if attempt:
                    raise
                continue
            if not keep_alive:
                await self.close()
            return status, headers, body
        raise ConnectionResetError("unreachable")  # pragma: no cover

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None


async def _drive_agent(
    agent: Agent, config: SwarmConfig, clock: list[float]
) -> AgentReport:
    """Run one agent's browse() generator against the live socket."""
    report = AgentReport(
        client_ip=agent.client_ip,
        user_agent=agent.user_agent,
        kind=agent.kind,
        true_label=agent.true_label,
    )
    connection = _Connection(config.host, config.port)
    generator = agent.browse()
    try:
        action = next(generator)
    except StopIteration:
        return report
    try:
        while True:
            if config.think_scale and action.think_time:
                await asyncio.sleep(
                    min(
                        action.think_time * config.think_scale,
                        config.think_cap,
                    )
                )
            result, transport_error = await _fetch(
                agent, action, config, connection, clock
            )
            report.requests += 1
            status = result.response.status
            report.statuses[status] = report.statuses.get(status, 0) + 1
            if transport_error:
                report.errors += 1
            if report.requests >= config.max_requests:
                break
            try:
                action = generator.send(result)
            except StopIteration:
                break
    finally:
        generator.close()
        await connection.close()
    return report


async def _fetch(
    agent: Agent,
    action: FetchAction,
    config: SwarmConfig,
    connection: _Connection,
    clock: list[float],
) -> tuple[FetchResult, bool]:
    """One fetch over the socket; the bool flags a transport failure."""
    headers = Headers([("User-Agent", agent.user_agent)])
    if action.referer:
        headers.set("Referer", action.referer)
    for name, value in action.extra_headers:
        headers.set(name, value)
    if config.forward_ip:
        headers.set("X-Forwarded-For", agent.client_ip)

    clock[0] += 1.0
    timestamp = clock[0]
    try:
        url = Url.parse(action.url)
    except ValueError:
        # Mirror SessionCursor._perform: a malformed URL never leaves a
        # real client; answer locally so the agent script continues.
        fallback = Url.parse(agent.entry_url).with_path("/__bad_request__")
        request = Request(
            method=action.method,
            url=fallback,
            client_ip=agent.client_ip,
            headers=headers,
            timestamp=timestamp,
        )
        return FetchResult(request, error_response(400, "malformed URL")), False

    request = Request(
        method=action.method,
        url=url,
        client_ip=agent.client_ip,
        headers=headers,
        timestamp=timestamp,
    )
    wire = render_request(action.method, url, headers)
    head = action.method is Method.HEAD
    try:
        status, response_headers, body = await connection.round_trip(
            wire, head, config.request_timeout
        )
        response = Response(
            status=status, headers=response_headers, body=body
        )
    except (
        ConnectionError,
        OSError,
        asyncio.TimeoutError,
        asyncio.IncompleteReadError,
        HttpParseError,
    ):
        # Transport failure: hand the agent a synthetic 503 so its
        # script can carry on; the report counts it as an error.
        await connection.close()
        return (
            FetchResult(
                request, error_response(503, "swarm transport failure")
            ),
            True,
        )
    return FetchResult(request, response), False


async def run_swarm(config: SwarmConfig, entry_url: str) -> SwarmResult:
    """Sample a population mix and drive every agent over sockets."""
    mix = mix_by_name(config.mix_name)
    agents = mix.sample_many(
        RngStream(config.seed, "serve-swarm"), entry_url, config.sessions
    )
    semaphore = asyncio.Semaphore(config.concurrency)
    clock = [0.0]

    async def bounded(agent: Agent) -> AgentReport:
        async with semaphore:
            return await _drive_agent(agent, config, clock)

    reports = await asyncio.gather(*(bounded(agent) for agent in agents))
    return SwarmResult(reports=list(reports))


def drive_swarm(config: SwarmConfig, entry_url: str) -> SwarmResult:
    """Synchronous wrapper: run the swarm on a private event loop."""
    return asyncio.run(run_swarm(config, entry_url))
