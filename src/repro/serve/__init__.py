"""Live socket front door: the detection pipeline behind real HTTP.

The paper's detector sat inline on real CoDeeN proxies; this package
puts the repo's pipeline in the same position.  :mod:`repro.serve.http11`
frames raw bytes into the existing :class:`~repro.http.message.Request`
and :class:`~repro.http.message.Response` models,
:mod:`repro.serve.server` mounts a :class:`~repro.proxy.network.ProxyNetwork`
behind ``asyncio.start_server`` with live CLF logging, and
:mod:`repro.serve.swarm` drives the existing agent classes over real
sockets so a live run can be load-tested and replayed.
"""

from repro.serve.http11 import (
    Http11Limits,
    HttpParseError,
    ParsedRequest,
    read_request,
    read_response,
    render_response,
)
from repro.serve.server import DetectorServer, ServeConfig
from repro.serve.swarm import SwarmConfig, SwarmResult, drive_swarm, run_swarm

__all__ = [
    "DetectorServer",
    "Http11Limits",
    "HttpParseError",
    "ParsedRequest",
    "ServeConfig",
    "SwarmConfig",
    "SwarmResult",
    "drive_swarm",
    "read_request",
    "read_response",
    "render_response",
    "run_swarm",
]
