"""Byte-level HTTP/1.1 framing for the live front door.

The bridge between raw sockets and the repo's message models: a
streaming request parser that produces :class:`~repro.http.message.Method`
/ :class:`~repro.http.uri.Url` / :class:`~repro.http.headers.Headers`
values, and a response writer that renders a
:class:`~repro.http.message.Response` back to wire bytes.

Real clients send bytes the simulated path never does, so every
malformed input maps to a definite status instead of a traceback:

* ``400`` — malformed request line, header or target, truncated body;
* ``413`` — declared body larger than the limit;
* ``431`` — request line or header block over the byte limits;
* ``501`` — a method outside the paper's feature set (GET/HEAD/POST),
  or a transfer coding this server does not implement;
* ``505`` — an HTTP version other than 1.0/1.1.

Both request-target forms are accepted: absolute-form
(``GET http://host/x HTTP/1.1``, the proxy idiom CoDeeN clients used)
and origin-form (``GET /x``) resolved against the ``Host`` header or a
configured default host.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.http.headers import Headers
from repro.http.message import Method, Response
from repro.http.status import describe_status
from repro.http.uri import Url

#: HTTP versions this server speaks.
_SUPPORTED_VERSIONS = ("HTTP/1.0", "HTTP/1.1")

#: Hop-by-hop headers that describe the connection, not the message;
#: never copied into the pipeline-facing request or the wire response.
_HOP_BY_HOP = frozenset(
    (
        "connection",
        "keep-alive",
        "proxy-connection",
        "te",
        "transfer-encoding",
        "upgrade",
    )
)

#: Stripped from the pipeline-facing request view: hop-by-hop fields
#: plus message-framing metadata already folded into the parsed target
#: and body.  The pipeline then sees the same header set a replayed
#: trace record rebuilds (they survive in ``raw_headers``).
_FRAMING_HEADERS = _HOP_BY_HOP | frozenset(("host", "content-length"))


class HttpParseError(ValueError):
    """A request could not be framed; ``status`` is the refusal code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class Http11Limits:
    """Byte budgets for one parsed request."""

    max_request_line: int = 8192
    max_header_bytes: int = 32768
    max_headers: int = 100
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        for name in (
            "max_request_line",
            "max_header_bytes",
            "max_headers",
            "max_body_bytes",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclass
class ParsedRequest:
    """One framed request, ready to become a pipeline ``Request``."""

    method: Method
    url: Url
    headers: Headers
    version: str
    keep_alive: bool
    body: bytes = b""
    #: Wall seconds spent framing after the request line arrived
    #: (excludes keep-alive idle time between requests).
    parse_seconds: float = 0.0
    #: Raw header entries including hop-by-hop fields, for callers that
    #: need connection semantics (the pipeline view in ``headers`` has
    #: them stripped).
    raw_headers: Headers = field(default_factory=Headers)


async def _read_line(
    reader: asyncio.StreamReader, max_bytes: int, status: int, what: str
) -> str | None:
    """One CRLF/LF-terminated line, or None on clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpParseError(
            400, f"connection closed mid-{what}"
        ) from None
    except asyncio.LimitOverrunError:
        raise HttpParseError(status, f"{what} too long") from None
    if len(line) > max_bytes:
        raise HttpParseError(status, f"{what} too long")
    return line.decode("latin-1").rstrip("\r\n")


async def read_request(
    reader: asyncio.StreamReader,
    default_host: str | None = None,
    limits: Http11Limits | None = None,
) -> ParsedRequest | None:
    """Frame one request off the stream.

    Returns ``None`` on clean EOF before any bytes (the peer closed a
    keep-alive connection); raises :class:`HttpParseError` on anything
    malformed.  The returned ``headers`` are the pipeline view (hop-by-
    hop fields stripped); connection semantics are already folded into
    ``keep_alive``.
    """
    limits = limits or Http11Limits()
    line = await _read_line(
        reader, limits.max_request_line, 431, "request line"
    )
    if line is None:
        return None
    # Tolerate a stray CRLF between pipelined requests (RFC 9112 §2.2).
    if not line:
        line = await _read_line(
            reader, limits.max_request_line, 431, "request line"
        )
        if line is None:
            return None
    started = time.perf_counter()

    parts = line.split(" ")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise HttpParseError(400, f"malformed request line: {line[:120]}")
    method_text, target, version = parts
    if version not in _SUPPORTED_VERSIONS:
        raise HttpParseError(505, f"unsupported HTTP version: {version}")
    try:
        method = Method(method_text.upper())
    except ValueError:
        raise HttpParseError(
            501, f"method not implemented: {method_text[:32]}"
        ) from None

    raw_headers = Headers()
    header_bytes = 0
    while True:
        header_line = await _read_line(
            reader, limits.max_header_bytes, 431, "header line"
        )
        if header_line is None:
            raise HttpParseError(400, "connection closed inside headers")
        if not header_line:
            break
        header_bytes += len(header_line) + 2
        if header_bytes > limits.max_header_bytes:
            raise HttpParseError(431, "header block too large")
        if len(raw_headers) >= limits.max_headers:
            raise HttpParseError(431, "too many header fields")
        if header_line[0] in " \t":
            # Obsolete line folding: deliberately refused (RFC 9112 §5.2).
            raise HttpParseError(400, "folded header field")
        name, sep, value = header_line.partition(":")
        name = name.strip()
        if not sep or not name:
            raise HttpParseError(
                400, f"malformed header field: {header_line[:120]}"
            )
        raw_headers.add(name, value.strip())

    url = _resolve_target(target, raw_headers, default_host)
    body = await _read_body(reader, raw_headers, limits)
    keep_alive = _keep_alive(version, raw_headers)

    headers = Headers(
        (name, value)
        for name, value in raw_headers
        if name.lower() not in _FRAMING_HEADERS
    )
    return ParsedRequest(
        method=method,
        url=url,
        headers=headers,
        version=version,
        keep_alive=keep_alive,
        body=body,
        parse_seconds=time.perf_counter() - started,
        raw_headers=raw_headers,
    )


def _resolve_target(
    target: str, headers: Headers, default_host: str | None
) -> Url:
    if target.startswith("/"):
        host = headers.get("Host") or default_host
        if not host:
            raise HttpParseError(
                400, "origin-form target needs a Host header"
            )
        target = f"http://{host}{target}"
    try:
        return Url.parse(target)
    except ValueError as exc:
        raise HttpParseError(400, f"bad request target: {exc}") from None


async def _read_body(
    reader: asyncio.StreamReader, headers: Headers, limits: Http11Limits
) -> bytes:
    if "Transfer-Encoding" in headers:
        raise HttpParseError(
            501, "transfer codings are not implemented"
        )
    declared = headers.get("Content-Length")
    if declared is None:
        return b""
    try:
        length = int(declared)
    except ValueError:
        raise HttpParseError(
            400, f"bad Content-Length: {declared[:32]}"
        ) from None
    if length < 0:
        raise HttpParseError(400, "negative Content-Length")
    if length > limits.max_body_bytes:
        raise HttpParseError(413, "request body too large")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HttpParseError(400, "truncated request body") from None


def _keep_alive(version: str, headers: Headers) -> bool:
    tokens = {
        token.strip().lower()
        for value in headers.get_all("Connection")
        for token in value.split(",")
    }
    if version == "HTTP/1.0":
        return "keep-alive" in tokens
    return "close" not in tokens


def render_response(
    response: Response,
    head: bool = False,
    keep_alive: bool = True,
) -> bytes:
    """Render a pipeline :class:`Response` as HTTP/1.1 wire bytes.

    Always emits an explicit ``Content-Length`` (the body length even
    for HEAD, per RFC 9110 §9.3.2) and a ``Connection`` header, so the
    peer never needs read-until-close framing.
    """
    lines = [f"HTTP/1.1 {describe_status(response.status)}"]
    for name, value in response.headers:
        if name.lower() in _HOP_BY_HOP or name.lower() == "content-length":
            continue
        lines.append(f"{name}: {value}")
    lines.append(f"Content-Length: {len(response.body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    wire = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    if not head:
        wire += response.body
    return wire


async def read_response(
    reader: asyncio.StreamReader, head: bool = False
) -> tuple[int, Headers, bytes, bool]:
    """Client-side framing: one response off the stream.

    Returns ``(status, headers, body, keep_alive)``.  Relies on the
    explicit ``Content-Length`` this server always writes; with
    ``head`` the declared length is not read (HEAD responses carry
    none).  Raises :class:`HttpParseError` on malformed bytes and
    ``ConnectionError``/``asyncio.IncompleteReadError`` on early close.
    """
    line = await _read_line(reader, 8192, 431, "status line")
    if line is None:
        raise ConnectionResetError("connection closed before status line")
    parts = line.split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise HttpParseError(400, f"malformed status line: {line[:120]}")
    version, status_text = parts[0], parts[1]
    if version not in _SUPPORTED_VERSIONS:
        raise HttpParseError(505, f"unsupported HTTP version: {version}")
    status = int(status_text)

    headers = Headers()
    while True:
        header_line = await _read_line(reader, 32768, 431, "header line")
        if header_line is None:
            raise HttpParseError(400, "connection closed inside headers")
        if not header_line:
            break
        name, sep, value = header_line.partition(":")
        if not sep or not name.strip():
            raise HttpParseError(
                400, f"malformed header field: {header_line[:120]}"
            )
        headers.add(name.strip(), value.strip())

    body = b""
    declared = headers.get("Content-Length")
    if declared is not None and not head:
        try:
            length = int(declared)
        except ValueError:
            raise HttpParseError(
                400, f"bad Content-Length: {declared[:32]}"
            ) from None
        if length:
            body = await reader.readexactly(length)
    elif declared is None and not head:
        body = await reader.read()

    connection = (headers.get("Connection") or "").lower()
    keep_alive = "close" not in connection
    return status, headers, body, keep_alive
