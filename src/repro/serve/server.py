"""The live front door: a proxy network behind ``asyncio.start_server``.

:class:`DetectorServer` mounts an existing
:class:`~repro.proxy.network.ProxyNetwork` — instrumentation rewriter,
admission, sharded detection, CAPTCHA policy and all — on a real
listening socket.  Each connection is framed by
:mod:`repro.serve.http11`; each admitted request is stamped onto the
server's virtual clock and handled by its sticky node on a thread
executor, serialized per node by an asyncio lock so node state needs no
extra synchronisation (the lane-per-shard discipline, transplanted to
sockets).

Determinism across the socket boundary: timestamps are strictly
increasing microseconds assigned on the event loop, so sorting the live
CLF log reproduces exactly the per-node handling order the live run
used — replaying the log through a fresh network yields the same
census and verdict set (the record→replay invariance, now bridged over
TCP).  To keep that bridge intact the trace logs only requests that
reached a node: admission sheds and the server-local CAPTCHA endpoints
never entered detection, so they are counted in metrics but stay out
of the log (the same out-of-band funnel the record CLI documents).

Client identity: every socket shows the peer address, so the server can
trust ``X-Forwarded-For`` (on by default — the swarm and any fronting
load balancer put the real client there).  Disable it when serving
untrusted peers directly.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.captcha.challenge import CHALLENGE_PATH
from repro.http.headers import Headers
from repro.http.message import (
    Method,
    Request,
    Response,
    error_response,
    html_response,
)
from repro.obs.sockets import ServeMetrics
from repro.serve.http11 import (
    Http11Limits,
    HttpParseError,
    ParsedRequest,
    read_request,
    render_response,
)
from repro.trace.clf import (
    TraceRecord,
    format_clf_line,
    open_trace_file,
    write_trace,
)
from repro.trace.recorder import ProbeRecord, write_probe_journal

if TYPE_CHECKING:
    from repro.overload.admission import AdaptiveConfig
    from repro.overload.ladder import LadderConfig
    from repro.proxy.network import ProxyNetwork

#: Server-local CAPTCHA verification endpoint (the challenge page posts
#: here); lives next to the ladder's CHALLENGE_PATH redirect target.
VERIFY_PATH = "/__captcha__/verify"

#: The token a solver must echo back.  A stand-in for a distorted-text
#: test: the *transport* of the funnel is real, the puzzle is not.
_CHALLENGE_TOKEN = "not-a-robot"

_CHALLENGE_PAGE = f"""<html><body>
<h1>Are you human?</h1>
<form method="POST" action="{VERIFY_PATH}">
<p>Type <b>{_CHALLENGE_TOKEN}</b> to continue:</p>
<input name="answer" autofocus>
<button>Submit</button>
</form>
</body></html>"""


@dataclass(frozen=True)
class ServeConfig:
    """Front-door parameters."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Idle seconds before a keep-alive connection is dropped.
    keep_alive_timeout: float = 15.0
    max_requests_per_connection: int = 1000
    #: Resolve client identity from ``X-Forwarded-For`` when present.
    trust_forwarded_for: bool = True
    #: Live CLF access log (``.gz`` compresses); None keeps it in
    #: memory only (``server.records``).
    trace_path: str | None = None
    #: Probe journal written at close; None skips it.
    probes_path: str | None = None
    #: Handler threads; per-node locks serialize each node, so this
    #: bounds cross-node parallelism.
    handler_threads: int = 4
    #: Admission policy: "block" queues on the node lock, "shed"
    #: refuses (503) once a node's backlog hits ``max_pending_per_node``,
    #: "adaptive" runs the delay-budget controller per node lane.
    policy: str = "block"
    max_pending_per_node: int = 64
    adaptive: "AdaptiveConfig | None" = None
    #: Enable the graduated response ladder on every node, escalated
    #: from live detection verdicts; the CAPTCHA endpoints feed
    #: exonerations/condemnations back per client IP.
    ladder: "LadderConfig | None" = None
    #: Wall seconds between node housekeeping sweeps (0 disables).
    housekeeping_interval: float = 600.0
    limits: Http11Limits = field(default_factory=Http11Limits)

    def __post_init__(self) -> None:
        if self.policy not in ("block", "shed", "adaptive"):
            raise ValueError(
                f"policy must be block/shed/adaptive, got {self.policy!r}"
            )
        if self.policy == "adaptive" and self.adaptive is None:
            object.__setattr__(self, "policy", "adaptive")
        if self.keep_alive_timeout <= 0:
            raise ValueError("keep_alive_timeout must be positive")
        if self.max_requests_per_connection < 1:
            raise ValueError("max_requests_per_connection must be >= 1")
        if self.max_pending_per_node < 1:
            raise ValueError("max_pending_per_node must be >= 1")
        if self.housekeeping_interval < 0:
            raise ValueError("housekeeping_interval must be non-negative")


class DetectorServer:
    """Serve a proxy network's request path over real sockets."""

    def __init__(
        self,
        network: "ProxyNetwork",
        default_host: str | None = None,
        config: ServeConfig | None = None,
    ) -> None:
        self._network = network
        self._default_host = default_host
        self._config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self._server: asyncio.base_events.Server | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._locks = [asyncio.Lock() for _ in network.nodes]
        self._pending = [0] * len(network.nodes)
        #: EWMA of per-node handle seconds, seeding the adaptive
        #: controller's predicted queue delay.
        self._ewma = [0.005] * len(network.nodes)
        self._controller = None
        if self._config.policy == "adaptive":
            from repro.overload.admission import (
                AdaptiveConfig,
                DelayBudgetController,
            )

            self._controller = DelayBudgetController(
                self._config.adaptive or AdaptiveConfig(),
                lanes=len(network.nodes),
                metrics=self.metrics.registry,
            )
        self._epoch: float | None = None
        self._last_us = 0
        self._open_connections = 0
        self._trace_handle = None
        self._housekeeper: asyncio.Task | None = None
        #: Every exchange that reached a node, in completion order
        #: (the live log holds the same lines, streamed).
        self.records: list[TraceRecord] = []
        self.probes: list[ProbeRecord] = []
        self._identities: dict[tuple[str, str], tuple[str, str]] = {}
        self.requests_handled = 0
        self.parse_errors = 0
        self.shed_count = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and arm the pipeline attachments."""
        if self._server is not None:
            raise RuntimeError("server already started")
        cfg = self._config
        self._epoch = time.monotonic()
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.handler_threads,
            thread_name_prefix="repro-serve",
        )
        if cfg.ladder is not None:
            for node in self._network.nodes:
                node.enable_ladder(cfg.ladder)
        for node in self._network.nodes:
            node.detection.registry.add_listener(self._observe_probe)
        if cfg.trace_path is not None:
            self._trace_handle = open_trace_file(cfg.trace_path, "wt")
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port
        )
        if cfg.housekeeping_interval:
            self._housekeeper = asyncio.get_running_loop().create_task(
                self._housekeeping_loop()
            )

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        """``http://host:port`` of the listening socket."""
        return f"http://{self._config.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Serve until cancelled."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, flush the trace, write the probe journal."""
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            try:
                await self._housekeeper
            except asyncio.CancelledError:
                pass
            self._housekeeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for node in self._network.nodes:
            node.detection.registry.remove_listener(self._observe_probe)
        if self._trace_handle is not None:
            self._trace_handle.close()
            self._trace_handle = None
            if self._identities and self._config.trace_path is not None:
                # The live stream was written before identities were
                # known; rewrite it sorted and annotated at shutdown.
                write_trace(self._config.trace_path, self.sorted_records())
        if self._config.probes_path is not None:
            write_probe_journal(
                self._config.probes_path, self.sorted_probes()
            )

    # -- results ------------------------------------------------------------

    def annotate_ground_truth(
        self, identities: dict[tuple[str, str], tuple[str, str]]
    ) -> None:
        """Learn ``(client_ip, user_agent) -> (kind, label)`` identities.

        Typically fed from :meth:`SwarmResult.identities`.  Applied when
        records are read back (and to the trace file at :meth:`close`),
        writing the synthetic ground truth into the CLF ``ident`` /
        ``authuser`` fields exactly like a recorded workload would.
        """
        self._identities.update(identities)

    def sorted_records(self) -> list[TraceRecord]:
        """Captured exchanges in timestamp order (stamps are unique),
        annotated with any learned ground truth."""
        records = []
        for record in self.records:
            identity = self._identities.get(
                (record.client_ip, record.user_agent)
            )
            if identity is not None:
                record = record.with_ground_truth(*identity)
            records.append(record)
        records.sort(key=lambda r: r.timestamp)
        return records

    def sorted_probes(self) -> list[ProbeRecord]:
        """Journalled registrations in issue order."""
        return sorted(self.probes, key=lambda p: p.issued_at)

    def finalize_sessions(self):
        """Finalize the network's sessions (call after traffic stops).

        Any identities learned via :meth:`annotate_ground_truth` are
        backfilled onto the finalized sessions, exactly as the replay
        engine does for records carrying ground truth.
        """
        from repro.workload.results import apply_session_identities

        sessions = self._network.finalize_sessions()
        apply_session_identities(sessions, self._identities)
        return sessions

    def session_summary(self):
        """Set-algebra summary (after :meth:`finalize_sessions`)."""
        return self._network.session_sets().summary()

    # -- connection handling ------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        m = self.metrics
        m.connections.inc()
        self._open_connections += 1
        m.open_connections.set(self._open_connections)
        peer = writer.get_extra_info("peername")
        peer_ip = peer[0] if peer else "0.0.0.0"
        accepted = time.perf_counter()
        served = 0
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        read_request(
                            reader,
                            default_host=self._default_host,
                            limits=self._config.limits,
                        ),
                        timeout=self._config.keep_alive_timeout,
                    )
                except asyncio.TimeoutError:
                    m.timeouts.inc()
                    break
                except HttpParseError as exc:
                    self.parse_errors += 1
                    m.note_parse_error(exc.status)
                    await self._write(
                        writer,
                        error_response(exc.status, exc.message),
                        head=False,
                        keep_alive=False,
                    )
                    break
                except (ConnectionResetError, OSError):
                    break
                if parsed is None:
                    break
                served += 1
                if served == 1:
                    m.observe_stage(
                        "accept", time.perf_counter() - accepted
                    )
                else:
                    m.keepalive_reuses.inc()
                m.observe_stage("parse", parsed.parse_seconds)
                keep_alive = (
                    parsed.keep_alive
                    and served < self._config.max_requests_per_connection
                )
                response, head = await self._dispatch(parsed, peer_ip)
                try:
                    await self._write(
                        writer, response, head=head, keep_alive=keep_alive
                    )
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
                if not keep_alive:
                    break
        finally:
            self._open_connections -= 1
            m.open_connections.set(self._open_connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        head: bool,
        keep_alive: bool,
    ) -> None:
        started = time.perf_counter()
        writer.write(render_response(response, head=head, keep_alive=keep_alive))
        await writer.drain()
        self.metrics.observe_stage("write", time.perf_counter() - started)

    # -- request dispatch ---------------------------------------------------

    async def _dispatch(
        self, parsed: ParsedRequest, peer_ip: str
    ) -> tuple[Response, bool]:
        cfg = self._config
        m = self.metrics
        head = parsed.method is Method.HEAD
        client_ip = peer_ip
        if cfg.trust_forwarded_for:
            forwarded = parsed.headers.get("X-Forwarded-For")
            if forwarded:
                client_ip = forwarded.split(",")[0].strip() or peer_ip
                # Consumed as addressing metadata; the pipeline sees the
                # same header set a replayed trace record will rebuild.
                parsed.headers.remove("X-Forwarded-For")
        request = Request(
            method=parsed.method,
            url=parsed.url,
            client_ip=client_ip,
            headers=parsed.headers,
            timestamp=self._stamp(),
        )

        if request.url.path.startswith("/__captcha__"):
            response = self._captcha(request, parsed.body)
            m.note_request(response.status)
            return response, head

        index = self._network.node_index_for(client_ip)
        if not self._admit(index, client_ip):
            self.shed_count += 1
            m.shed.inc()
            response = error_response(
                503, "overloaded: request shed at admission"
            )
            response.headers.set("Retry-After", "1")
            m.note_request(response.status)
            return response, head

        node = self._network.nodes[index]
        self._pending[index] += 1
        try:
            async with self._locks[index]:
                started = time.perf_counter()
                response = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self._handle_on_node, node, request
                )
                elapsed = time.perf_counter() - started
        finally:
            self._pending[index] -= 1
        self._ewma[index] += 0.2 * (elapsed - self._ewma[index])
        m.observe_stage("handle", elapsed)

        for tap in self._network.taps:
            tap(request, response)
        self._log(request, response)
        self.requests_handled += 1
        m.note_request(response.status)
        return response, head

    def _handle_on_node(self, node, request: Request) -> Response:
        """Runs on the handler pool, serialized by the node's lock."""
        response, outcome = node.handle_traced(request)
        if self._config.ladder is not None and outcome is not None:
            verdict = outcome.verdict
            if verdict is not None:
                from repro.detection.verdict import Label

                ladder = node.ladder_for(request.client_ip)
                if ladder is not None:
                    ladder.observe_verdict(
                        request.client_ip,
                        -1.0 if verdict.label is Label.ROBOT else 1.0,
                        request.timestamp,
                    )
        return response

    def _admit(self, index: int, client_ip: str) -> bool:
        cfg = self._config
        if cfg.policy == "shed":
            return self._pending[index] < cfg.max_pending_per_node
        if self._controller is not None:
            predicted = (self._pending[index] + 1) * self._ewma[index]
            return self._controller.admit(index, client_ip, predicted)
        return True

    # -- CAPTCHA funnel -----------------------------------------------------

    def _captcha(self, request: Request, body: bytes) -> Response:
        """Serve the ladder's challenge page and its verify endpoint.

        Out-of-band by design: these exchanges feed the ladder, not the
        detectors, and leave no access-log footprint (the record CLI
        documents the same property for the simulated funnel).
        """
        if request.url.path == CHALLENGE_PATH:
            return html_response(_CHALLENGE_PAGE, uncacheable=True)
        if request.url.path == VERIFY_PATH:
            answer = _form_field(
                body.decode("latin-1") if body else request.url.query,
                "answer",
            )
            passed = answer == _CHALLENGE_TOKEN
            node = self._network.node_for(request.client_ip)
            ladder = node.ladder_for(request.client_ip)
            if ladder is not None:
                ladder.note_captcha_result(
                    request.client_ip, passed, request.timestamp
                )
            if passed:
                response = Response(
                    status=302, headers=Headers([("Location", "/")])
                )
                return response
            return error_response(403, "challenge failed")
        return error_response(404)

    # -- plumbing -----------------------------------------------------------

    def _stamp(self) -> float:
        """Next virtual timestamp: strictly increasing microseconds.

        Assigned on the event loop, so stamp order is exactly the order
        requests enter their per-node locks — which makes the sorted
        trace replay in the same per-node order the live run handled.
        """
        assert self._epoch is not None
        now_us = int((time.monotonic() - self._epoch) * 1_000_000)
        if now_us <= self._last_us:
            now_us = self._last_us + 1
        self._last_us = now_us
        return now_us / 1_000_000

    def _log(self, request: Request, response: Response) -> None:
        record = TraceRecord.from_exchange(request, response)
        self.records.append(record)
        if self._trace_handle is not None:
            self._trace_handle.write(format_clf_line(record))
            self._trace_handle.write("\n")

    def _observe_probe(self, probe) -> None:
        # Registry listener; fires on handler threads (list.append is
        # atomic under the GIL).
        self.probes.append(ProbeRecord.from_probe(probe))

    async def _housekeeping_loop(self) -> None:
        interval = self._config.housekeeping_interval
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            for index, node in enumerate(self._network.nodes):
                async with self._locks[index]:
                    await loop.run_in_executor(
                        self._pool, node.housekeeping, self._stamp()
                    )


def _form_field(encoded: str, name: str) -> str | None:
    """Minimal ``application/x-www-form-urlencoded`` field lookup."""
    for pair in encoded.split("&"):
        key, sep, value = pair.partition("=")
        if sep and key == name:
            return _unquote_plus(value)
    return None


def _unquote_plus(value: str) -> str:
    value = value.replace("+", " ")
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "%" and index + 2 < len(value) + 1:
            hex_part = value[index + 1 : index + 3]
            try:
                out.append(chr(int(hex_part, 16)))
                index += 3
                continue
            except ValueError:
                pass
        out.append(char)
        index += 1
    return "".join(out)
