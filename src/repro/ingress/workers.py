"""Lane workers: the per-lane consumers the executors drive.

A lane wraps one self-contained unit of state: a whole
:class:`~repro.proxy.node.ProxyNode` (the classic one-lane-per-node
layout) or, since the state-partitioning refactor, a single
:class:`~repro.proxy.node.NodeShard` — one detection shard plus its
own probe-registry, cache and rate-limiter partitions.  Either way the
containment property holds: a lane's events touch that lane's state
only, which is what makes lanes safe to run on threads or in separate
processes with no locks and no cross-talk.  The two classes expose the
same surface (``handle_traced``, ``detection``, ``metrics``, ``stats``,
``housekeeping``, ``metrics_snapshot``), so workers are agnostic to
lane granularity.

Two worker flavours:

* :class:`ReplayLaneWorker` consumes trace events — requests and
  probe-journal registrations — in admission order, sweeping its node's
  housekeeping on the lane's own event clock and feeding every handled
  exchange to the lane's :class:`~repro.ingress.batcher.MicroBatcher`.
* :class:`WorkloadLaneWorker` consumes *session* events (agent + start
  time), then drives them through the node with the interleaved
  event-time scheduler at finish, annotating ground truth and running
  the CAPTCHA funnel exactly like the synchronous engine — per-IP RNG
  splits make those outcomes independent of which lane a session
  landed on.

Both return a picklable :class:`LaneResult`, so the same worker code
runs inline, on a thread, or inside a process-pool child.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.captcha.challenge import CaptchaOutcome
from repro.captcha.service import CaptchaConfig, CaptchaService, CaptchaStats
from repro.detection.online import DetectionLatency
from repro.detection.session import SessionState
from repro.detection.verdict import Label
from repro.ingress.batcher import MicroBatchConfig, MicroBatcher
from repro.ml.adaboost import AdaBoostModel
from repro.ml.batch import BatchVerdict
from repro.ml.dataset import SessionExample
from repro.obs.flight import FlightFrame, FlightRecorder
from repro.obs.registry import (
    EVENT_SECONDS_BUCKETS,
    WALL_SECONDS_BUCKETS,
    MetricsSnapshot,
)
from repro.obs.spans import (
    QueueDelayEstimator,
    SpanConfig,
    SpanTracer,
    SpanTree,
    TailSampler,
)
from repro.overload.ladder import LADDER_HEADER, LadderConfig
from repro.proxy.node import NodeShard, NodeStats, ProxyNode
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRecord

#: Event tags admitted through the ingress queues.
REQUEST_EVENT = "request"
PROBE_EVENT = "probe"
SESSION_EVENT = "session"


@dataclass
class LaneResult:
    """Everything one lane produced, picklable for process executors."""

    lane: int
    stats: NodeStats
    sessions: list[SessionState] = field(default_factory=list)
    latencies: list[DetectionLatency] = field(default_factory=list)
    ml_verdicts: list[BatchVerdict] = field(default_factory=list)
    handled: int = 0
    probes_loaded: int = 0
    first_timestamp: float | None = None
    last_timestamp: float | None = None
    #: Workload lanes only: (original index, record/example) pairs and
    #: the lane's CAPTCHA funnel counters.
    records: list[tuple[int, SessionRecord]] | None = None
    examples: list[tuple[int, SessionExample]] | None = None
    captcha_stats: CaptchaStats | None = None
    #: The lane registry's final snapshot and its flight-recorder frames
    #: (both picklable, so they ship back from process-executor lanes).
    metrics: MetricsSnapshot | None = None
    flight: list[FlightFrame] = field(default_factory=list)
    #: Tail-sampled span trees this lane retained (picklable; merged in
    #: lane order like metrics).
    spans: list[SpanTree] = field(default_factory=list)
    #: Graduated-response ladder export for this lane's IPs (None when
    #: the ladder was not enabled); merged across lanes by plain union.
    ladder: dict | None = None


def _request_flags(response, outcome) -> tuple[str, ...]:
    """Retention flags for one handled exchange's trace."""
    flags: list[str] = []
    ladder_stage = response.headers.get(LADDER_HEADER)
    if ladder_stage is not None:
        # Ladder enforcements never reach detection (outcome is None);
        # the response header is the span's attribution instead.
        flags.append("robot")
        flags.append(f"ladder:{ladder_stage}")
    if outcome is not None and (
        outcome.blocked
        or (
            outcome.verdict is not None
            and outcome.verdict.label is Label.ROBOT
        )
    ):
        flags.append("robot")
    if response.status >= 500:
        flags.append("error")
    return tuple(flags)


def export_captcha_stats(metrics, stats: CaptchaStats) -> None:
    """Collect the CAPTCHA funnel into (unlabeled) counters."""
    for name in ("offered", "declined", "attempted", "passed", "failed"):
        metrics.counter(f"repro_captcha_{name}_total").set(
            getattr(stats, name)
        )


class ReplayLaneWorker:
    """Streams one lane's trace events through its proxy node."""

    def __init__(
        self,
        lane: int,
        node: ProxyNode | NodeShard,
        housekeeping_interval: float = 600.0,
        scorer_model: AdaBoostModel | None = None,
        batch: MicroBatchConfig | None = None,
        taps=(),
        flight_interval: float | None = None,
        spans: SpanConfig | None = None,
        ladder: LadderConfig | None = None,
    ) -> None:
        self.lane = lane
        self.node = node
        self._interval = housekeeping_interval or None
        self._next_sweep: float | None = None
        if batch is not None:
            # The batcher may only evict accumulators for sessions the
            # tracker would rotate on return; a shorter eviction window
            # would silently truncate feature histories.  Clamp up.
            tracker_timeout = node.detection.tracker.idle_timeout
            if batch.idle_timeout < tracker_timeout:
                batch = replace(batch, idle_timeout=tracker_timeout)
        self._batcher = MicroBatcher(scorer_model, batch)
        #: Response-ladder router (node facade or the shard's ladder)
        #: when the graduated response is on for this lane.
        self._ladder_router = None
        if ladder is not None:
            self._ladder_router = node.enable_ladder(ladder)
            self._batcher.attach_ladder(
                self._ladder_router, ladder.checkpoint_base
            )
        self._taps = tuple(taps)
        self._handled = 0
        self._probes_loaded = 0
        self._first: float | None = None
        self._last: float | None = None
        # Lane metrics live on the node's registry: the node is the
        # lane's state, so one registry rides wherever the lane runs.
        lane_labels = {"lane": str(lane)}
        self._batcher.attach_metrics(node.metrics, lane_labels)
        self._queue_wait_wall = node.metrics.histogram(
            "repro_ingress_queue_wait_seconds",
            WALL_SECONDS_BUCKETS,
            lane_labels,
            wall=True,
        )
        self._queue_wait_event = node.metrics.histogram(
            "repro_ingress_queue_wait_event_seconds",
            EVENT_SECONDS_BUCKETS,
            lane_labels,
        )
        #: Live EWMA of this lane's queue delay in both clock domains,
        #: mirrored onto gauges so snapshots / flight frames carry it.
        self.delay_estimator = QueueDelayEstimator()
        self._delay_wall_gauge = node.metrics.gauge(
            "repro_ingress_queue_delay_ewma_seconds",
            lane_labels,
            wall=True,
        )
        self._delay_event_gauge = node.metrics.gauge(
            "repro_ingress_queue_delay_ewma_event_seconds", lane_labels
        )
        self._lane_clock: float | None = None
        #: Wall seconds the most recent admitted event sat queued (0 on
        #: the serial executor, which never queues).
        self._last_wait = 0.0
        self._tracer = (
            SpanTracer(lane, TailSampler(spans))
            if spans is not None
            else None
        )
        if self._tracer is not None:
            node.attach_tracer(self._tracer)
            self._batcher.attach_tracer(self._tracer)
        self._flight = (
            FlightRecorder(
                flight_interval,
                node.metrics,
                snapshot=node.metrics_snapshot,
            )
            if flight_interval
            else None
        )

    def note_queue_wait(self, seconds: float) -> None:
        """Record wall-clock time an admitted event sat in the lane queue."""
        self._queue_wait_wall.observe(seconds)
        self._last_wait = seconds
        self.delay_estimator.observe_wall(seconds)
        self._delay_wall_gauge.set(self.delay_estimator.wall_seconds)

    def process(self, event) -> None:
        """Consume one admitted ``(kind, record)`` event."""
        kind, record = event
        tracer = self._tracer
        if kind == PROBE_EVENT:
            ts = record.issued_at
            skew = self._observe_event_time(ts)
            self._sweep(ts)
            if tracer is not None:
                wall_now = time.perf_counter()
                tracer.begin(
                    "probe", ts, wall_start=wall_now - self._last_wait
                )
                tracer.record(
                    "queue_wait", ts, ts + skew,
                    wall_duration=self._last_wait, wall_end=wall_now,
                )
                with tracer.span("register", ts):
                    self.node.detection.registry.register(record.to_probe())
                tracer.end()
            else:
                self.node.detection.registry.register(record.to_probe())
            self._probes_loaded += 1
            return
        ts = record.timestamp
        skew = self._observe_event_time(ts)
        self._sweep(ts)
        request = record.to_request()
        if tracer is not None:
            # The root back-dates its wall start by the measured queue
            # wait, and the wait itself lands as an explicit child span
            # — always recorded, so trees keep one shape under every
            # executor (the serial lane simply reports a 0-second wait).
            # The retention flags are computed inside the handle span:
            # their cost is attributed, not root self-time.
            wall_now = time.perf_counter()
            tracer.begin(
                "request", ts, wall_start=wall_now - self._last_wait
            )
            tracer.record(
                "queue_wait", ts, ts + skew,
                wall_duration=self._last_wait, wall_end=wall_now,
            )
            with tracer.span("handle", ts):
                response, outcome = self.node.handle_traced(request)
                flags = _request_flags(response, outcome)
        else:
            response, outcome = self.node.handle_traced(request)
        if outcome is not None:
            if tracer is not None and self._batcher.enabled:
                with tracer.span("batch", ts):
                    self._batcher.observe(outcome, request, response)
            else:
                self._batcher.observe(outcome, request, response)
        # Lane traffic bypasses ProxyNetwork.handle, so the network's
        # taps (trace recorders) are fired here instead.
        for tap in self._taps:
            tap(request, response)
        if tracer is not None:
            tracer.end(flags=flags)
        self._handled += 1
        if self._first is None:
            self._first = record.timestamp
        self._last = record.timestamp

    def finish(self) -> LaneResult:
        """Flush scoring, finalize detection, reduce to a LaneResult."""
        tracer = self._tracer
        if tracer is not None:
            # One always-retained end-of-run trace per lane, covering
            # the final batch flush and session finalization.
            end = self._lane_clock if self._lane_clock is not None else 0.0
            tracer.begin("finish", end)
            if self._batcher.enabled:
                with tracer.span("batch_close", end):
                    self._batcher.close()
            else:
                self._batcher.close()
            with tracer.span("finalize", end):
                self.node.detection.finalize()
            tracer.end(flags=("finish",))
        else:
            self._batcher.close()
            self.node.detection.finalize()
        return LaneResult(
            lane=self.lane,
            stats=self.node.stats,
            sessions=self.node.detection.tracker.analyzable(),
            latencies=self.node.detection.detection_latencies(),
            ml_verdicts=self._batcher.verdicts,
            handled=self._handled,
            probes_loaded=self._probes_loaded,
            first_timestamp=self._first,
            last_timestamp=self._last,
            metrics=self.node.metrics_snapshot(),
            flight=self._flight.frames if self._flight is not None else [],
            spans=tracer.traces() if tracer is not None else [],
            ladder=(
                self._ladder_router.export_state()
                if self._ladder_router is not None
                else None
            ),
        )

    def _observe_event_time(self, timestamp: float) -> float:
        # Event-time queue skew: how far behind the lane's own clock an
        # event is when it reaches the worker.  Pure function of the
        # admitted stream, so it lands in the deterministic domain.
        if self._flight is not None:
            self._flight.tick(timestamp)
        skew = 0.0
        if self._lane_clock is not None:
            skew = max(0.0, self._lane_clock - timestamp)
            self._queue_wait_event.observe(skew)
            self.delay_estimator.observe_event(skew)
            self._delay_event_gauge.set(self.delay_estimator.event_seconds)
        if self._lane_clock is None or timestamp > self._lane_clock:
            self._lane_clock = timestamp
        return skew

    def _sweep(self, timestamp: float) -> None:
        # Same anchoring as the synchronous replay loop, but on this
        # lane's own event clock: the first event arms the timer, and a
        # sweep at the end of an idle gap subsumes the boundary sweeps
        # inside it.  Sweep timing is behaviour-neutral (idle rotation,
        # cache TTL and bucket eviction are all re-checked on access),
        # so lane-local clocks keep results identical to the global one.
        if self._interval is None:
            return
        if self._next_sweep is None:
            self._next_sweep = timestamp + self._interval
        elif timestamp >= self._next_sweep:
            self.node.housekeeping(timestamp)
            self._next_sweep = timestamp + self._interval


class WorkloadLaneWorker:
    """Buffers one lane's sessions, then drives them in event-time order.

    Admission streams ``(SESSION_EVENT, index, agent, start)`` tuples;
    the actual driving happens at :meth:`finish` so the lane can heap-
    order *all* its sessions by next-event time — the same discipline
    (and therefore the same per-node request order, byte for byte) as
    the global interleaved scheduler restricted to this node's clients.
    """

    def __init__(
        self,
        lane: int,
        node: ProxyNode | NodeShard,
        budget,
        collect_features: bool,
        housekeeping_interval: float,
        captcha_enabled: bool,
        captcha_config: CaptchaConfig,
        captcha_rng: RngStream,
        taps=(),
        flight_interval: float | None = None,
        spans: SpanConfig | None = None,
    ) -> None:
        self.lane = lane
        self.node = node
        self._budget = budget
        self._collect_features = collect_features
        self._interval = housekeeping_interval
        self._captcha_enabled = captcha_enabled
        self._captcha = CaptchaService(captcha_config)
        self._captcha_rng = captcha_rng
        self._taps = tuple(taps)
        self._indices: list[int] = []
        self._agents: list = []
        self._starts: list[float] = []
        lane_labels = {"lane": str(lane)}
        self._queue_wait_wall = node.metrics.histogram(
            "repro_ingress_queue_wait_seconds",
            WALL_SECONDS_BUCKETS,
            lane_labels,
            wall=True,
        )
        # Workload lanes buffer their sessions and drive them at
        # finish, so only the wall domain of the delay estimate is
        # meaningful (admission wait, not event skew).
        self.delay_estimator = QueueDelayEstimator()
        self._delay_wall_gauge = node.metrics.gauge(
            "repro_ingress_queue_delay_ewma_seconds",
            lane_labels,
            wall=True,
        )
        self._tracer = (
            SpanTracer(lane, TailSampler(spans))
            if spans is not None
            else None
        )
        if self._tracer is not None:
            node.attach_tracer(self._tracer)
        self._flight = (
            FlightRecorder(
                flight_interval,
                node.metrics,
                snapshot=node.metrics_snapshot,
            )
            if flight_interval
            else None
        )

    def note_queue_wait(self, seconds: float) -> None:
        """Record wall-clock time an admitted event sat in the lane queue."""
        self._queue_wait_wall.observe(seconds)
        self.delay_estimator.observe_wall(seconds)
        self._delay_wall_gauge.set(self.delay_estimator.wall_seconds)

    def process(self, event) -> None:
        """Accept one admitted session assignment."""
        _kind, index, agent, start = event
        self._indices.append(index)
        self._agents.append(agent)
        self._starts.append(start)

    def finish(self) -> LaneResult:
        """Drive the lane's sessions, annotate, finalize, reduce."""
        # Deferred: repro.trace.interleave reaches this package's
        # machinery through the workload engine, so a module-level
        # import would be circular through the package __init__ chain.
        from repro.trace.interleave import InterleavedScheduler

        examples: list[tuple[int, SessionExample]] = []

        def session_done(record: SessionRecord) -> None:
            self._annotate(record)

        handler = self.node.handle
        if self._taps or self._flight is not None or self._tracer is not None:
            # Lane traffic bypasses ProxyNetwork.handle; fire the
            # network's taps (trace recorders) per exchange here — and
            # tick the flight recorder on the driven event clock.
            def handler(request, _handle=self.node.handle_traced):
                if self._flight is not None:
                    self._flight.tick(request.timestamp)
                tracer = self._tracer
                if tracer is not None:
                    ts = request.timestamp
                    tracer.begin("request", ts)
                    with tracer.span("handle", ts):
                        response, outcome = _handle(request)
                        flags = _request_flags(response, outcome)
                else:
                    response, outcome = _handle(request)
                for tap in self._taps:
                    tap(request, response)
                if tracer is not None:
                    tracer.end(flags=flags)
                return response

        scheduler = InterleavedScheduler(
            handler,
            budget=self._budget,
            collect_features=self._collect_features,
            housekeeping=self.node.housekeeping,
            housekeeping_interval=self._interval,
        )
        records = scheduler.run(
            self._agents, self._starts, on_session_end=session_done
        )
        indexed_records = list(zip(self._indices, records))
        for index, record in indexed_records:
            if record.example is not None:
                examples.append((index, record.example))

        tracer = self._tracer
        if tracer is not None:
            end = max(
                (record.ended_at for record in records), default=0.0
            )
            tracer.begin("finish", end)
            with tracer.span("finalize", end):
                self.node.detection.finalize()
            tracer.end(flags=("finish",))
        else:
            self.node.detection.finalize()
        export_captcha_stats(self.node.metrics, self._captcha.stats)
        return LaneResult(
            lane=self.lane,
            stats=self.node.stats,
            sessions=self.node.detection.tracker.analyzable(),
            latencies=self.node.detection.detection_latencies(),
            handled=sum(record.requests for record in records),
            records=indexed_records,
            examples=examples,
            captcha_stats=self._captcha.stats,
            metrics=self.node.metrics_snapshot(),
            flight=self._flight.frames if self._flight is not None else [],
            spans=tracer.traces() if tracer is not None else [],
        )

    def _annotate(self, record: SessionRecord) -> None:
        # Mirror of WorkloadEngine._annotate_session, node-local.  The
        # CAPTCHA stream is split per client IP from the engine's base
        # stream, so outcomes are identical whichever lane (or process)
        # the session ran in.
        state = self.node.detection.tracker.get(
            record.client_ip, record.user_agent
        )
        if state is None:
            return
        state.true_label = record.true_label
        state.agent_kind = record.agent_kind
        if not self._captcha_enabled:
            return
        outcome = self._captcha.run_for_session(
            self._captcha_rng.split(f"captcha-{record.client_ip}"),
            is_human=record.true_label == "human",
        )
        if outcome is CaptchaOutcome.PASSED:
            self.node.detection.note_captcha(state, True, record.ended_at)
        elif outcome is CaptchaOutcome.FAILED:
            self.node.detection.note_captcha(state, False, record.ended_at)
