"""Per-lane micro-batching of session scoring.

The §4.2 ensemble is cheapest when applied matrix-at-a-time
(:class:`~repro.ml.batch.BatchScorer`), but a streaming ingress sees one
request at a time.  The micro-batcher is the adapter: every arrival
updates its session's streaming :class:`~repro.ml.features.FeatureAccumulator`
and marks the session *dirty*; dirty sessions are coalesced and scored
as one matrix when either

* ``max_batch`` distinct sessions are dirty (count budget), or
* the oldest un-scored update has waited ``max_delay`` *virtual* seconds
  (latency budget — event time, not wall clock, so batch boundaries are
  a pure function of the event stream and identical under every executor
  and queue depth).

Coalescing is the point: a session touched 50 times between flushes is
scored once, with its latest snapshot.  Re-scoring across flushes tracks
sessions as they accumulate evidence, the way the online classifier
re-judges per request — but at matrix-row cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.detection.service import RequestOutcome
from repro.http.message import Request, Response
from repro.ml.adaboost import AdaBoostModel
from repro.ml.batch import BatchScorer, BatchVerdict
from repro.ml.features import FeatureAccumulator
from repro.overload.ladder import is_checkpoint
from repro.util.timeutil import HOUR


@dataclass(frozen=True)
class MicroBatchConfig:
    """Flush budgets for one lane's micro-batcher.

    ``idle_timeout`` bounds memory: a session's accumulator is dropped
    (at flush time, on the event clock) once the session has been idle
    that long.  Keep it >= the tracker's idle timeout — any session
    returning after such a gap is rotated to a fresh session id by the
    tracker anyway, so eviction can never change a score.
    """

    max_batch: int = 256
    max_delay: float = 60.0
    idle_timeout: float = HOUR

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")


class MicroBatcher:
    """Coalesces one lane's arrivals into BatchScorer flushes.

    With ``model=None`` the batcher is inert (zero cost per request) —
    the ingress always owns one so the wiring is uniform.  All state is
    lane-local and picklable, so a batcher rides inside process-executor
    lane workers unchanged.
    """

    def __init__(
        self,
        model: AdaBoostModel | None,
        config: MicroBatchConfig | None = None,
    ) -> None:
        self._config = config or MicroBatchConfig()
        self._model = model
        self._scorer = (
            BatchScorer(model, batch_size=1 << 30, keep_verdicts=False)
            if model is not None
            else None
        )
        #: Response-ladder router fed by checkpoint verdicts; None = off.
        self._ladder = None
        self._checkpoint_base = 0
        #: session_id -> streaming Table 2 attributes.
        self._accumulators: dict[str, FeatureAccumulator] = {}
        #: session_id -> (key, last event timestamp), for idle eviction.
        self._last_seen: dict[str, tuple[tuple[str, str], float]] = {}
        #: sessions updated since the last flush, in first-touch order.
        self._dirty: OrderedDict[str, None] = OrderedDict()
        self._first_dirty_at: float | None = None
        self._clock = 0.0
        #: live session per key, to retire rotated sessions' state.
        self._live: dict[tuple[str, str], str] = {}
        self._retired: set[str] = set()
        self.verdicts: list[BatchVerdict] = []
        self.flushes = 0
        self._flush_total = None
        self._flush_sessions = None
        self._flush_delay = None
        self._pending_gauge = None
        self._evicted_total = None
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Emit flush/score spans into ``tracer`` (``None`` detaches).

        Spans nest under whatever trace the lane currently has open —
        the triggering request's, or the finish trace on close — and
        are silently dropped when none is (``SpanTracer.span`` is a
        no-op while idle).
        """
        self._tracer = tracer

    def attach_metrics(self, registry, labels=None) -> None:
        """Wire flush-size/latency distributions into a registry.

        Everything here is in the deterministic domain: flush boundaries,
        batch sizes, coalescing delays and idle evictions are pure
        functions of the (event-time) arrival stream.
        """
        from repro.obs.registry import EVENT_SECONDS_BUCKETS, SIZE_BUCKETS

        self._flush_total = registry.counter("repro_batch_flush_total", labels)
        self._flush_sessions = registry.histogram(
            "repro_batch_flush_sessions", SIZE_BUCKETS, labels
        )
        self._flush_delay = registry.histogram(
            "repro_batch_flush_delay_event_seconds",
            EVENT_SECONDS_BUCKETS,
            labels,
        )
        self._pending_gauge = registry.gauge(
            "repro_batch_pending_sessions", labels
        )
        self._evicted_total = registry.counter(
            "repro_batch_evicted_total", labels
        )
        if self._scorer is not None:
            self._scorer.attach_metrics(registry, labels)

    def attach_ladder(self, router, checkpoint_base: int) -> None:
        """Drive a graduated response ladder from checkpoint verdicts.

        ``router`` exposes ``observe_verdict(ip, margin, ts)`` (a
        :class:`~repro.overload.ladder.ResponseLadder` or the node's
        partitioned facade).  Checkpoints — a session's own observed
        request count hitting a power of two >= ``checkpoint_base`` —
        score that single session immediately, outside the flush
        cadence: flush boundaries depend on the lane's combined stream,
        while checkpoints are a pure function of each session's own
        stream, which is what keeps ladder state byte-identical across
        executors *and* lane layouts.  Checkpoint verdicts feed only
        the ladder; ``verdicts`` still comes from batch flushes alone.
        """
        if self._model is None:
            raise ValueError(
                "a scoring model is required to drive the ladder"
            )
        self._ladder = router
        self._checkpoint_base = checkpoint_base

    @property
    def enabled(self) -> bool:
        """Whether a model is attached (otherwise observe() is a no-op)."""
        return self._scorer is not None

    @property
    def pending(self) -> int:
        """Dirty sessions awaiting the next flush."""
        return len(self._dirty)

    def observe(
        self, outcome: RequestOutcome, request: Request, response: Response
    ) -> None:
        """Account one handled exchange; may trigger a flush."""
        if self._scorer is None:
            return
        state = outcome.state
        key = (state.key.client_ip, state.key.user_agent)
        session_id = state.session_id
        previous = self._live.get(key)
        if previous is not None and previous != session_id:
            self._retire(previous)
        self._live[key] = session_id

        accumulator = self._accumulators.get(session_id)
        if accumulator is None:
            accumulator = self._accumulators[session_id] = FeatureAccumulator()
        accumulator.observe(request, response)
        if self._ladder is not None and is_checkpoint(
            accumulator.total, self._checkpoint_base
        ):
            margin = float(
                self._model.score(accumulator.vector().reshape(1, -1))[0]
            )
            self._ladder.observe_verdict(
                key[0], margin, request.timestamp
            )
        self._last_seen[session_id] = (key, request.timestamp)
        self._clock = max(self._clock, request.timestamp)
        if session_id not in self._dirty:
            self._dirty[session_id] = None
        if self._first_dirty_at is None:
            self._first_dirty_at = request.timestamp
        if self._pending_gauge is not None:
            self._pending_gauge.set(len(self._dirty))

        cfg = self._config
        if (
            len(self._dirty) >= cfg.max_batch
            or request.timestamp - self._first_dirty_at >= cfg.max_delay
        ):
            self.flush()

    def flush(self) -> list[BatchVerdict]:
        """Score every dirty session as one matrix; returns the batch."""
        if self._scorer is None or not self._dirty:
            return []
        if self._tracer is None:
            return self._flush_inner()
        with self._tracer.span("batch_flush", self._clock):
            return self._flush_inner()

    def _flush_inner(self) -> list[BatchVerdict]:
        assert self._scorer is not None
        if self._flush_total is not None:
            self._flush_total.inc()
            self._flush_sessions.observe(len(self._dirty))
            if self._first_dirty_at is not None:
                self._flush_delay.observe(
                    max(0.0, self._clock - self._first_dirty_at)
                )
        for session_id in self._dirty:
            self._scorer.add(
                session_id, self._accumulators[session_id].vector()
            )
        if self._tracer is None:
            batch = self._scorer.flush()
        else:
            with self._tracer.span("batch_score", self._clock):
                batch = self._scorer.flush()
        for session_id in self._dirty:
            if session_id in self._retired:
                self._retired.discard(session_id)
                self._drop(session_id)
        self._dirty.clear()
        self._first_dirty_at = None
        self.verdicts.extend(batch)
        self.flushes += 1
        self._evict_idle()
        if self._pending_gauge is not None:
            self._pending_gauge.set(len(self._dirty))
        return batch

    def close(self) -> list[BatchVerdict]:
        """Final flush: score whatever is still dirty."""
        return self.flush()

    def _retire(self, session_id: str) -> None:
        """A session rotated: drop its accumulator once finally scored."""
        if session_id in self._dirty:
            self._retired.add(session_id)
        else:
            self._drop(session_id)

    def _drop(self, session_id: str) -> None:
        self._accumulators.pop(session_id, None)
        entry = self._last_seen.pop(session_id, None)
        if entry is not None:
            key, _seen = entry
            if self._live.get(key) == session_id:
                del self._live[key]

    def _evict_idle(self) -> None:
        """Bound steady-state memory on million-session streams.

        Runs after each flush (event clock, so identical under every
        executor and queue depth): sessions idle past ``idle_timeout``
        have already received their final score — if they ever return,
        the tracker hands them a *new* session id — so their
        accumulators are dead weight.
        """
        horizon = self._clock - self._config.idle_timeout
        if horizon <= 0:
            return
        stale = [
            session_id
            for session_id, (_key, seen) in self._last_seen.items()
            if seen < horizon and session_id not in self._dirty
        ]
        for session_id in stale:
            self._retired.discard(session_id)
            self._drop(session_id)
        if self._evicted_total is not None and stale:
            self._evicted_total.inc(len(stale))
