"""Pluggable lane executors: serial, thread, and true-parallel process.

A *lane* is one fully self-contained partition of ingress state (in this
codebase: one proxy node, which owns its detection shards, cache,
limiter, probe registry and counters).  A *lane worker* is any object
with

* ``process(event)`` — consume one admitted event, mutating only lane
  state, and
* ``finish()`` — flush, finalize and return a picklable result.

Executors own the delivery discipline, never the semantics: every
implementation delivers each lane's events in admission order to exactly
one consumer, so the three executors (and any queue depth) are
observationally identical whenever nothing is shed — the property the
determinism suite pins down.

* :class:`SerialLaneExecutor` processes events inline in the admission
  thread.  Zero overhead, the baseline.
* :class:`ThreadLaneExecutor` runs one consumer thread per lane behind a
  bounded :class:`~repro.ingress.queues.LaneQueue`.  Under CPython's GIL
  this pipelines I/O and C-extension work but not pure-Python CPU.
* :class:`ProcessLaneExecutor` runs one worker *process* per lane,
  shipping events in pickled chunks over a bounded ``multiprocessing``
  queue and collecting each lane's finished result at close.  This is
  the executor that actually closes the GIL gap: lane state lives in the
  child, so per-event work runs genuinely in parallel.  Events and lane
  results must be picklable; lane workers are shipped to the child at
  start (fork makes that free, spawn pickles them once).
"""

from __future__ import annotations

import multiprocessing
import queue as stdlib_queue
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.ingress.queues import CLOSED, LaneQueue, QueueClosed, ShedPolicy

EXECUTOR_KINDS = ("serial", "thread", "process")


class LaneWorker(Protocol):
    """What an executor drives: per-lane event consumption + finish."""

    def process(self, event) -> None: ...

    def finish(self): ...


@dataclass
class LaneTelemetry:
    """Per-lane delivery counters an executor reports at close."""

    lane: int
    enqueued: int = 0
    shed: int = 0
    high_watermark: int = 0


class LaneExecutorBase:
    """Shared surface: submit events to lanes, close to collect results."""

    def __init__(self, workers: Sequence[LaneWorker]) -> None:
        if not workers:
            raise ValueError("need at least one lane worker")
        self._workers = list(workers)

    @property
    def n_lanes(self) -> int:
        """How many independent lanes this executor drives."""
        return len(self._workers)

    def submit(self, lane: int, event, force: bool = False) -> bool:
        """Deliver one event to a lane; False when it was shed.

        ``force`` bypasses the shed policy (always backpressure) — used
        for events that must never be dropped, like probe-journal key
        material.
        """
        raise NotImplementedError

    def close(self) -> tuple[list, list[LaneTelemetry]]:
        """Finish every lane; returns (lane results, delivery telemetry).

        Results are ordered by lane index.  Any exception raised inside
        a lane worker is re-raised here, lowest lane first.
        """
        raise NotImplementedError

    def telemetry_now(self) -> list[LaneTelemetry]:
        """A live view of per-lane delivery counters (flight sampling)."""
        raise NotImplementedError

    def lane_depths(self) -> list[int]:
        """Current backlog per lane, in events (0 where unobservable)."""
        return [0] * self.n_lanes

    def flush_pending(self) -> None:
        """Push any transport-buffered events toward the lanes.

        Chunking is a transport optimization and must stay invisible in
        measurements: the flight recorder flushes before sampling so
        admission telemetry reflects every submitted event, whatever
        the executor batches internally.
        """


class SerialLaneExecutor(LaneExecutorBase):
    """Process events inline: the admission thread is the only consumer."""

    def __init__(self, workers: Sequence[LaneWorker]) -> None:
        super().__init__(workers)
        self._telemetry = [LaneTelemetry(lane) for lane in range(self.n_lanes)]

    def submit(self, lane: int, event, force: bool = False) -> bool:
        self._workers[lane].process(event)
        self._telemetry[lane].enqueued += 1
        return True

    def close(self) -> tuple[list, list[LaneTelemetry]]:
        return [worker.finish() for worker in self._workers], self._telemetry

    def telemetry_now(self) -> list[LaneTelemetry]:
        return self._telemetry


class ThreadLaneExecutor(LaneExecutorBase):
    """One consumer thread per lane behind a bounded LaneQueue."""

    def __init__(
        self,
        workers: Sequence[LaneWorker],
        depth: int | None = None,
        policy: ShedPolicy = ShedPolicy.BLOCK,
    ) -> None:
        super().__init__(workers)
        self._policy = policy
        self.queues = [LaneQueue(depth) for _ in workers]
        self._errors: list[BaseException | None] = [None] * self.n_lanes
        self._results: list = [None] * self.n_lanes
        self._threads = [
            threading.Thread(
                target=self._consume,
                args=(lane,),
                name=f"ingress-lane-{lane}",
                daemon=True,
            )
            for lane in range(self.n_lanes)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, lane: int, event, force: bool = False) -> bool:
        block = force or self._policy is ShedPolicy.BLOCK
        try:
            # Events carry their enqueue stamp so the consumer can
            # report how long each sat in the queue (wall domain).
            return self.queues[lane].put(
                (time.monotonic(), event), block=block
            )
        except QueueClosed:
            raise RuntimeError("submit() after close()") from None

    def close(self) -> tuple[list, list[LaneTelemetry]]:
        for queue in self.queues:
            queue.close()
        for thread in self._threads:
            thread.join()
        for lane, error in enumerate(self._errors):
            if error is not None:
                raise RuntimeError(
                    f"ingress lane {lane} worker failed"
                ) from error
        results = list(self._results)
        telemetry = [
            LaneTelemetry(
                lane,
                enqueued=queue.enqueued,
                shed=queue.shed,
                high_watermark=queue.high_watermark,
            )
            for lane, queue in enumerate(self.queues)
        ]
        return results, telemetry

    def telemetry_now(self) -> list[LaneTelemetry]:
        return [
            LaneTelemetry(
                lane,
                enqueued=queue.enqueued,
                shed=queue.shed,
                high_watermark=queue.high_watermark,
            )
            for lane, queue in enumerate(self.queues)
        ]

    def lane_depths(self) -> list[int]:
        return [len(queue) for queue in self.queues]

    def _consume(self, lane: int) -> None:
        worker = self._workers[lane]
        queue = self.queues[lane]
        note_wait = getattr(worker, "note_queue_wait", None)
        while True:
            item = queue.get()
            if item is CLOSED:
                break
            if self._errors[lane] is not None:
                continue  # keep draining so the producer never deadlocks
            stamped_at, event = item
            if note_wait is not None:
                note_wait(time.monotonic() - stamped_at)
            try:
                worker.process(event)
            except BaseException as exc:  # surfaced at close()
                self._errors[lane] = exc
        if self._errors[lane] is not None:
            return
        # finish() runs here, on the lane's own thread, so lanes whose
        # real work happens at finish (the workload workers drive every
        # session there) still overlap instead of serializing onto the
        # closing thread.
        try:
            self._results[lane] = worker.finish()
        except BaseException as exc:
            self._errors[lane] = exc


def _lane_child_main(lane, worker, inbox, outbox) -> None:
    """Child-process loop: drain event chunks, then ship the result.

    On a worker error the child keeps draining (and discarding) chunks
    until the close sentinel — a stopped consumer on a bounded pipe
    would deadlock the admission loop — and reports the first failure
    at close.
    """
    error: str | None = None
    note_wait = getattr(worker, "note_queue_wait", None)
    while True:
        item = inbox.get()
        if item is None:
            break
        if error is not None:
            continue
        stamped_at, chunk = item
        if note_wait is not None:
            # One wait sample per chunk: the pipe transports chunks, so
            # that is the granularity at which waiting is observable.
            note_wait(time.monotonic() - stamped_at)
        try:
            for event in chunk:
                worker.process(event)
        except BaseException as exc:
            error = f"{exc!r}\n{traceback.format_exc()}"
    if error is None:
        try:
            outbox.put((lane, "ok", worker.finish()))
            return
        except BaseException as exc:
            error = f"{exc!r}\n{traceback.format_exc()}"
    outbox.put((lane, "error", error))


class ProcessLaneExecutor(LaneExecutorBase):
    """One worker process per lane — true parallel lane execution.

    Events are shipped in chunks of ``chunk_size`` to amortise pickling
    and queue wake-ups; chunk boundaries are invisible to results
    because each lane still consumes its events strictly in admission
    order.  ``depth`` (in events) maps onto the bounded inter-process
    queue in chunk units, so backpressure still reaches the admission
    loop.  Under the SHED policy a full pipe sheds the whole pending
    chunk — shedding granularity is the price of amortised IPC, and
    every shed event is still counted.
    """

    def __init__(
        self,
        workers: Sequence[LaneWorker],
        depth: int | None = None,
        policy: ShedPolicy = ShedPolicy.BLOCK,
        chunk_size: int = 256,
    ) -> None:
        super().__init__(workers)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._policy = policy
        self._chunk_size = chunk_size
        if depth is not None:
            self._chunk_size = min(self._chunk_size, depth)
        depth_chunks = (
            0 if depth is None else max(1, depth // self._chunk_size)
        )
        context = multiprocessing.get_context()
        self._outbox = context.Queue()
        self._inboxes = [
            context.Queue(maxsize=depth_chunks) for _ in workers
        ]
        self._buffers: list[list] = [[] for _ in workers]
        self._telemetry = [LaneTelemetry(lane) for lane in range(self.n_lanes)]
        self._processes = [
            context.Process(
                target=_lane_child_main,
                args=(lane, worker, self._inboxes[lane], self._outbox),
                name=f"ingress-lane-{lane}",
                daemon=True,
            )
            for lane, worker in enumerate(self._workers)
        ]
        for process in self._processes:
            process.start()

    def submit(self, lane: int, event, force: bool = False) -> bool:
        buffer = self._buffers[lane]
        if force:
            # Never-shed events flush the pending chunk under the normal
            # policy, then ride their own always-blocking chunk.
            self._flush(lane)
            self._send(lane, [event], block=True)
            return True
        buffer.append(event)
        if len(buffer) >= self._chunk_size:
            return self._flush(lane)
        return True

    def close(self) -> tuple[list, list[LaneTelemetry]]:
        for lane in range(self.n_lanes):
            self._flush(lane)
            self._put_alive(lane, None)
        collected = self._collect_results()
        for process in self._processes:
            process.join()
        failures = [
            (lane, payload)
            for lane, (status, payload) in sorted(collected.items())
            if status != "ok"
        ]
        if failures:
            lane, payload = failures[0]
            raise RuntimeError(
                f"ingress lane {lane} worker failed:\n{payload}"
            )
        results = [collected[lane][1] for lane in range(self.n_lanes)]
        return results, self._telemetry

    def telemetry_now(self) -> list[LaneTelemetry]:
        return self._telemetry

    def flush_pending(self) -> None:
        for lane in range(self.n_lanes):
            self._flush(lane)

    def lane_depths(self) -> list[int]:
        depths = []
        for lane, inbox in enumerate(self._inboxes):
            try:
                size = inbox.qsize() * self._chunk_size
            except NotImplementedError:  # macOS: sem_getvalue unsupported
                size = 0
            depths.append(size + len(self._buffers[lane]))
        return depths

    def _put_alive(self, lane: int, obj) -> None:
        """Blocking put that never waits on a corpse.

        A child killed mid-run (OOM, segfault) stops consuming; with a
        bounded pipe the admission thread would block in ``put()``
        forever, ahead of any dead-child detection at close.  Poll the
        pipe with a timeout and check liveness between attempts.
        """
        inbox = self._inboxes[lane]
        process = self._processes[lane]
        while True:
            try:
                inbox.put(obj, timeout=0.5)
                return
            except stdlib_queue.Full:
                if not process.is_alive():
                    raise RuntimeError(
                        f"ingress lane {lane} worker process died "
                        f"(exitcode {process.exitcode}) with its event "
                        "pipe full; admission aborted"
                    ) from None

    def _collect_results(self) -> dict[int, tuple[str, object]]:
        """One (status, payload) per lane — never hang on a dead child.

        A child killed mid-run (OOM, segfault, external kill) can never
        deliver its result tuple; a blocking ``get()`` would wedge the
        whole close.  Poll instead, and when an unreported lane's
        process is gone, allow one grace read (results flush through
        the pipe as the child exits) before giving up loudly.
        """
        collected: dict[int, tuple[str, object]] = {}
        pending = set(range(self.n_lanes))

        def take(timeout: float) -> bool:
            try:
                lane, status, payload = self._outbox.get(timeout=timeout)
            except stdlib_queue.Empty:
                return False
            collected[lane] = (status, payload)
            pending.discard(lane)
            return True

        while pending:
            if take(0.5):
                continue
            dead = sorted(
                lane
                for lane in pending
                if not self._processes[lane].is_alive()
            )
            if dead and not take(5.0):
                lane = dead[0]
                raise RuntimeError(
                    f"ingress lane {lane} worker process died without "
                    f"reporting a result (exitcode "
                    f"{self._processes[lane].exitcode}); its events are "
                    "lost — results from other lanes were discarded to "
                    "avoid returning a partial merge"
                )
        return collected

    def _flush(self, lane: int) -> bool:
        buffer = self._buffers[lane]
        if not buffer:
            return True
        chunk = buffer[:]
        buffer.clear()
        return self._send(lane, chunk, block=self._policy is ShedPolicy.BLOCK)

    def _send(self, lane: int, chunk: list, block: bool) -> bool:
        telemetry = self._telemetry[lane]
        inbox = self._inboxes[lane]
        item = (time.monotonic(), chunk)
        if block:
            self._put_alive(lane, item)
        else:
            try:
                inbox.put_nowait(item)
            except stdlib_queue.Full:
                telemetry.shed += len(chunk)
                return False
        telemetry.enqueued += len(chunk)
        try:
            size = inbox.qsize()
        except NotImplementedError:  # macOS: sem_getvalue unsupported
            size = 0
        if size > telemetry.high_watermark:
            telemetry.high_watermark = size
        return True


def build_executor(
    kind: str,
    workers: Sequence[LaneWorker],
    depth: int | None = None,
    policy: ShedPolicy = ShedPolicy.BLOCK,
    chunk_size: int = 256,
) -> LaneExecutorBase:
    """Instantiate an executor by name (``serial``/``thread``/``process``)."""
    if policy is ShedPolicy.ADAPTIVE:
        # Adaptive shedding is decided at the front door (the pipeline's
        # DelayBudgetController); what survives admission must not be
        # dropped again, so the lane queues run as a blocking backstop.
        policy = ShedPolicy.BLOCK
    if kind == "serial":
        return SerialLaneExecutor(workers)
    if kind == "thread":
        return ThreadLaneExecutor(workers, depth=depth, policy=policy)
    if kind == "process":
        return ProcessLaneExecutor(
            workers, depth=depth, policy=policy, chunk_size=chunk_size
        )
    raise ValueError(
        f"unknown executor {kind!r}; available: {EXECUTOR_KINDS}"
    )
