"""Admission frontends: who drives events into the pipeline.

:meth:`IngressPipeline.submit` is already a complete synchronous
admission API — the calling thread is the driver, and a full lane queue
simply blocks it (or sheds, per policy).  The two frontends here wrap
that same pipeline for the other driving styles a front end needs:

* :class:`ThreadedDriver` pumps an event iterable from a dedicated
  thread, so the caller can keep producing (or serving) while admission
  and backpressure happen elsewhere;
* :class:`AsyncIngress` is the asyncio variant: ``await submit(...)``
  applies backpressure as coroutine suspension instead of a blocked
  thread, and a single pump task performs the actual (potentially
  blocking) queue puts in an executor thread — one at a time, so the
  admission order every determinism guarantee rests on is preserved.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable

from repro.ingress.pipeline import IngressPipeline, IngressResult

#: Internal close marker for the async admission queue.
_DONE = object()


class ThreadedDriver:
    """Drives ``(event, client_ip)`` pairs through a pipeline off-thread."""

    def __init__(self, pipeline: IngressPipeline) -> None:
        self._pipeline = pipeline
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def start(self, events: Iterable[tuple[object, str]]) -> "ThreadedDriver":
        """Begin admitting ``events`` from a background thread."""
        if self._thread is not None:
            raise RuntimeError("driver already started")

        def pump() -> None:
            try:
                for event, client_ip in events:
                    self._pipeline.submit(event, client_ip)
            except BaseException as exc:  # re-raised in join()
                self._error = exc

        self._thread = threading.Thread(
            target=pump, name="ingress-driver", daemon=True
        )
        self._thread.start()
        return self

    def join(self) -> IngressResult:
        """Wait for admission to finish and close the pipeline."""
        if self._thread is None:
            raise RuntimeError("driver never started")
        self._thread.join()
        if self._error is not None:
            raise RuntimeError("ingress driver failed") from self._error
        return self._pipeline.close()


class AsyncIngress:
    """asyncio admission loop over an :class:`IngressPipeline`.

    ``max_pending`` bounds the hand-off queue between coroutines and the
    pump task; together with the lane queues' own bounds this gives an
    event loop end-to-end backpressure without ever blocking it.

    Usage::

        ingress = await AsyncIngress(pipeline).start()
        await ingress.submit(event, client_ip)
        ...
        result = await ingress.close()
    """

    def __init__(
        self, pipeline: IngressPipeline, max_pending: int = 1024
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._pipeline = pipeline
        self._max_pending = max_pending
        self._queue: asyncio.Queue | None = None
        self._pump_task: asyncio.Task | None = None
        self._error: BaseException | None = None

    async def start(self) -> "AsyncIngress":
        """Create the admission queue and pump task on the running loop."""
        if self._queue is not None:
            raise RuntimeError("async ingress already started")
        self._queue = asyncio.Queue(self._max_pending)
        self._pump_task = asyncio.get_running_loop().create_task(
            self._pump()
        )
        return self

    async def submit(
        self, event, client_ip: str, force: bool = False
    ) -> None:
        """Admit one event; suspends when the hand-off queue is full."""
        if self._queue is None:
            raise RuntimeError("async ingress not started")
        if self._error is not None:
            raise RuntimeError("ingress admission failed") from self._error
        await self._queue.put((event, client_ip, force))

    async def close(self) -> IngressResult:
        """Flush admission, close the pipeline, return the merged result."""
        if self._queue is None or self._pump_task is None:
            raise RuntimeError("async ingress not started")
        await self._queue.put(_DONE)
        await self._pump_task
        if self._error is not None:
            raise RuntimeError("ingress admission failed") from self._error
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._pipeline.close)

    async def _pump(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _DONE:
                return
            if self._error is not None:
                continue  # keep draining so producers never wedge
            event, client_ip, force = item
            # One blocking put at a time, in arrival order: ordering is
            # the determinism contract, so admission never fans out.
            try:
                await loop.run_in_executor(
                    None, self._pipeline.submit, event, client_ip, force
                )
            except BaseException as exc:
                # A dying pump would strand every later submit() on a
                # full queue; record the failure and surface it from
                # submit()/close() instead.
                self._error = exc
