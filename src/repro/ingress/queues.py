"""Bounded per-lane admission queues with backpressure and load shedding.

A :class:`LaneQueue` is the buffer between the ingress admission loop
(one producer, in arrival order) and one lane's executor (one consumer).
Order is the contract: items leave in exactly the order they were
admitted, which is what makes every downstream reduction independent of
executor choice and queue depth.

When the queue is full the producer picks one of two behaviours, named
by :class:`ShedPolicy`:

* ``BLOCK`` — wait for space.  Backpressure propagates to the admission
  loop, every admitted event is eventually processed, and results are
  bit-identical at any depth (depth only changes how far the producer
  can run ahead).
* ``SHED`` — refuse the event and count it.  Latency stays bounded under
  overload at the price of dropped work; the shed count is surfaced in
  the node/network statistics so a Table-1-style report can never
  silently lose traffic.  How *many* events shed depends on consumer
  speed, so a shedding run trades the determinism guarantee for bounded
  queueing delay — exactly the trade a live deployment makes.

A third policy, ``ADAPTIVE``, is decided *before* the queue: the
ingress pipeline's :class:`~repro.overload.admission.DelayBudgetController`
sheds at the front door when the lane's predicted queue delay exceeds a
latency budget, and the queue itself runs in ``BLOCK`` mode as the
backstop.  The lane queue therefore only distinguishes blocking from
non-blocking puts; ``ADAPTIVE`` never reaches :meth:`LaneQueue.put`
with ``block=False``.
"""

from __future__ import annotations

import threading
from collections import deque
from enum import Enum


class ShedPolicy(Enum):
    """What admission does when a lane queue is full (or predicted slow)."""

    BLOCK = "block"
    SHED = "shed"
    #: Delay-budget admission with per-IP fairness; see ``repro.overload``.
    ADAPTIVE = "adaptive"


class QueueClosed(RuntimeError):
    """Raised on :meth:`LaneQueue.put` after :meth:`LaneQueue.close`."""


#: Returned by :meth:`LaneQueue.get` once the queue is closed and empty.
CLOSED = object()


class LaneQueue:
    """A bounded FIFO between one producer and one lane consumer.

    ``depth=None`` means unbounded (admission never waits or sheds).
    Counters are maintained under the queue lock: ``enqueued`` admitted
    items, ``shed`` refused items, and ``high_watermark`` — the deepest
    the backlog ever got, the number capacity planning actually wants.
    """

    def __init__(self, depth: int | None = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError("depth must be >= 1 (or None for unbounded)")
        self._depth = depth
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.enqueued = 0
        self.shed = 0
        self.high_watermark = 0

    @property
    def depth(self) -> int | None:
        """Maximum backlog (None = unbounded)."""
        return self._depth

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item, block: bool = True) -> bool:
        """Admit one item; returns False when it was shed instead.

        ``block=True`` waits for space (backpressure); ``block=False``
        refuses immediately when full and counts the item as shed.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("put() on a closed lane queue")
            while (
                self._depth is not None
                and len(self._items) >= self._depth
            ):
                if not block:
                    self.shed += 1
                    return False
                self._not_full.wait()
                if self._closed:
                    raise QueueClosed("lane queue closed while waiting")
            self._items.append(item)
            self.enqueued += 1
            if len(self._items) > self.high_watermark:
                self.high_watermark = len(self._items)
            self._not_empty.notify()
            return True

    def get(self):
        """Take the oldest item; :data:`CLOSED` once closed and drained."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return CLOSED
                self._not_empty.wait()
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Stop admission; consumers drain the backlog then see CLOSED."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()
