"""The ingress pipeline: admission, routing, dispatch, merge.

This is the layer the ROADMAP's "async proxy front end" item asked for:
between *arrival* (a trace event, a synthetic session) and *shard*
(a proxy node's detection state) now sits an explicit admission step
that

1. routes every event by the stable BLAKE2b hash of its session key's
   client IP — the same sticky assignment CoDeeN clients get, and the
   partition the paper's probe table is indexed by, so all of a
   client's sessions, probes and rate-limit state live in one lane;
2. enqueues it on that lane's bounded queue (backpressure by default,
   counted load-shedding on request); and
3. lets a pluggable executor — serial, thread, or true-parallel
   process — consume each lane strictly in admission order.

Because lanes are total partitions of mutable state and each lane is
consumed in admission order, the final reductions are a pure function
of the admitted event sequence: executor choice and queue depth change
wall-clock behaviour, never results.  The merge step reassembles lane
results in lane order (the same order the synchronous code iterates
nodes), so even list layouts match the one-thread path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ingress.batcher import MicroBatchConfig
from repro.ingress.executors import EXECUTOR_KINDS, build_executor
from repro.ingress.queues import ShedPolicy
from repro.ingress.workers import LaneResult
from repro.detection.online import DetectionLatency
from repro.detection.session import SessionState
from repro.detection.sharded import _session_order
from repro.detection.set_algebra import SessionSets
from repro.ml.adaboost import AdaBoostModel
from repro.ml.batch import BatchVerdict
from repro.obs.flight import FlightFrame, FlightRecorder, merge_flight
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.spans import SpanConfig, SpanTree, merge_traces
from repro.overload.admission import (
    AdaptiveConfig,
    DelayBudgetController,
    OverloadReport,
)
from repro.overload.ladder import LadderConfig, merge_ladder_states
from repro.proxy.network import NetworkStats, ProxyNetwork
from repro.state.partition import partition_index


@dataclass(frozen=True)
class IngressConfig:
    """Admission and dispatch parameters.

    ``queue_depth`` bounds each lane's backlog in events (None =
    unbounded).  ``policy`` picks what a full queue does to admission:
    ``BLOCK`` (default) applies backpressure and preserves bit-exact
    determinism at any depth; ``SHED`` refuses the event, counts it in
    the node/network ``shed`` statistic, and keeps queueing delay
    bounded; ``ADAPTIVE`` sheds at the front door when the lane's
    *predicted* queue delay exceeds ``adaptive.delay_budget``, with
    hysteresis and per-IP fairness (see ``repro.overload``), while the
    lane queues themselves block as the backstop.
    ``chunk_size`` is the process executor's IPC batch size —
    invisible to results.  ``scorer_model`` enables per-lane
    micro-batched ensemble scoring under the ``batch`` budgets.
    """

    executor: str = "serial"
    queue_depth: int | None = None
    policy: ShedPolicy = ShedPolicy.BLOCK
    chunk_size: int = 256
    housekeeping_interval: float = 600.0
    #: Lane granularity: 1 = one lane per node (the node is the lane
    #: state); a value equal to each node's detection shard count hands
    #: every :class:`~repro.proxy.node.NodeShard` out as its own lane,
    #: so the process executor scales with cores instead of node count.
    lanes_per_node: int = 1
    batch: MicroBatchConfig = field(default_factory=MicroBatchConfig)
    scorer_model: AdaBoostModel | None = None
    #: Virtual-time sampling interval for the flight recorder
    #: (None = off).  Every lane — and the admission side, via
    #: :meth:`IngressPipeline.tick` — snapshots its metrics registry on
    #: this shared event-time grid.
    flight_interval: float | None = None
    #: Tail-sampling budgets for causal span tracing (None = tracing
    #: off, the zero-cost default).  Each lane worker owns a
    #: :class:`~repro.obs.spans.SpanTracer` and its retained trees ride
    #: the lane result back, merged in lane order.
    spans: SpanConfig | None = None
    #: Delay-budget admission tuning; required (and defaulted) when
    #: ``policy`` is ``ShedPolicy.ADAPTIVE``, rejected otherwise.
    adaptive: AdaptiveConfig | None = None
    #: Graduated response ladder (throttle -> CAPTCHA -> block) driven
    #: by micro-batch checkpoint verdicts; needs ``scorer_model``.
    ladder: LadderConfig | None = None

    def __post_init__(self) -> None:
        if self.flight_interval is not None and self.flight_interval <= 0:
            raise ValueError(
                "flight_interval must be positive (or None to disable)"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.executor!r}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(
                "queue_depth must be >= 1 (or None for unbounded)"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.housekeeping_interval < 0:
            raise ValueError("housekeeping_interval must be non-negative")
        if self.lanes_per_node < 1:
            raise ValueError("lanes_per_node must be >= 1")
        if self.policy is ShedPolicy.SHED and self.queue_depth is None:
            # An unbounded queue never refuses a put, so SHED would be
            # a silent no-op: the run *looks* shed-protected while
            # shedding nothing.  Refuse loudly instead.
            raise ValueError(
                "ShedPolicy.SHED with queue_depth=None can never shed "
                "(an unbounded queue never refuses): set a queue_depth "
                "or use ShedPolicy.BLOCK"
            )
        if self.policy is ShedPolicy.ADAPTIVE:
            if self.executor == "serial":
                # The serial executor handles events inline; its queues
                # are always empty, so the predicted delay is pinned at
                # zero and ADAPTIVE could never shed — the same silent
                # no-op shape as SHED on an unbounded queue.
                raise ValueError(
                    "ShedPolicy.ADAPTIVE needs a queued executor "
                    "(thread or process): the serial executor has no "
                    "backlog to measure a delay on"
                )
            if self.adaptive is None:
                object.__setattr__(self, "adaptive", AdaptiveConfig())
        elif self.adaptive is not None:
            raise ValueError(
                "adaptive admission tuning requires "
                "policy=ShedPolicy.ADAPTIVE"
            )
        if self.ladder is not None and self.scorer_model is None:
            raise ValueError(
                "the graduated response ladder is driven by micro-batch "
                "checkpoint verdicts: set scorer_model to enable it"
            )


@dataclass
class IngressResult:
    """Merged output of every lane, plus admission accounting."""

    sessions: list[SessionState] = field(default_factory=list)
    stats: NetworkStats = field(default_factory=NetworkStats)
    latencies: list[DetectionLatency] = field(default_factory=list)
    ml_verdicts: list[BatchVerdict] = field(default_factory=list)
    lanes: list[LaneResult] = field(default_factory=list)
    handled: int = 0
    probes_loaded: int = 0
    queued: int = 0
    shed: int = 0
    first_timestamp: float = 0.0
    last_timestamp: float = 0.0
    #: Deployment-wide metrics (admission + every lane, merged in lane
    #: order) and the merged flight-recorder timeline (empty unless
    #: ``flight_interval`` was set).
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    flight: list[FlightFrame] = field(default_factory=list)
    #: Tail-sampled span trees from every lane, merged in (lane, seq)
    #: order (empty unless ``spans`` was configured).
    spans: list[SpanTree] = field(default_factory=list)
    #: Network-wide graduated-response ladder state (None unless the
    #: ladder was enabled); byte-identical across executors and lane
    #: layouts once canonically serialised.
    ladder: dict | None = None
    #: Adaptive admission ledger (None unless policy was ADAPTIVE).
    overload: OverloadReport | None = None

    def session_sets(self) -> SessionSets:
        """Set-algebra census over the merged analyzable sessions."""
        return SessionSets.from_sessions(self.sessions)


class IngressPipeline:
    """Routes admitted events onto per-lane queues behind an executor.

    One lane per proxy node; build workers with
    :func:`replay_workers` / the workload engine's session workers and
    feed events through :meth:`submit` from a single admission driver
    (the calling thread, :class:`~repro.ingress.frontend.ThreadedDriver`,
    or :class:`~repro.ingress.frontend.AsyncIngress`).
    """

    def __init__(
        self,
        network: ProxyNetwork,
        workers,
        config: IngressConfig | None = None,
    ) -> None:
        config = config or IngressConfig()
        expected = len(network.nodes) * config.lanes_per_node
        if len(workers) != expected:
            raise ValueError(
                f"need one worker per (node, shard) lane: {len(workers)} "
                f"workers for {len(network.nodes)} nodes x "
                f"{config.lanes_per_node} lanes_per_node = {expected}"
            )
        if config.executor == "process" and (
            network.taps
            or any(
                node.detection.registry.has_listeners
                for node in network.nodes
            )
            or any(node.has_metric_listeners for node in network.nodes)
        ):
            raise ValueError(
                "traffic taps / registry listeners / metrics listeners "
                "cannot observe process-executor lanes (they would fire "
                "in the child interpreter and be lost): record with the "
                "serial or thread executor, or detach the observers first"
            )
        self._network = network
        self._config = config
        self._executor = build_executor(
            config.executor,
            workers,
            depth=config.queue_depth,
            policy=config.policy,
            chunk_size=config.chunk_size,
        )
        self._closed = False
        #: Admission-side registry: queue/shed accounting the lanes
        #: cannot see (they live behind the queues being measured).
        self.metrics = MetricsRegistry()
        #: Front-door delay-budget controller (ADAPTIVE policy only);
        #: the executor itself runs BLOCK as the backstop, so whatever
        #: the controller admits is never dropped again.
        self._adaptive = (
            DelayBudgetController(
                config.adaptive, expected, metrics=self.metrics
            )
            if config.policy is ShedPolicy.ADAPTIVE
            else None
        )
        # Live queue-delay prediction state: per-lane drain-rate EWMAs
        # fed from (enqueued - depth) deltas on the wall clock.
        self._delay_updated: float | None = None
        self._delay_delivered: dict[int, int] = {}
        self._drain_rates: dict[int, float] = {}
        self._predicted_delays: dict[int, float] = {}
        self._flight = (
            FlightRecorder(
                config.flight_interval,
                self.metrics,
                prepare=self._collect_admission,
            )
            if config.flight_interval
            else None
        )

    @property
    def config(self) -> IngressConfig:
        """The admission parameters."""
        return self._config

    @property
    def n_lanes(self) -> int:
        """How many lanes events are partitioned across."""
        return self._executor.n_lanes

    def lane_for(self, client_ip: str) -> int:
        """Stable lane assignment: sticky node index, then state shard.

        With ``lanes_per_node`` L, node i's shards occupy lanes
        ``i*L .. i*L+L-1``; the within-node offset is the same IP hash
        the partitioned stores shard on, so a lane's events touch
        exactly the state that lane carries.
        """
        node_index = self._network.node_index_for(client_ip)
        lanes = self._config.lanes_per_node
        if lanes <= 1:
            return node_index
        return node_index * lanes + partition_index(client_ip, lanes)

    def submit(self, event, client_ip: str, force: bool = False) -> bool:
        """Admit one event; False when the shed policy refused it.

        ``force`` bypasses shedding for events that must never drop
        (probe-journal registrations are key material, not load).
        """
        if self._closed:
            raise RuntimeError("submit() on a closed ingress pipeline")
        lane = self.lane_for(client_ip)
        if self._adaptive is not None and not force:
            admitted = self._adaptive.admit(
                lane, client_ip, self._predicted_delays.get(lane, 0.0)
            )
            if not admitted:
                return False
        return self._executor.submit(lane, event, force=force)

    #: Wall seconds between live queue-delay re-estimates (tick() is
    #: per-arrival; sampling queue depths that often would be noise).
    _DELAY_INTERVAL = 0.05
    #: Predicted delays are capped: a stalled lane reports this, never
    #: infinity (the canonical JSON exporters reject non-finite floats).
    _DELAY_CAP = 3600.0
    _DELAY_ALPHA = 0.2

    def tick(self, timestamp: float) -> None:
        """Advance admission-side observability to an event time.

        Drivers call this once per arrival (before submitting it): the
        flight recorder lands queue-depth and shed trajectories on the
        same virtual-time grid the lanes sample on, and the live
        queue-delay estimate (:meth:`queue_delays`) refreshes on a
        wall-clock rate limit.
        """
        if self._flight is not None:
            self._flight.tick(timestamp)
        now = time.monotonic()
        if (
            self._delay_updated is None
            or now - self._delay_updated >= self._DELAY_INTERVAL
        ):
            self._update_queue_delays(now)

    def queue_delays(self) -> dict[int, float]:
        """Predicted per-lane queueing delay in wall seconds, by lane.

        ``depth / drain-rate-EWMA`` per lane — the admission-side
        latency signal queue-delay-aware shedding (the ROADMAP's
        graduated-response ladder) reads.  Empty until the first
        :meth:`tick`; a backlogged lane whose drain rate has collapsed
        reports the cap, never infinity.
        """
        return dict(self._predicted_delays)

    def _update_queue_delays(self, now: float) -> None:
        depths = self._executor.lane_depths()
        elapsed = (
            None
            if self._delay_updated is None
            else now - self._delay_updated
        )
        self._delay_updated = now
        for counters in self._executor.telemetry_now():
            lane = counters.lane
            depth = depths[lane]
            delivered = max(0, counters.enqueued - depth)
            previous = self._delay_delivered.get(lane)
            self._delay_delivered[lane] = delivered
            if elapsed is not None and elapsed > 0 and previous is not None:
                rate = (delivered - previous) / elapsed
                ewma = self._drain_rates.get(lane)
                self._drain_rates[lane] = (
                    rate
                    if ewma is None
                    else ewma + self._DELAY_ALPHA * (rate - ewma)
                )
            rate = self._drain_rates.get(lane, 0.0)
            if depth == 0:
                predicted = 0.0
            elif rate <= 0.0:
                predicted = self._DELAY_CAP
            else:
                predicted = min(self._DELAY_CAP, depth / rate)
            self._set_predicted(lane, predicted)

    def _collect_admission(self) -> None:
        # Transport chunking must not show up in frames: flushed, the
        # enqueued counters reflect exactly the events submitted before
        # this virtual-time boundary — identical on every executor.
        self._executor.flush_pending()
        depths = self._executor.lane_depths()
        adaptive_shed = self._adaptive_lane_shed()
        for counters in self._executor.telemetry_now():
            labels = {"lane": str(counters.lane)}
            self.metrics.counter(
                "repro_ingress_admitted_total", labels
            ).set(counters.enqueued)
            self.metrics.counter(
                "repro_ingress_shed_total", labels
            ).set(counters.shed + adaptive_shed[counters.lane])
            if counters.shed:
                self.metrics.counter(
                    "repro_ingress_shed_reason_total",
                    {**labels, "reason": "queue_full"},
                    wall=True,
                ).set(counters.shed)
            self.metrics.gauge(
                "repro_ingress_queue_high_watermark",
                labels,
                wall=True,
                agg="max",
            ).set_max(counters.high_watermark)
            self.metrics.gauge(
                "repro_ingress_queue_depth", labels, wall=True
            ).set(depths[counters.lane])
        # A lane that fully drained since the last tick() must not keep
        # reporting its last (pre-drain) delay prediction: a stale
        # non-zero series would tell the adaptive controller — and any
        # flight-recorder frame — that an empty lane is still slow.
        for lane, predicted in list(self._predicted_delays.items()):
            if predicted and depths[lane] == 0:
                self._set_predicted(lane, 0.0)

    def _set_predicted(self, lane: int, predicted: float) -> None:
        self._predicted_delays[lane] = predicted
        self.metrics.gauge(
            "repro_ingress_queue_delay_predicted_seconds",
            {"lane": str(lane)},
            wall=True,
        ).set(predicted)

    def _adaptive_lane_shed(self) -> list[int]:
        if self._adaptive is None:
            return [0] * self._executor.n_lanes
        return self._adaptive.lane_shed_counts()

    def close(self) -> IngressResult:
        """Drain every lane, collect lane results, merge deterministically."""
        if self._closed:
            raise RuntimeError("ingress pipeline already closed")
        self._closed = True
        lane_results, telemetry = self._executor.close()
        return self._merge(lane_results, telemetry)

    def _merge(self, lane_results, telemetry) -> IngressResult:
        result = IngressResult(lanes=list(lane_results))
        adaptive_shed = self._adaptive_lane_shed()
        firsts: list[float] = []
        lasts: list[float] = []
        for lane in lane_results:
            counters = telemetry[lane.lane]
            # Admission-side accounting folds into the lane's own node
            # stats so Table-1 aggregates always balance: every arrival
            # is either queued (and eventually handled) or shed —
            # whether the queue refused it or the delay-budget
            # controller did.
            lane.stats.queued += counters.enqueued
            lane.stats.shed += counters.shed + adaptive_shed[lane.lane]
            result.ml_verdicts.extend(lane.ml_verdicts)
            result.stats.absorb(lane.stats)
            result.handled += lane.handled
            result.probes_loaded += lane.probes_loaded
            if lane.first_timestamp is not None:
                firsts.append(lane.first_timestamp)
            if lane.last_timestamp is not None:
                lasts.append(lane.last_timestamp)
        lanes_per_node = self._config.lanes_per_node
        if lanes_per_node <= 1:
            for lane in lane_results:
                result.sessions.extend(lane.sessions)
                result.latencies.extend(lane.latencies)
        else:
            # Per-shard lanes: regroup each node's shard lanes and merge
            # their sessions in the same deterministic order the sharded
            # service's own reductions use, latencies riding along with
            # their sessions — so the merged lists are byte-identical to
            # the one-lane-per-node layout.
            for start in range(0, len(lane_results), lanes_per_node):
                pairs = [
                    (session, latency)
                    for lane in lane_results[start : start + lanes_per_node]
                    for session, latency in zip(
                        lane.sessions, lane.latencies
                    )
                ]
                pairs.sort(key=lambda pair: _session_order(pair[0]))
                result.sessions.extend(pair[0] for pair in pairs)
                result.latencies.extend(pair[1] for pair in pairs)
        result.queued = result.stats.queued
        result.shed = result.stats.shed
        result.first_timestamp = min(firsts) if firsts else 0.0
        result.last_timestamp = max(lasts) if lasts else 0.0
        # Final admission accounting (idempotent set(), so it agrees
        # with whatever the flight recorder already collected), then the
        # deployment-wide merge: admission registry first, lane
        # snapshots in lane order.
        for counters in telemetry:
            labels = {"lane": str(counters.lane)}
            self.metrics.counter(
                "repro_ingress_admitted_total", labels
            ).set(counters.enqueued)
            self.metrics.counter(
                "repro_ingress_shed_total", labels
            ).set(counters.shed + adaptive_shed[counters.lane])
            if counters.shed:
                self.metrics.counter(
                    "repro_ingress_shed_reason_total",
                    {**labels, "reason": "queue_full"},
                    wall=True,
                ).set(counters.shed)
            self.metrics.gauge(
                "repro_ingress_queue_high_watermark",
                labels,
                wall=True,
                agg="max",
            ).set_max(counters.high_watermark)
        # Every queue is drained at close: clear any still-published
        # delay prediction so the final snapshot cannot carry a stale
        # non-zero series for an empty lane.
        for lane, predicted in list(self._predicted_delays.items()):
            if predicted:
                self._set_predicted(lane, 0.0)
        if self._adaptive is not None:
            result.overload = self._adaptive.report()
        ladder_states = [
            lane.ladder for lane in lane_results if lane.ladder is not None
        ]
        if ladder_states:
            result.ladder = merge_ladder_states(ladder_states)
        lane_snapshots = [
            lane.metrics
            for lane in lane_results
            if lane.metrics is not None
        ]
        result.metrics = merge_snapshots(
            [self.metrics.snapshot(), *lane_snapshots]
        )
        result.spans = merge_traces(
            lane.spans for lane in lane_results
        )
        if self._flight is not None or any(
            lane.flight for lane in lane_results
        ):
            frames = [lane.flight for lane in lane_results]
            finals = [
                lane.metrics or MetricsSnapshot() for lane in lane_results
            ]
            if self._flight is not None:
                frames = [self._flight.frames, *frames]
                finals = [self.metrics.snapshot(), *finals]
            result.flight = merge_flight(frames, finals)
        return result


def replay_workers(
    network: ProxyNetwork, config: IngressConfig
) -> list:
    """One :class:`ReplayLaneWorker` per lane state, from ``config``.

    ``lanes_per_node == 1`` wraps each node; larger values hand out each
    node's :class:`~repro.proxy.node.NodeShard` as its own lane (the
    node refuses counts that do not match its shard layout).
    """
    from repro.ingress.workers import ReplayLaneWorker

    workers = []
    for node in network.nodes:
        for state in node.lane_states(config.lanes_per_node):
            workers.append(
                ReplayLaneWorker(
                    len(workers),
                    state,
                    housekeeping_interval=config.housekeeping_interval,
                    scorer_model=config.scorer_model,
                    batch=config.batch,
                    taps=network.taps,
                    flight_interval=config.flight_interval,
                    spans=config.spans,
                    ladder=config.ladder,
                )
            )
    return workers
