"""The ingress pipeline: admission, routing, dispatch, merge.

This is the layer the ROADMAP's "async proxy front end" item asked for:
between *arrival* (a trace event, a synthetic session) and *shard*
(a proxy node's detection state) now sits an explicit admission step
that

1. routes every event by the stable BLAKE2b hash of its session key's
   client IP — the same sticky assignment CoDeeN clients get, and the
   partition the paper's probe table is indexed by, so all of a
   client's sessions, probes and rate-limit state live in one lane;
2. enqueues it on that lane's bounded queue (backpressure by default,
   counted load-shedding on request); and
3. lets a pluggable executor — serial, thread, or true-parallel
   process — consume each lane strictly in admission order.

Because lanes are total partitions of mutable state and each lane is
consumed in admission order, the final reductions are a pure function
of the admitted event sequence: executor choice and queue depth change
wall-clock behaviour, never results.  The merge step reassembles lane
results in lane order (the same order the synchronous code iterates
nodes), so even list layouts match the one-thread path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ingress.batcher import MicroBatchConfig
from repro.ingress.executors import EXECUTOR_KINDS, build_executor
from repro.ingress.queues import ShedPolicy
from repro.ingress.workers import LaneResult
from repro.detection.online import DetectionLatency
from repro.detection.session import SessionState
from repro.detection.sharded import _session_order
from repro.detection.set_algebra import SessionSets
from repro.ml.adaboost import AdaBoostModel
from repro.ml.batch import BatchVerdict
from repro.obs.flight import FlightFrame, FlightRecorder, merge_flight
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.spans import SpanConfig, SpanTree, merge_traces
from repro.proxy.network import NetworkStats, ProxyNetwork
from repro.state.partition import partition_index


@dataclass(frozen=True)
class IngressConfig:
    """Admission and dispatch parameters.

    ``queue_depth`` bounds each lane's backlog in events (None =
    unbounded).  ``policy`` picks what a full queue does to admission:
    ``BLOCK`` (default) applies backpressure and preserves bit-exact
    determinism at any depth; ``SHED`` refuses the event, counts it in
    the node/network ``shed`` statistic, and keeps queueing delay
    bounded.  ``chunk_size`` is the process executor's IPC batch size —
    invisible to results.  ``scorer_model`` enables per-lane
    micro-batched ensemble scoring under the ``batch`` budgets.
    """

    executor: str = "serial"
    queue_depth: int | None = None
    policy: ShedPolicy = ShedPolicy.BLOCK
    chunk_size: int = 256
    housekeeping_interval: float = 600.0
    #: Lane granularity: 1 = one lane per node (the node is the lane
    #: state); a value equal to each node's detection shard count hands
    #: every :class:`~repro.proxy.node.NodeShard` out as its own lane,
    #: so the process executor scales with cores instead of node count.
    lanes_per_node: int = 1
    batch: MicroBatchConfig = field(default_factory=MicroBatchConfig)
    scorer_model: AdaBoostModel | None = None
    #: Virtual-time sampling interval for the flight recorder
    #: (None = off).  Every lane — and the admission side, via
    #: :meth:`IngressPipeline.tick` — snapshots its metrics registry on
    #: this shared event-time grid.
    flight_interval: float | None = None
    #: Tail-sampling budgets for causal span tracing (None = tracing
    #: off, the zero-cost default).  Each lane worker owns a
    #: :class:`~repro.obs.spans.SpanTracer` and its retained trees ride
    #: the lane result back, merged in lane order.
    spans: SpanConfig | None = None

    def __post_init__(self) -> None:
        if self.flight_interval is not None and self.flight_interval <= 0:
            raise ValueError(
                "flight_interval must be positive (or None to disable)"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.executor!r}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(
                "queue_depth must be >= 1 (or None for unbounded)"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.housekeeping_interval < 0:
            raise ValueError("housekeeping_interval must be non-negative")
        if self.lanes_per_node < 1:
            raise ValueError("lanes_per_node must be >= 1")


@dataclass
class IngressResult:
    """Merged output of every lane, plus admission accounting."""

    sessions: list[SessionState] = field(default_factory=list)
    stats: NetworkStats = field(default_factory=NetworkStats)
    latencies: list[DetectionLatency] = field(default_factory=list)
    ml_verdicts: list[BatchVerdict] = field(default_factory=list)
    lanes: list[LaneResult] = field(default_factory=list)
    handled: int = 0
    probes_loaded: int = 0
    queued: int = 0
    shed: int = 0
    first_timestamp: float = 0.0
    last_timestamp: float = 0.0
    #: Deployment-wide metrics (admission + every lane, merged in lane
    #: order) and the merged flight-recorder timeline (empty unless
    #: ``flight_interval`` was set).
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    flight: list[FlightFrame] = field(default_factory=list)
    #: Tail-sampled span trees from every lane, merged in (lane, seq)
    #: order (empty unless ``spans`` was configured).
    spans: list[SpanTree] = field(default_factory=list)

    def session_sets(self) -> SessionSets:
        """Set-algebra census over the merged analyzable sessions."""
        return SessionSets.from_sessions(self.sessions)


class IngressPipeline:
    """Routes admitted events onto per-lane queues behind an executor.

    One lane per proxy node; build workers with
    :func:`replay_workers` / the workload engine's session workers and
    feed events through :meth:`submit` from a single admission driver
    (the calling thread, :class:`~repro.ingress.frontend.ThreadedDriver`,
    or :class:`~repro.ingress.frontend.AsyncIngress`).
    """

    def __init__(
        self,
        network: ProxyNetwork,
        workers,
        config: IngressConfig | None = None,
    ) -> None:
        config = config or IngressConfig()
        expected = len(network.nodes) * config.lanes_per_node
        if len(workers) != expected:
            raise ValueError(
                f"need one worker per (node, shard) lane: {len(workers)} "
                f"workers for {len(network.nodes)} nodes x "
                f"{config.lanes_per_node} lanes_per_node = {expected}"
            )
        if config.executor == "process" and (
            network.taps
            or any(
                node.detection.registry.has_listeners
                for node in network.nodes
            )
            or any(node.has_metric_listeners for node in network.nodes)
        ):
            raise ValueError(
                "traffic taps / registry listeners / metrics listeners "
                "cannot observe process-executor lanes (they would fire "
                "in the child interpreter and be lost): record with the "
                "serial or thread executor, or detach the observers first"
            )
        self._network = network
        self._config = config
        self._executor = build_executor(
            config.executor,
            workers,
            depth=config.queue_depth,
            policy=config.policy,
            chunk_size=config.chunk_size,
        )
        self._closed = False
        #: Admission-side registry: queue/shed accounting the lanes
        #: cannot see (they live behind the queues being measured).
        self.metrics = MetricsRegistry()
        # Live queue-delay prediction state: per-lane drain-rate EWMAs
        # fed from (enqueued - depth) deltas on the wall clock.
        self._delay_updated: float | None = None
        self._delay_delivered: dict[int, int] = {}
        self._drain_rates: dict[int, float] = {}
        self._predicted_delays: dict[int, float] = {}
        self._flight = (
            FlightRecorder(
                config.flight_interval,
                self.metrics,
                prepare=self._collect_admission,
            )
            if config.flight_interval
            else None
        )

    @property
    def config(self) -> IngressConfig:
        """The admission parameters."""
        return self._config

    @property
    def n_lanes(self) -> int:
        """How many lanes events are partitioned across."""
        return self._executor.n_lanes

    def lane_for(self, client_ip: str) -> int:
        """Stable lane assignment: sticky node index, then state shard.

        With ``lanes_per_node`` L, node i's shards occupy lanes
        ``i*L .. i*L+L-1``; the within-node offset is the same IP hash
        the partitioned stores shard on, so a lane's events touch
        exactly the state that lane carries.
        """
        node_index = self._network.node_index_for(client_ip)
        lanes = self._config.lanes_per_node
        if lanes <= 1:
            return node_index
        return node_index * lanes + partition_index(client_ip, lanes)

    def submit(self, event, client_ip: str, force: bool = False) -> bool:
        """Admit one event; False when the shed policy refused it.

        ``force`` bypasses shedding for events that must never drop
        (probe-journal registrations are key material, not load).
        """
        if self._closed:
            raise RuntimeError("submit() on a closed ingress pipeline")
        return self._executor.submit(
            self.lane_for(client_ip), event, force=force
        )

    #: Wall seconds between live queue-delay re-estimates (tick() is
    #: per-arrival; sampling queue depths that often would be noise).
    _DELAY_INTERVAL = 0.05
    #: Predicted delays are capped: a stalled lane reports this, never
    #: infinity (the canonical JSON exporters reject non-finite floats).
    _DELAY_CAP = 3600.0
    _DELAY_ALPHA = 0.2

    def tick(self, timestamp: float) -> None:
        """Advance admission-side observability to an event time.

        Drivers call this once per arrival (before submitting it): the
        flight recorder lands queue-depth and shed trajectories on the
        same virtual-time grid the lanes sample on, and the live
        queue-delay estimate (:meth:`queue_delays`) refreshes on a
        wall-clock rate limit.
        """
        if self._flight is not None:
            self._flight.tick(timestamp)
        now = time.monotonic()
        if (
            self._delay_updated is None
            or now - self._delay_updated >= self._DELAY_INTERVAL
        ):
            self._update_queue_delays(now)

    def queue_delays(self) -> dict[int, float]:
        """Predicted per-lane queueing delay in wall seconds, by lane.

        ``depth / drain-rate-EWMA`` per lane — the admission-side
        latency signal queue-delay-aware shedding (the ROADMAP's
        graduated-response ladder) reads.  Empty until the first
        :meth:`tick`; a backlogged lane whose drain rate has collapsed
        reports the cap, never infinity.
        """
        return dict(self._predicted_delays)

    def _update_queue_delays(self, now: float) -> None:
        depths = self._executor.lane_depths()
        elapsed = (
            None
            if self._delay_updated is None
            else now - self._delay_updated
        )
        self._delay_updated = now
        for counters in self._executor.telemetry_now():
            lane = counters.lane
            depth = depths[lane]
            delivered = max(0, counters.enqueued - depth)
            previous = self._delay_delivered.get(lane)
            self._delay_delivered[lane] = delivered
            if elapsed is not None and elapsed > 0 and previous is not None:
                rate = (delivered - previous) / elapsed
                ewma = self._drain_rates.get(lane)
                self._drain_rates[lane] = (
                    rate
                    if ewma is None
                    else ewma + self._DELAY_ALPHA * (rate - ewma)
                )
            rate = self._drain_rates.get(lane, 0.0)
            if depth == 0:
                predicted = 0.0
            elif rate <= 0.0:
                predicted = self._DELAY_CAP
            else:
                predicted = min(self._DELAY_CAP, depth / rate)
            self._predicted_delays[lane] = predicted
            self.metrics.gauge(
                "repro_ingress_queue_delay_predicted_seconds",
                {"lane": str(lane)},
                wall=True,
            ).set(predicted)

    def _collect_admission(self) -> None:
        # Transport chunking must not show up in frames: flushed, the
        # enqueued counters reflect exactly the events submitted before
        # this virtual-time boundary — identical on every executor.
        self._executor.flush_pending()
        depths = self._executor.lane_depths()
        for counters in self._executor.telemetry_now():
            labels = {"lane": str(counters.lane)}
            self.metrics.counter(
                "repro_ingress_admitted_total", labels
            ).set(counters.enqueued)
            self.metrics.counter(
                "repro_ingress_shed_total", labels
            ).set(counters.shed)
            self.metrics.gauge(
                "repro_ingress_queue_high_watermark",
                labels,
                wall=True,
                agg="max",
            ).set_max(counters.high_watermark)
            self.metrics.gauge(
                "repro_ingress_queue_depth", labels, wall=True
            ).set(depths[counters.lane])

    def close(self) -> IngressResult:
        """Drain every lane, collect lane results, merge deterministically."""
        if self._closed:
            raise RuntimeError("ingress pipeline already closed")
        self._closed = True
        lane_results, telemetry = self._executor.close()
        return self._merge(lane_results, telemetry)

    def _merge(self, lane_results, telemetry) -> IngressResult:
        result = IngressResult(lanes=list(lane_results))
        firsts: list[float] = []
        lasts: list[float] = []
        for lane in lane_results:
            counters = telemetry[lane.lane]
            # Admission-side accounting folds into the lane's own node
            # stats so Table-1 aggregates always balance: every arrival
            # is either queued (and eventually handled) or shed.
            lane.stats.queued += counters.enqueued
            lane.stats.shed += counters.shed
            result.ml_verdicts.extend(lane.ml_verdicts)
            result.stats.absorb(lane.stats)
            result.handled += lane.handled
            result.probes_loaded += lane.probes_loaded
            if lane.first_timestamp is not None:
                firsts.append(lane.first_timestamp)
            if lane.last_timestamp is not None:
                lasts.append(lane.last_timestamp)
        lanes_per_node = self._config.lanes_per_node
        if lanes_per_node <= 1:
            for lane in lane_results:
                result.sessions.extend(lane.sessions)
                result.latencies.extend(lane.latencies)
        else:
            # Per-shard lanes: regroup each node's shard lanes and merge
            # their sessions in the same deterministic order the sharded
            # service's own reductions use, latencies riding along with
            # their sessions — so the merged lists are byte-identical to
            # the one-lane-per-node layout.
            for start in range(0, len(lane_results), lanes_per_node):
                pairs = [
                    (session, latency)
                    for lane in lane_results[start : start + lanes_per_node]
                    for session, latency in zip(
                        lane.sessions, lane.latencies
                    )
                ]
                pairs.sort(key=lambda pair: _session_order(pair[0]))
                result.sessions.extend(pair[0] for pair in pairs)
                result.latencies.extend(pair[1] for pair in pairs)
        result.queued = result.stats.queued
        result.shed = result.stats.shed
        result.first_timestamp = min(firsts) if firsts else 0.0
        result.last_timestamp = max(lasts) if lasts else 0.0
        # Final admission accounting (idempotent set(), so it agrees
        # with whatever the flight recorder already collected), then the
        # deployment-wide merge: admission registry first, lane
        # snapshots in lane order.
        for counters in telemetry:
            labels = {"lane": str(counters.lane)}
            self.metrics.counter(
                "repro_ingress_admitted_total", labels
            ).set(counters.enqueued)
            self.metrics.counter(
                "repro_ingress_shed_total", labels
            ).set(counters.shed)
            self.metrics.gauge(
                "repro_ingress_queue_high_watermark",
                labels,
                wall=True,
                agg="max",
            ).set_max(counters.high_watermark)
        lane_snapshots = [
            lane.metrics
            for lane in lane_results
            if lane.metrics is not None
        ]
        result.metrics = merge_snapshots(
            [self.metrics.snapshot(), *lane_snapshots]
        )
        result.spans = merge_traces(
            lane.spans for lane in lane_results
        )
        if self._flight is not None or any(
            lane.flight for lane in lane_results
        ):
            frames = [lane.flight for lane in lane_results]
            finals = [
                lane.metrics or MetricsSnapshot() for lane in lane_results
            ]
            if self._flight is not None:
                frames = [self._flight.frames, *frames]
                finals = [self.metrics.snapshot(), *finals]
            result.flight = merge_flight(frames, finals)
        return result


def replay_workers(
    network: ProxyNetwork, config: IngressConfig
) -> list:
    """One :class:`ReplayLaneWorker` per lane state, from ``config``.

    ``lanes_per_node == 1`` wraps each node; larger values hand out each
    node's :class:`~repro.proxy.node.NodeShard` as its own lane (the
    node refuses counts that do not match its shard layout).
    """
    from repro.ingress.workers import ReplayLaneWorker

    workers = []
    for node in network.nodes:
        for state in node.lane_states(config.lanes_per_node):
            workers.append(
                ReplayLaneWorker(
                    len(workers),
                    state,
                    housekeeping_interval=config.housekeeping_interval,
                    scorer_model=config.scorer_model,
                    batch=config.batch,
                    taps=network.taps,
                    flight_interval=config.flight_interval,
                    spans=config.spans,
                )
            )
    return workers
