"""Ingress subsystem: async admission, per-lane queues, micro-batched
scoring, and true parallel lane executors.

The detection pipeline (PR 2) can batch and shard, but until now every
request reached it through a synchronous one-at-a-time call.  This
package adds the missing stage between *arrival* and *shard* that
web-scale detectors (BOTracle, BotGraph) stage explicitly:

* :mod:`repro.ingress.queues` — bounded per-lane FIFOs with
  backpressure and counted load shedding;
* :mod:`repro.ingress.executors` — pluggable lane executors: serial,
  thread, and a process pool with picklable lane state that delivers
  real parallelism past the GIL;
* :mod:`repro.ingress.batcher` — per-lane micro-batching of ensemble
  scoring (count / virtual-latency flush budgets over
  :class:`~repro.ml.batch.BatchScorer`);
* :mod:`repro.ingress.workers` — the replay and workload lane workers;
* :mod:`repro.ingress.pipeline` — admission, hash routing, and the
  deterministic merge;
* :mod:`repro.ingress.frontend` — asyncio and thread admission drivers.

Everything is deterministic by construction: lanes partition mutable
state totally, each lane consumes its events in admission order, and
merges happen in lane order — so executors and queue depths change
wall-clock behaviour, never results (the invariant the test suite pins
across ``{serial, thread, process}`` × queue depths).
"""

from repro.ingress.batcher import MicroBatchConfig, MicroBatcher
from repro.ingress.executors import (
    EXECUTOR_KINDS,
    ProcessLaneExecutor,
    SerialLaneExecutor,
    ThreadLaneExecutor,
    build_executor,
)
from repro.ingress.frontend import AsyncIngress, ThreadedDriver
from repro.ingress.pipeline import (
    IngressConfig,
    IngressPipeline,
    IngressResult,
    replay_workers,
)
from repro.ingress.queues import CLOSED, LaneQueue, QueueClosed, ShedPolicy
from repro.ingress.workers import (
    LaneResult,
    ReplayLaneWorker,
    WorkloadLaneWorker,
)

__all__ = [
    "AsyncIngress",
    "CLOSED",
    "EXECUTOR_KINDS",
    "IngressConfig",
    "IngressPipeline",
    "IngressResult",
    "LaneQueue",
    "LaneResult",
    "MicroBatchConfig",
    "MicroBatcher",
    "ProcessLaneExecutor",
    "QueueClosed",
    "ReplayLaneWorker",
    "SerialLaneExecutor",
    "ShedPolicy",
    "ThreadLaneExecutor",
    "ThreadedDriver",
    "WorkloadLaneWorker",
    "build_executor",
    "replay_workers",
]
