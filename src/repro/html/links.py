"""Reference extraction: what a client could fetch next from a page.

This is the agent-side view of a served page.  Browsers fetch embedded
objects (stylesheets, scripts, images, audio) and follow *visible* links;
crawlers follow every link including hidden ones; JavaScript-capable
clients additionally look at inline scripts and the body's event handlers.
The hidden-link trap from §2.2 — an anchor whose only content is a
transparent 1×1 image — is recognised here so the agent models can choose
to respect or ignore visibility exactly as their real counterparts do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.html.document import Element, Text, walk
from repro.html.parser import parse_html


@dataclass
class PageReferences:
    """All outbound references of one HTML page, classified."""

    stylesheets: list[str] = field(default_factory=list)
    scripts: list[str] = field(default_factory=list)
    images: list[str] = field(default_factory=list)
    audio: list[str] = field(default_factory=list)
    visible_links: list[str] = field(default_factory=list)
    hidden_links: list[str] = field(default_factory=list)
    inline_scripts: list[str] = field(default_factory=list)
    body_event_handlers: dict[str, str] = field(default_factory=dict)

    @property
    def embedded_objects(self) -> list[str]:
        """Everything a rendering browser fetches automatically."""
        return [*self.stylesheets, *self.scripts, *self.images, *self.audio]

    @property
    def all_links(self) -> list[str]:
        """Visible and hidden anchors together (a blind crawler's view)."""
        return [*self.visible_links, *self.hidden_links]


def extract_references(html: str) -> PageReferences:
    """Parse ``html`` and classify every outbound reference."""
    return extract_references_from_tree(parse_html(html))


def extract_references_from_tree(root: Element) -> PageReferences:
    """Classify references from an already-parsed tree."""
    refs = PageReferences()
    for node in walk(root):
        if not isinstance(node, Element):
            continue
        if node.tag == "link":
            rel = (node.get("rel") or "").lower().strip("'\" ")
            href = node.get("href")
            if href and "stylesheet" in rel:
                refs.stylesheets.append(href)
            elif href and "icon" in rel:
                refs.images.append(href)
        elif node.tag == "script":
            src = node.get("src")
            if src:
                refs.scripts.append(src)
            else:
                source = node.text_content()
                if source.strip():
                    refs.inline_scripts.append(source)
        elif node.tag == "img":
            src = node.get("src")
            if src:
                refs.images.append(src)
        elif node.tag in ("audio", "bgsound", "embed"):
            src = node.get("src")
            if src:
                refs.audio.append(src)
        elif node.tag == "a":
            href = node.get("href")
            if href and not href.lower().startswith(("javascript:", "mailto:")):
                if _is_hidden_anchor(node):
                    refs.hidden_links.append(href)
                else:
                    refs.visible_links.append(href)
        elif node.tag == "body":
            for name, value in node.attrs.items():
                if name.startswith("on"):
                    refs.body_event_handlers[name] = value
    return refs


def _is_hidden_anchor(anchor: Element) -> bool:
    """True when the anchor is invisible to a human (the §2.2 trap pattern).

    Two patterns count as hidden: a ``display:none``/``visibility:hidden``
    style on the anchor itself, or anchor content consisting solely of
    transparent/1×1 images with no visible text.
    """
    style = (anchor.get("style") or "").replace(" ", "").lower()
    if "display:none" in style or "visibility:hidden" in style:
        return True

    has_content = False
    for node in walk(anchor):
        if node is anchor:
            continue
        if isinstance(node, Text):
            if node.data.strip():
                return False
            continue
        if node.tag == "img":
            has_content = True
            if not _is_invisible_image(node):
                return False
        elif node.tag not in ("span", "div", "font", "b", "i"):
            return False
    return has_content


def _is_invisible_image(img: Element) -> bool:
    """1×1 or transparent-by-name images render as invisible."""
    width = (img.get("width") or "").strip()
    height = (img.get("height") or "").strip()
    if width in ("0", "1") and height in ("0", "1"):
        return True
    src = (img.get("src") or "").lower()
    return "transp" in src or "1x1" in src or "blank" in src or "spacer" in src
