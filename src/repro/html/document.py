"""Element tree for parsed HTML.

A deliberately small DOM: elements with lowercase tag names, an attribute
dict, and mixed children (elements and text).  Enough structure for the
instrumenter to insert nodes at precise places (a handler attribute on
<body>, a <link> inside <head>, a trap anchor before </body>) and for
agents to walk pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


@dataclass
class Text:
    """A text node."""

    data: str


@dataclass
class Element:
    """An element node with attributes and ordered children."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list[Union["Element", Text]] = field(default_factory=list)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Attribute lookup (names are stored lowercased by the parser)."""
        return self.attrs.get(name.lower(), default)

    def set(self, name: str, value: str) -> None:
        """Set an attribute."""
        self.attrs[name.lower()] = value

    def append(self, node: Union["Element", Text]) -> None:
        """Append a child node."""
        self.children.append(node)

    def prepend(self, node: Union["Element", Text]) -> None:
        """Insert a child node at the front."""
        self.children.insert(0, node)

    def find(self, tag: str) -> "Element | None":
        """First descendant element with the given tag (depth-first)."""
        lowered = tag.lower()
        for node in walk(self):
            if isinstance(node, Element) and node.tag == lowered and node is not self:
                return node
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """All descendant elements with the given tag, in document order."""
        lowered = tag.lower()
        return [
            node
            for node in walk(self)
            if isinstance(node, Element) and node.tag == lowered and node is not self
        ]

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts = [node.data for node in walk(self) if isinstance(node, Text)]
        return "".join(parts)


Node = Union[Element, Text]


def walk(root: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal including ``root`` itself."""
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Element):
            stack.extend(reversed(node.children))
