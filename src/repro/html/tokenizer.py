"""A forgiving HTML tokenizer.

Produces a flat stream of start tags (with attributes), end tags, text and
comments.  It follows the small set of rules real-world 2006 HTML needs:
case-insensitive tag/attribute names, quoted or bare attribute values,
self-closing syntax, raw-text handling for <script> and <style> (their
content is not scanned for tags), and silent recovery from malformed
markup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Union

_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:_-]*")
_ATTR_RE = re.compile(
    r"""\s+([a-zA-Z_:][a-zA-Z0-9:._-]*)      # attribute name
        (?:\s*=\s*
            (?:"([^"]*)"                     # double-quoted value
              |'([^']*)'                     # single-quoted value
              |([^\s>]+)                     # bare value
            )
        )?
    """,
    re.VERBOSE,
)

RAW_TEXT_TAGS = frozenset({"script", "style"})

VOID_TAGS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param"}
)


@dataclass(frozen=True)
class StartTagToken:
    """``<name attr=value ...>`` (or ``<name ... />`` with self_closing)."""

    name: str
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass(frozen=True)
class EndTagToken:
    """``</name>``."""

    name: str


@dataclass(frozen=True)
class TextToken:
    """Character data between tags."""

    data: str


@dataclass(frozen=True)
class CommentToken:
    """``<!-- ... -->`` (also swallows doctypes and processing instructions)."""

    data: str


Token = Union[StartTagToken, EndTagToken, TextToken, CommentToken]


def tokenize(html: str) -> Iterator[Token]:
    """Yield tokens from an HTML string; never raises on malformed input."""
    pos = 0
    length = len(html)
    raw_until: str | None = None

    while pos < length:
        if raw_until is not None:
            # Inside <script>/<style>: everything up to the matching close
            # tag is text.
            close = html.lower().find(f"</{raw_until}", pos)
            if close == -1:
                if pos < length:
                    yield TextToken(html[pos:])
                return
            if close > pos:
                yield TextToken(html[pos:close])
            pos = close
            raw_until = None
            continue

        lt = html.find("<", pos)
        if lt == -1:
            yield TextToken(html[pos:])
            return
        if lt > pos:
            yield TextToken(html[pos:lt])
            pos = lt

        # Comment / doctype / processing instruction.
        if html.startswith("<!--", pos):
            end = html.find("-->", pos + 4)
            if end == -1:
                yield CommentToken(html[pos + 4 :])
                return
            yield CommentToken(html[pos + 4 : end])
            pos = end + 3
            continue
        if html.startswith("<!", pos) or html.startswith("<?", pos):
            end = html.find(">", pos)
            if end == -1:
                yield CommentToken(html[pos + 2 :])
                return
            yield CommentToken(html[pos + 2 : end])
            pos = end + 1
            continue

        # End tag.
        if html.startswith("</", pos):
            match = _TAG_NAME_RE.match(html, pos + 2)
            if match is None:
                yield TextToken("<")
                pos += 1
                continue
            name = match.group(0).lower()
            end = html.find(">", match.end())
            pos = length if end == -1 else end + 1
            yield EndTagToken(name)
            continue

        # Start tag.
        match = _TAG_NAME_RE.match(html, pos + 1)
        if match is None:
            yield TextToken("<")
            pos += 1
            continue
        name = match.group(0).lower()
        end = html.find(">", match.end())
        if end == -1:
            attr_text = html[match.end() :]
            pos = length
        else:
            attr_text = html[match.end() : end]
            pos = end + 1
        self_closing = attr_text.rstrip().endswith("/")
        attrs: dict[str, str] = {}
        for attr_match in _ATTR_RE.finditer(" " + attr_text):
            attr_name = attr_match.group(1).lower()
            value = next(
                (g for g in attr_match.groups()[1:] if g is not None), ""
            )
            if attr_name not in attrs:
                attrs[attr_name] = value
        yield StartTagToken(name, attrs, self_closing)
        if name in RAW_TEXT_TAGS and not self_closing:
            raw_until = name
