"""Element tree -> HTML text."""

from __future__ import annotations

from repro.html.document import Element, Node, Text
from repro.html.tokenizer import RAW_TEXT_TAGS, VOID_TAGS


def serialize(node: Node) -> str:
    """Serialize a node (and its subtree) back to HTML text.

    Attribute values are double-quoted with minimal escaping; raw-text
    elements (<script>, <style>) emit their text children verbatim so
    injected JavaScript survives the round trip byte-for-byte.
    """
    parts: list[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node: Node, parts: list[str]) -> None:
    if isinstance(node, Text):
        parts.append(node.data)
        return

    attrs = "".join(
        f' {name}="{_escape_attr(value)}"' for name, value in node.attrs.items()
    )
    if node.tag in VOID_TAGS and not node.children:
        parts.append(f"<{node.tag}{attrs}>")
        return
    parts.append(f"<{node.tag}{attrs}>")
    if node.tag in RAW_TEXT_TAGS:
        for child in node.children:
            if isinstance(child, Text):
                parts.append(child.data)
    else:
        for child in node.children:
            _serialize_into(child, parts)
    parts.append(f"</{node.tag}>")


def _escape_attr(value: str) -> str:
    return value.replace("&", "&amp;").replace('"', "&quot;")
