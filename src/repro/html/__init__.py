"""A small HTML engine: tokenize, parse, rewrite, serialize, extract links.

The paper's server-side instrumentation rewrites every HTML page it serves
(injecting scripts, a CSS link and a hidden link), and every agent model
parses served pages to decide what to fetch next.  This package implements
just enough of HTML for those two jobs — a forgiving tokenizer, an element
tree, and reference extraction that distinguishes visible links, embedded
objects and hidden (transparent-image) links.
"""

from repro.html.document import Element, Text, walk
from repro.html.links import (
    PageReferences,
    extract_references,
    extract_references_from_tree,
)
from repro.html.parser import parse_html
from repro.html.serializer import serialize
from repro.html.tokenizer import (
    CommentToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    Token,
    tokenize,
)

__all__ = [
    "CommentToken",
    "Element",
    "EndTagToken",
    "PageReferences",
    "StartTagToken",
    "Text",
    "TextToken",
    "Token",
    "extract_references",
    "extract_references_from_tree",
    "parse_html",
    "serialize",
    "tokenize",
    "walk",
]
