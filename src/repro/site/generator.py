"""Random web-site generation.

Builds a :class:`Website`: a connected page graph with shared and per-page
embedded objects, CGI endpoints, a favicon and robots.txt.  The shape
roughly follows mid-2000s sites: a home page with high out-degree, section
pages, shared site-wide CSS/JS plus per-page images; CGI search endpoints
that answer with redirects or result pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.site.page import PageSpec
from repro.site.resources import Resource, ResourceKind, synthetic_body
from repro.util.rng import RngStream


@dataclass(frozen=True)
class SiteConfig:
    """Knobs for site generation.

    Defaults produce a ~60-page site whose per-page object counts match
    the burst sizes the Figure 2 calibration assumes (a page load causes
    roughly 6–14 object fetches).
    """

    host: str = "www.example.com"
    n_pages: int = 60
    min_links: int = 3
    max_links: int = 8
    shared_stylesheets: int = 2
    shared_scripts: int = 2
    min_images: int = 3
    max_images: int = 14
    n_cgi_endpoints: int = 4
    cgi_link_probability: float = 0.35
    image_bytes: int = 26000
    stylesheet_bytes: int = 6000
    script_bytes: int = 4200
    page_paragraphs: int = 8

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise ValueError("a site needs at least one page")
        if self.min_links > self.max_links:
            raise ValueError("min_links must be <= max_links")
        if self.min_images > self.max_images:
            raise ValueError("min_images must be <= max_images")


@dataclass
class Website:
    """A generated site: pages, static resources and metadata."""

    host: str
    pages: dict[str, PageSpec]
    resources: dict[str, Resource]
    cgi_paths: list[str]
    home_path: str = "/index.html"

    @property
    def page_paths(self) -> list[str]:
        """All page paths in insertion (generation) order."""
        return list(self.pages.keys())

    def page(self, path: str) -> PageSpec | None:
        """Look up a page by path."""
        return self.pages.get(path)

    def resource(self, path: str) -> Resource | None:
        """Look up a static resource by path."""
        return self.resources.get(path)


class SiteGenerator:
    """Generates deterministic random :class:`Website` instances."""

    def __init__(self, config: SiteConfig | None = None) -> None:
        self._config = config or SiteConfig()

    @property
    def config(self) -> SiteConfig:
        """The generation configuration."""
        return self._config

    def generate(self, rng: RngStream) -> Website:
        """Generate a site using randomness from ``rng`` only."""
        cfg = self._config
        paths = ["/index.html"] + [
            f"/section{i // 10}/page{i:03d}.html" for i in range(1, cfg.n_pages)
        ]

        shared_css = [f"/static/site{i}.css" for i in range(cfg.shared_stylesheets)]
        shared_js = [f"/static/site{i}.js" for i in range(cfg.shared_scripts)]
        cgi_paths = [f"/cgi-bin/search{i}.cgi" for i in range(cfg.n_cgi_endpoints)]

        resources: dict[str, Resource] = {}
        for path in shared_css:
            resources[path] = Resource(
                path, ResourceKind.STYLESHEET,
                synthetic_body(ResourceKind.STYLESHEET, cfg.stylesheet_bytes),
            )
        for path in shared_js:
            resources[path] = Resource(
                path, ResourceKind.SCRIPT,
                synthetic_body(ResourceKind.SCRIPT, cfg.script_bytes),
            )
        resources["/favicon.ico"] = Resource(
            "/favicon.ico", ResourceKind.FAVICON,
            synthetic_body(ResourceKind.FAVICON, 1150),
        )
        robots_body = (
            "User-agent: *\n"
            "Disallow: /cgi-bin/\n"
            "Disallow: /private/\n"
        ).encode("ascii")
        resources["/robots.txt"] = Resource(
            "/robots.txt", ResourceKind.ROBOTS_TXT, robots_body
        )

        pages: dict[str, PageSpec] = {}
        for index, path in enumerate(paths):
            pages[path] = self._generate_page(
                rng.split(f"page-{index}"), path, index, paths, shared_css,
                shared_js, cgi_paths, resources,
            )

        self._connect_components(pages, paths)
        return Website(
            host=cfg.host,
            pages=pages,
            resources=resources,
            cgi_paths=cgi_paths,
        )

    def _generate_page(
        self,
        rng: RngStream,
        path: str,
        index: int,
        paths: list[str],
        shared_css: list[str],
        shared_js: list[str],
        cgi_paths: list[str],
        resources: dict[str, Resource],
    ) -> PageSpec:
        cfg = self._config
        # The home page fans out more than interior pages.
        max_links = cfg.max_links * 2 if index == 0 else cfg.max_links
        n_links = rng.randint(cfg.min_links, max_links)
        candidates = [p for p in paths if p != path]
        links = rng.sample(candidates, min(n_links, len(candidates)))

        n_images = rng.randint(cfg.min_images, cfg.max_images)
        images = []
        for img_index in range(n_images):
            img_path = f"/img/p{index:03d}_{img_index}.jpg"
            images.append(img_path)
            if img_path not in resources:
                size = int(cfg.image_bytes * rng.uniform(0.4, 1.8))
                resources[img_path] = Resource(
                    img_path, ResourceKind.IMAGE,
                    synthetic_body(ResourceKind.IMAGE, size),
                )

        cgi_links: list[str] = []
        if cgi_paths and rng.bernoulli(cfg.cgi_link_probability):
            endpoint = rng.choice(cgi_paths)
            cgi_links.append(f"{endpoint}?q=term{rng.randint(1, 999)}")

        title = "Home" if index == 0 else f"Page {index:03d}"
        return PageSpec(
            path=path,
            title=title,
            links=links,
            stylesheets=list(shared_css),
            scripts=list(shared_js),
            images=images,
            cgi_links=cgi_links,
            paragraphs=cfg.page_paragraphs,
        )

    @staticmethod
    def _connect_components(pages: dict[str, PageSpec], paths: list[str]) -> None:
        """Guarantee every page is reachable from the home page.

        Human sessions walk the link graph from the home page; unreachable
        islands would silently shrink the browsable site.  A single pass
        adds one link from the reachable region to each unreached page.
        """
        home = paths[0]
        reachable = {home}
        frontier = [home]
        while frontier:
            current = frontier.pop()
            for target in pages[current].links:
                if target in pages and target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        for path in paths:
            if path not in reachable:
                pages[home].links.append(path)
                reachable.add(path)
                # Newly linked pages may open up their own subtrees.
                frontier = [path]
                while frontier:
                    current = frontier.pop()
                    for target in pages[current].links:
                        if target in pages and target not in reachable:
                            reachable.add(target)
                            frontier.append(target)
