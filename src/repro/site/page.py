"""Page specifications and HTML rendering.

A :class:`PageSpec` records a page's outbound structure — which pages it
links to and which objects it embeds — and renders to plain 2006-flavour
HTML.  The instrumenter later rewrites this HTML; nothing in the rendered
page knows about detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PageSpec:
    """Structure of one HTML page on the origin site."""

    path: str
    title: str
    links: list[str] = field(default_factory=list)
    stylesheets: list[str] = field(default_factory=list)
    scripts: list[str] = field(default_factory=list)
    images: list[str] = field(default_factory=list)
    cgi_links: list[str] = field(default_factory=list)
    paragraphs: int = 3

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError(f"page path must start with '/': {self.path!r}")
        if self.paragraphs < 0:
            raise ValueError("paragraphs must be non-negative")

    @property
    def embedded_objects(self) -> list[str]:
        """All objects a rendering browser would fetch for this page."""
        return [*self.stylesheets, *self.scripts, *self.images]

    @property
    def all_links(self) -> list[str]:
        """Page links plus CGI links (everything a crawler could follow)."""
        return [*self.links, *self.cgi_links]

    def render(self) -> str:
        """Render the page to HTML."""
        head_parts = [f"<title>{self.title}</title>"]
        for href in self.stylesheets:
            head_parts.append(
                f'<link rel="stylesheet" type="text/css" href="{href}">'
            )
        for src in self.scripts:
            head_parts.append(f'<script src="{src}"></script>')

        body_parts: list[str] = [f"<h1>{self.title}</h1>"]
        filler = (
            "Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do "
            "eiusmod tempor incididunt ut labore et dolore magna aliqua."
        )
        for i in range(self.paragraphs):
            body_parts.append(f"<p>{filler} (paragraph {i + 1})</p>")
        for src in self.images:
            body_parts.append(f'<img src="{src}" alt="figure">')
        if self.links or self.cgi_links:
            items = [
                f'<li><a href="{href}">Visit {href}</a></li>'
                for href in self.links
            ]
            items.extend(
                f'<li><a href="{href}">Search {href}</a></li>'
                for href in self.cgi_links
            )
            body_parts.append("<ul>" + "".join(items) + "</ul>")

        return (
            "<html><head>"
            + "".join(head_parts)
            + "</head><body>"
            + "".join(body_parts)
            + "</body></html>"
        )
