"""The robot exclusion protocol (robots.txt).

The paper's related-work section notes the protocol is "entirely advisory,
and malicious robots have no incentive to follow it" — which is exactly how
the agent models treat it: the polite crawler consults it, every malicious
robot ignores it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RobotsTxt:
    """Parsed robots.txt: per-user-agent disallow prefixes."""

    rules: dict[str, list[str]] = field(default_factory=dict)

    def disallowed_prefixes(self, user_agent: str) -> list[str]:
        """Disallow prefixes applying to ``user_agent``.

        Matching follows the original 1994 convention: the most specific
        user-agent token wins; ``*`` is the fallback.
        """
        lowered = user_agent.lower()
        best: str | None = None
        for token in self.rules:
            if token == "*":
                continue
            if token in lowered and (best is None or len(token) > len(best)):
                best = token
        if best is not None:
            return self.rules[best]
        return self.rules.get("*", [])

    def allows(self, user_agent: str, path: str) -> bool:
        """True when ``user_agent`` may fetch ``path``."""
        for prefix in self.disallowed_prefixes(user_agent):
            if prefix and path.startswith(prefix):
                return False
        return True


def parse_robots_txt(text: str) -> RobotsTxt:
    """Parse robots.txt text; unknown directives are ignored."""
    rules: dict[str, list[str]] = {}
    current_agents: list[str] = []
    saw_rule_for_current = False

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        directive, _, value = line.partition(":")
        directive = directive.strip().lower()
        value = value.strip()
        if directive == "user-agent":
            if saw_rule_for_current:
                current_agents = []
                saw_rule_for_current = False
            token = value.lower()
            current_agents.append(token)
            rules.setdefault(token, [])
        elif directive == "disallow":
            saw_rule_for_current = True
            if not current_agents:
                continue
            if value:
                for agent in current_agents:
                    rules.setdefault(agent, []).append(value)
    return RobotsTxt(rules=rules)
