"""Synthetic origin web sites.

The paper's detectors run at a proxy in front of arbitrary origin content;
this package generates that content: a random page graph with realistic
embedded objects (CSS, JavaScript, images), CGI endpoints, a favicon and a
robots.txt, plus an :class:`~repro.site.origin.OriginServer` that serves it
with realistic status codes (404s, redirects).
"""

from repro.site.generator import SiteConfig, SiteGenerator, Website
from repro.site.origin import OriginServer
from repro.site.page import PageSpec
from repro.site.resources import Resource, ResourceKind
from repro.site.robots_txt import RobotsTxt, parse_robots_txt

__all__ = [
    "OriginServer",
    "PageSpec",
    "Resource",
    "ResourceKind",
    "RobotsTxt",
    "SiteConfig",
    "SiteGenerator",
    "Website",
    "parse_robots_txt",
]
