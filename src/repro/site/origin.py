"""Origin HTTP server for a generated :class:`~repro.site.generator.Website`.

Serves pages (rendered from their specs), static resources, CGI endpoints
and errors.  Response behaviour is deterministic per request (hash-based),
so replaying a workload reproduces identical status streams:

* CGI queries answer with a 302 redirect to a results page about a third
  of the time, otherwise 200 — this is the main source of the 3xx
  responses that Table 2's ``RESPCODE_3XX%`` attribute keys on for humans.
* Unknown paths (vulnerability probes, stale deep links) answer 404.
* HEAD requests return status and headers with an empty body.
"""

from __future__ import annotations

import hashlib

from repro.http.headers import Headers
from repro.http.message import Method, Request, Response, error_response
from repro.site.generator import Website
from repro.site.page import PageSpec
from repro.site.resources import Resource, ResourceKind, synthetic_body

_REDIRECT_PERCENT = 35
_RESULTS_PREFIX = "/cgi-bin/results/"


class OriginServer:
    """Serves one website; stateless between requests."""

    def __init__(self, website: Website) -> None:
        self._site = website

    @property
    def website(self) -> Website:
        """The site being served."""
        return self._site

    def handle(self, request: Request) -> Response:
        """Produce the origin's response to ``request``."""
        if request.url.host != self._site.host:
            return error_response(502, f"unknown origin host {request.url.host}")
        if request.method is Method.POST:
            return self._handle_cgi(request)

        path = request.url.path
        response = self._lookup(request, path)
        if request.method is Method.HEAD:
            return Response(
                status=response.status, headers=response.headers, body=b""
            )
        return response

    # -- internals --------------------------------------------------------

    def _lookup(self, request: Request, path: str) -> Response:
        page = self._site.page(path)
        if page is not None:
            return _page_response(page)

        resource = self._site.resource(path)
        if resource is not None:
            return _resource_response(resource)

        if path in self._site.cgi_paths or path.startswith("/cgi-bin/"):
            if path.startswith(_RESULTS_PREFIX):
                return _page_response(self._results_page(path))
            if path in self._site.cgi_paths:
                return self._handle_cgi(request)
            return error_response(404, f"no such CGI: {path}")

        return error_response(404, f"no such path: {path}")

    def _handle_cgi(self, request: Request) -> Response:
        query = request.url.query
        token = _stable_hash(f"{request.url.path}?{query}")
        # Only interactive search queries (the "q=term..." links pages
        # carry) redirect to result pages; machine-generated parameters
        # (ad clicks, probes) answer directly — matching the paper's
        # observation that robot requests rarely produce redirections.
        interactive = query.startswith("q=term")
        if interactive and token % 100 < _REDIRECT_PERCENT:
            target = f"{_RESULTS_PREFIX}r{token % 100000:05d}.html"
            headers = Headers(
                [
                    ("Content-Type", "text/html"),
                    ("Location", f"http://{self._site.host}{target}"),
                ]
            )
            return Response(status=302, headers=headers, body=b"")
        return _page_response(self._results_page(f"r{token % 100000:05d}"))

    def _results_page(self, token: str) -> PageSpec:
        """A synthetic search-results page linking back into the site."""
        seed = _stable_hash(token)
        paths = self._site.page_paths
        links = [paths[(seed + i * 7) % len(paths)] for i in range(5)]
        # De-duplicate while keeping order.
        links = list(dict.fromkeys(links))
        return PageSpec(
            path=f"{_RESULTS_PREFIX}{token.rsplit('/', 1)[-1]}",
            title="Search results",
            links=links,
            stylesheets=[
                r.path
                for r in self._site.resources.values()
                if r.kind is ResourceKind.STYLESHEET
            ][:1],
            images=[],
            paragraphs=1,
        )


def _page_response(page: PageSpec) -> Response:
    body = page.render().encode("utf-8")
    return Response(
        status=200,
        headers=Headers([("Content-Type", "text/html")]),
        body=body,
    )


def _resource_response(resource: Resource) -> Response:
    body = resource.body or synthetic_body(resource.kind, 256)
    return Response(
        status=200,
        headers=Headers([("Content-Type", resource.content_type)]),
        body=body,
    )


def _stable_hash(text: str) -> int:
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")
