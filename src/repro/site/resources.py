"""Static resources an origin site is made of."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ResourceKind(Enum):
    """Kinds of origin resources."""

    PAGE = "page"
    STYLESHEET = "stylesheet"
    SCRIPT = "script"
    IMAGE = "image"
    AUDIO = "audio"
    FAVICON = "favicon"
    CGI = "cgi"
    ROBOTS_TXT = "robots_txt"


_CONTENT_TYPES: dict[ResourceKind, str] = {
    ResourceKind.PAGE: "text/html",
    ResourceKind.STYLESHEET: "text/css",
    ResourceKind.SCRIPT: "application/javascript",
    ResourceKind.IMAGE: "image/jpeg",
    ResourceKind.AUDIO: "audio/wav",
    ResourceKind.FAVICON: "image/x-icon",
    ResourceKind.CGI: "text/html",
    ResourceKind.ROBOTS_TXT: "text/plain",
}


@dataclass(frozen=True)
class Resource:
    """One servable origin object.

    ``body`` is the literal payload for non-page resources; pages are
    rendered on demand by the origin from their :class:`PageSpec` so that
    link structure and body stay consistent.
    """

    path: str
    kind: ResourceKind
    body: bytes = b""

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError(f"resource path must start with '/': {self.path!r}")

    @property
    def content_type(self) -> str:
        """The Content-Type the origin serves this resource with."""
        return _CONTENT_TYPES[self.kind]

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.body)


def synthetic_body(kind: ResourceKind, size: int) -> bytes:
    """Deterministic filler payload of roughly ``size`` bytes for a kind."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if kind is ResourceKind.STYLESHEET:
        unit = b"body { margin: 0; } .c { color: #336699; }\n"
    elif kind is ResourceKind.SCRIPT:
        unit = b"function noop() { return 0; }\n"
    elif kind is ResourceKind.IMAGE or kind is ResourceKind.FAVICON:
        unit = b"\xff\xd8\xff\xe0JFIF\x00" * 4
    elif kind is ResourceKind.AUDIO:
        unit = b"RIFF\x00\x00WAVE" * 4
    else:
        unit = b"0123456789abcdef"
    if size == 0:
        return b""
    repeats = size // len(unit) + 1
    return (unit * repeats)[:size]
