"""Routing facades over IP-partitioned copies of the node state stores.

Each facade owns N independent instances of the underlying store and
routes every keyed operation to the partition
:func:`repro.state.partition.partition_index` assigns the client IP.
Unkeyed operations (sweeps, stats, lengths) fan out and merge.

Two properties the rest of the system leans on:

* **Containment** — the router and the sharded detection service use
  the *same* hash, so a lane that carries partition ``i`` holds every
  piece of state the requests routed to it can touch.  That is what
  lets process lanes run one-per-shard instead of one-per-node.
* **Lane-count invariance** — partition-local state evolves as a pure
  function of that partition's own event subsequence, which is the
  same whether one lane consumes all partitions in admission order or
  P lanes consume one each.  Results cannot depend on lane layout.

Everything here is plain-data and pickles cleanly (the process
executor ships partitions to child interpreters inside lane state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.state.partition import PartitionMap

if TYPE_CHECKING:  # leaf package: the store types are imported lazily
    from repro.http.message import Request, Response
    from repro.instrument.keys import (
        BeaconHit,
        InstrumentationRegistry,
        RegisteredProbe,
    )
    from repro.overload.ladder import ResponseLadder
    from repro.proxy.cache import CacheStats, ProxyCache
    from repro.proxy.ratelimit import RateLimitConfig, TokenBucketLimiter


class PartitionedRegistry:
    """N per-IP probe tables behind the :class:`InstrumentationRegistry` API.

    Listeners attach to every partition so registrations are journaled
    no matter which partition (or which lane) performs them.
    """

    def __init__(self, partitions: list[InstrumentationRegistry]) -> None:
        if not partitions:
            raise ValueError("need at least one registry partition")
        self._partitions = partitions
        self._map = PartitionMap(len(partitions))

    @classmethod
    def build(
        cls,
        n_partitions: int,
        ttl: float = 3600.0,
        per_ip_cap: int = 512,
    ) -> "PartitionedRegistry":
        """Create ``n_partitions`` empty registries with shared bounds."""
        from repro.instrument.keys import InstrumentationRegistry

        return cls(
            [
                InstrumentationRegistry(ttl=ttl, per_ip_cap=per_ip_cap)
                for _ in range(n_partitions)
            ]
        )

    @classmethod
    def migrate(
        cls,
        source: "InstrumentationRegistry | PartitionedRegistry",
        n_partitions: int,
    ) -> "PartitionedRegistry":
        """Re-partition an existing registry's probes and listeners.

        Probes move via :meth:`InstrumentationRegistry.load` (listeners
        do not re-fire — the entries were journaled when first
        registered), preserving per-IP FIFO order so eviction behaves
        identically in the new layout.
        """
        rebuilt = cls.build(
            n_partitions, ttl=source.ttl, per_ip_cap=source.per_ip_cap
        )
        for listener in source.listeners:
            rebuilt.add_listener(listener)
        for probe in source.iter_probes():
            rebuilt.load(probe)
        return rebuilt

    # -- partition access --------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return self._map.n_partitions

    @property
    def partitions(self) -> list[InstrumentationRegistry]:
        """The underlying per-partition registries, in partition order."""
        return self._partitions

    def partition(self, index: int) -> InstrumentationRegistry:
        return self._partitions[index]

    def index_for(self, client_ip: str) -> int:
        return self._map.index_for(client_ip)

    # -- InstrumentationRegistry API ---------------------------------------

    @property
    def ttl(self) -> float:
        return self._partitions[0].ttl

    @property
    def per_ip_cap(self) -> int:
        return self._partitions[0].per_ip_cap

    @property
    def listeners(self) -> tuple[Callable[[RegisteredProbe], None], ...]:
        return self._partitions[0].listeners

    @property
    def has_listeners(self) -> bool:
        return any(p.has_listeners for p in self._partitions)

    def add_listener(
        self, listener: Callable[[RegisteredProbe], None]
    ) -> None:
        for p in self._partitions:
            p.add_listener(listener)

    def remove_listener(
        self, listener: Callable[[RegisteredProbe], None]
    ) -> None:
        for p in self._partitions:
            p.remove_listener(listener)

    def register(self, probe: RegisteredProbe) -> None:
        self._partitions[self.index_for(probe.client_ip)].register(probe)

    def load(self, probe: RegisteredProbe) -> None:
        self._partitions[self.index_for(probe.client_ip)].load(probe)

    def match(
        self, request: Request, now: float | None = None
    ) -> BeaconHit | None:
        return self._partitions[self.index_for(request.client_ip)].match(
            request, now
        )

    def outstanding(self, client_ip: str) -> list[RegisteredProbe]:
        return self._partitions[self.index_for(client_ip)].outstanding(
            client_ip
        )

    def iter_probes(self) -> Iterator[RegisteredProbe]:
        for p in self._partitions:
            yield from p.iter_probes()

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def expire_before(self, now: float) -> int:
        return sum(p.expire_before(now) for p in self._partitions)


class PartitionedLimiter:
    """N token-bucket limiters behind the :class:`TokenBucketLimiter` API.

    Watermarks (the timestamp new buckets are created at) become
    partition-local, which is exactly what keeps limiter decisions
    invariant to lane layout: a partition's watermark depends only on
    that partition's own request subsequence.
    """

    def __init__(
        self, config: RateLimitConfig | None, n_partitions: int
    ) -> None:
        from repro.proxy.ratelimit import TokenBucketLimiter

        self._map = PartitionMap(n_partitions)
        self._partitions = [
            TokenBucketLimiter(config) for _ in range(n_partitions)
        ]

    @property
    def n_partitions(self) -> int:
        return self._map.n_partitions

    @property
    def partitions(self) -> list[TokenBucketLimiter]:
        return self._partitions

    def partition(self, index: int) -> TokenBucketLimiter:
        return self._partitions[index]

    def index_for(self, client_ip: str) -> int:
        return self._map.index_for(client_ip)

    # -- TokenBucketLimiter API --------------------------------------------

    @property
    def config(self) -> RateLimitConfig:
        return self._partitions[0].config

    @property
    def allowed(self) -> int:
        return sum(p.allowed for p in self._partitions)

    @property
    def denied(self) -> int:
        return sum(p.denied for p in self._partitions)

    @property
    def evicted(self) -> int:
        return sum(p.evicted for p in self._partitions)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def allow(self, client_ip: str, now: float) -> bool:
        return self._partitions[self.index_for(client_ip)].allow(
            client_ip, now
        )

    def evict_replenished(self, now: float) -> int:
        return sum(p.evict_replenished(now) for p in self._partitions)


class PartitionedCache:
    """N LRU caches behind the :class:`ProxyCache` API, routed by client IP.

    The capacity budget divides across partitions (ceiling, min 1 per
    partition).  Cached objects are still keyed by URL *within* a
    partition, so the same static object may occupy several partitions
    once — the price of giving each lane a self-contained cache, and
    why cache hit/origin counters are partition-layout-scoped while
    detection results are not (responses served from cache are
    byte-identical to forwarded ones).
    """

    def __init__(
        self,
        n_partitions: int,
        capacity: int = 4096,
        ttl: float = 3600.0,
    ) -> None:
        from repro.proxy.cache import ProxyCache

        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._map = PartitionMap(n_partitions)
        per_partition = max(1, -(-capacity // n_partitions))
        self._partitions = [
            ProxyCache(capacity=per_partition, ttl=ttl)
            for _ in range(n_partitions)
        ]

    @property
    def n_partitions(self) -> int:
        return self._map.n_partitions

    @property
    def partitions(self) -> list[ProxyCache]:
        return self._partitions

    def partition(self, index: int) -> ProxyCache:
        return self._partitions[index]

    def index_for(self, client_ip: str) -> int:
        return self._map.index_for(client_ip)

    # -- ProxyCache API ----------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Merged counters across every partition (a fresh object)."""
        from repro.proxy.cache import CacheStats

        merged = CacheStats()
        for p in self._partitions:
            merged.hits += p.stats.hits
            merged.misses += p.stats.misses
            merged.insertions += p.stats.insertions
            merged.evictions += p.stats.evictions
            merged.expired += p.stats.expired
        return merged

    def lookup(self, request: Request, now: float) -> Response | None:
        return self._partitions[self.index_for(request.client_ip)].lookup(
            request, now
        )

    def store(self, request: Request, response: Response, now: float) -> bool:
        return self._partitions[self.index_for(request.client_ip)].store(
            request, response, now
        )

    def sweep(self, now: float) -> int:
        return sum(p.sweep(now) for p in self._partitions)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)


class PartitionedLadder:
    """N response ladders routed by client IP, one per state shard.

    Unlike the other facades this one wraps *existing* per-shard
    ladders (built by ``NodeShard.enable_ladder`` so each sits next to
    the shard's metrics registry); the facade only adds the routing
    and the merged export.  IPs are sticky to a partition, so the
    per-partition states are disjoint and the merge is a plain union.
    """

    def __init__(self, ladders: list["ResponseLadder"]) -> None:
        if not ladders:
            raise ValueError("need at least one ladder partition")
        self._map = PartitionMap(len(ladders))
        self._partitions = list(ladders)

    @property
    def n_partitions(self) -> int:
        return self._map.n_partitions

    @property
    def partitions(self) -> list["ResponseLadder"]:
        return self._partitions

    def partition(self, index: int) -> "ResponseLadder":
        return self._partitions[index]

    def index_for(self, client_ip: str) -> int:
        return self._map.index_for(client_ip)

    # -- ResponseLadder API -------------------------------------------------

    def ladder_for(self, client_ip: str) -> "ResponseLadder":
        return self._partitions[self.index_for(client_ip)]

    def gate(self, client_ip: str, now: float):
        return self.ladder_for(client_ip).gate(client_ip, now)

    def observe_verdict(
        self, client_ip: str, margin: float, timestamp: float
    ) -> None:
        self.ladder_for(client_ip).observe_verdict(
            client_ip, margin, timestamp
        )

    def note_captcha_result(
        self, client_ip: str, passed: bool, timestamp: float
    ) -> None:
        self.ladder_for(client_ip).note_captcha_result(
            client_ip, passed, timestamp
        )

    def export_state(self) -> dict:
        """Union of the per-partition exports (layout-independent)."""
        from repro.overload.ladder import merge_ladder_states

        return merge_ladder_states(
            p.export_state() for p in self._partitions
        )
