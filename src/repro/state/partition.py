"""The stable client-IP partition hash.

Every partitioned store — and the ingress lane router — must agree on
which partition owns a client, or a process lane would touch state it
does not carry.  They all call :func:`partition_index`.

The hash is BLAKE2b over the raw key with an 8-byte digest, reduced
little-endian.  It is deliberately *not* the 4-byte digest
``ProxyNetwork.node_index_for`` uses: the two hashes are statistically
independent, so sharding within a node does not correlate with the
node assignment itself (a correlated pair would leave some
``(node, shard)`` lanes structurally empty).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def partition_index(key: str, n_partitions: int) -> int:
    """Stable partition assignment for a string key.

    Deterministic across processes and Python versions (no
    ``PYTHONHASHSEED`` dependence), uniform over partitions, and
    independent of the node-assignment hash.
    """
    if n_partitions <= 1:
        return 0
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % n_partitions


@dataclass(frozen=True)
class PartitionMap:
    """A fixed partition count plus the routing it implies."""

    n_partitions: int

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")

    def index_for(self, key: str) -> int:
        """Which partition owns ``key``."""
        return partition_index(key, self.n_partitions)

    def label(self, index: int) -> str:
        """Zero-padded label for metrics series (``00``, ``01`` ...)."""
        return f"{index:02d}"

    def group(self, keys):
        """Partition an iterable of keys into ``n_partitions`` lists."""
        groups: list[list[str]] = [[] for _ in range(self.n_partitions)]
        for key in keys:
            groups[self.index_for(key)].append(key)
        return groups
