"""Key-partitioned state stores.

The paper's detector kept all per-client state (probe table, rate
buckets, cache) inside one proxy node.  This package splits each of
those stores into N independent partitions keyed by a stable BLAKE2b
hash of the client IP, so a *detection shard* — not a whole node — is
the smallest self-contained state unit and process lanes can run one
per shard.

:mod:`repro.state.partition` holds the hash itself;
:mod:`repro.state.stores` wraps the existing registry / limiter /
cache types in routing facades that preserve their public APIs.
"""

from repro.state.partition import PartitionMap, partition_index
from repro.state.stores import (
    PartitionedCache,
    PartitionedLimiter,
    PartitionedRegistry,
)

__all__ = [
    "PartitionMap",
    "partition_index",
    "PartitionedCache",
    "PartitionedLimiter",
    "PartitionedRegistry",
]
