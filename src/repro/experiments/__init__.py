"""One module per paper table/figure, plus the overhead study.

Each experiment exposes ``run(...)`` returning a result object with a
``render()`` text report, and the registry maps experiment ids
("table1", "figure2", ...) to runners so benchmarks, examples and the
command line share one entry point.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
