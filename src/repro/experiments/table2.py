"""Table 2: the 12 AdaBoost attributes and their contributions.

The table itself is the attribute definition (reproduced in
:data:`repro.ml.features.ATTRIBUTE_NAMES`); the experiment reports the
measured per-attribute contribution of the trained ensemble, checking the
paper's claim that RESPCODE_3XX%, REFERRER% and UNSEEN_REFERRER% are the
most contributing attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments import figure4
from repro.ml.features import ATTRIBUTE_NAMES
from repro.ml.importance import attribute_contributions

PAPER_TOP_ATTRIBUTES = ("RESPCODE_3XX%", "REFERRER%", "UNSEEN_REFERRER%")

_EXPLANATIONS = {
    "HEAD%": "% of HEAD commands",
    "HTML%": "% of HTML requests",
    "IMAGE%": "% of Image(content type=image/*)",
    "CGI%": "% of CGI requests",
    "REFERRER%": "% of requests with referrer",
    "UNSEEN_REFERRER%": "% of requests with unvisited referrer",
    "EMBEDDED_OBJ%": "% of embedded object requests",
    "LINK_FOLLOWING%": "% of link requests",
    "RESPCODE_2XX%": "% of response code 2XX",
    "RESPCODE_3XX%": "% of response code 3XX",
    "RESPCODE_4XX%": "% of response code 4XX",
    "FAVICON%": "% of favicon.ico requests",
}


@dataclass
class Table2Result:
    """Attribute catalogue plus measured contributions."""

    contributions: list[tuple[str, float]]
    checkpoint: int

    def top(self, k: int = 3) -> list[str]:
        """The k most contributing attribute names."""
        return [name for name, _ in self.contributions[:k]]

    def render(self) -> str:
        """Text report in the paper's Table 2 layout plus contributions."""
        weight = dict(self.contributions)
        rows = [
            [name, _EXPLANATIONS[name], f"{weight.get(name, 0.0):.3f}"]
            for name in ATTRIBUTE_NAMES
        ]
        table = format_table(
            ["Attribute", "Explanation", "Contribution"],
            rows,
            align_right={2},
        )
        lines = [
            "Table 2 — attributes used in AdaBoost "
            f"(contributions from the {self.checkpoint}-request classifier)",
            "",
            table,
            "",
            f"measured top-3: {', '.join(self.top(3))}",
            f"paper top-3:    {', '.join(PAPER_TOP_ATTRIBUTES)}",
        ]
        return "\n".join(lines)


def run(
    n_sessions: int = 2000, seed: int = 4242, checkpoint: int = 160
) -> Table2Result:
    """Train (or reuse) the Figure 4 models and rank the attributes."""
    figure = figure4.run(n_sessions=n_sessions, seed=seed)
    model = figure.models.get(checkpoint)
    if model is None:
        raise ValueError(f"no model trained at checkpoint {checkpoint}")
    return Table2Result(
        contributions=attribute_contributions(model),
        checkpoint=checkpoint,
    )
