"""Figure 4: AdaBoost accuracy vs. the number of requests observed.

The paper: 42,975 human + 124,271 robot CAPTCHA-labelled sessions,
AdaBoost with 200 rounds over the 12 Table 2 attributes, one classifier
per checkpoint N = 20, 40, ..., 160; test accuracy 91-95%, rising with N.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ascii_plot import line_chart
from repro.instrument.rewriter import InstrumentConfig
from repro.ml.adaboost import AdaBoostClassifier, AdaBoostModel
from repro.ml.dataset import DEFAULT_CHECKPOINTS, Dataset, build_matrix
from repro.ml.evaluate import EvaluationResult, accuracy, train_test_split
from repro.proxy.network import ProxyNetwork
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.util.timeutil import WEEK
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import ML_STUDY

PAPER_FIGURE4 = {
    "test_accuracy_range": (0.91, 0.95),
    "rounds": 200,
    "checkpoints": DEFAULT_CHECKPOINTS,
}

_DATASET_CACHE: dict[tuple[int, int], Dataset] = {}


def build_ml_dataset(n_sessions: int = 2000, seed: int = 4242) -> Dataset:
    """Generate the CAPTCHA-labelled session dataset (cached per size/seed)."""
    key = (n_sessions, seed)
    if key in _DATASET_CACHE:
        return _DATASET_CACHE[key]

    rng = RngStream(seed, "ml-study")
    website = SiteGenerator(SiteConfig()).generate(rng.split("site"))
    origin = OriginServer(website)
    network = ProxyNetwork(
        origins={website.host: origin},
        rng=rng.split("proxies"),
        n_nodes=2,
        instrument_config=InstrumentConfig(),
    )
    entry_url = f"http://{website.host}{website.home_path}"
    engine = WorkloadEngine(
        network,
        ML_STUDY,
        entry_url,
        rng.split("workload"),
        WorkloadConfig(
            n_sessions=n_sessions,
            duration=2 * WEEK,
            collect_features=True,
            captcha_enabled=False,
        ),
    )
    result = engine.run()
    _DATASET_CACHE[key] = result.dataset
    return result.dataset


@dataclass
class Figure4Result:
    """Per-checkpoint train/test accuracy plus the trained models."""

    evaluations: list[EvaluationResult]
    models: dict[int, AdaBoostModel] = field(default_factory=dict)
    n_humans: int = 0
    n_robots: int = 0

    def test_accuracies(self) -> dict[int, float]:
        """Checkpoint -> test accuracy."""
        return {e.checkpoint: e.test_accuracy for e in self.evaluations}

    def render(self) -> str:
        """Text report with an ASCII rendition of the figure."""
        train_series = [
            (float(e.checkpoint), 100.0 * e.train_accuracy)
            for e in self.evaluations
        ]
        test_series = [
            (float(e.checkpoint), 100.0 * e.test_accuracy)
            for e in self.evaluations
        ]
        lines = [
            "Figure 4 — AdaBoost accuracy vs requests observed "
            f"({self.n_humans:,} human / {self.n_robots:,} robot sessions, "
            "200 rounds)",
            "",
            line_chart(
                {"Training set": train_series, "Test set": test_series},
                x_label="Number of Requests at Which the Classifier is Built",
                y_label="Accuracy(%)",
                height=14,
            ),
            "",
            "paper: test accuracy 91%-95%, improving with more requests",
        ]
        lines.extend(f"  {e}" for e in self.evaluations)
        return "\n".join(lines)


def run(
    n_sessions: int = 2000,
    seed: int = 4242,
    rounds: int = 200,
    checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
) -> Figure4Result:
    """Build the dataset, then train/evaluate one model per checkpoint."""
    dataset = build_ml_dataset(n_sessions, seed)
    split_rng = RngStream(seed, "split")
    train, test = train_test_split(dataset.examples, split_rng)

    result = Figure4Result(
        evaluations=[],
        n_humans=len(dataset.humans),
        n_robots=len(dataset.robots),
    )
    trainer = AdaBoostClassifier(n_rounds=rounds)
    for checkpoint in checkpoints:
        x_train, y_train = build_matrix(train, checkpoint)
        x_test, y_test = build_matrix(test, checkpoint)
        model = trainer.fit(x_train, y_train)
        result.models[checkpoint] = model
        result.evaluations.append(
            EvaluationResult(
                checkpoint=checkpoint,
                train_accuracy=accuracy(model.predict(x_train), y_train),
                test_accuracy=accuracy(model.predict(x_test), y_test),
                rounds=model.rounds,
            )
        )
    return result
