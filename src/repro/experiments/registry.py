"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments import figure2, figure3, figure4, overhead, table1, table2

EXPERIMENTS: dict[str, Callable[..., Any]] = {
    "table1": table1.run,
    "table2": table2.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "overhead": overhead.run,
}


def run_experiment(name: str, **kwargs: Any) -> Any:
    """Run an experiment by id; result objects all offer ``render()``."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
