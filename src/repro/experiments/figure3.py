"""Figure 3: CoDeeN abuse complaints through 2005.

The complaint process is driven by the *measured* robot-suppression
effectiveness of this reproduction's detector + policy stack (obtained
from a calibration workload), applied to the paper's deployment timeline:
expansion in February, browser test + aggressive rate limiting in late
August, mouse detection in January 2006.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ascii_plot import bar_chart
from repro.experiments.table1 import run_codeen_week_cached
from repro.workload.complaints import (
    ComplaintConfig,
    ComplaintTimeline,
    MONTHS,
    generate_timeline,
    measure_robot_suppression,
)


@dataclass
class Figure3Result:
    """The monthly complaint series plus the measured inputs."""

    timeline: ComplaintTimeline
    measured_suppression: float

    def render(self) -> str:
        """Text report with an ASCII rendition of the figure."""
        peak = self.timeline.peak_month()
        post_deploy = self.timeline.robot_complaints_after(8)
        lines = [
            "Figure 3 — CoDeeN abuse complaints, 2005 "
            f"(measured robot suppression: {self.measured_suppression:.1%})",
            "",
            bar_chart(
                list(MONTHS),
                {
                    "Robot": self.timeline.robot_series,
                    "Human": self.timeline.human_series,
                },
            ),
            "",
            f"peak month: {peak.month} with {peak.robot} robot complaints "
            "(paper: July, ~9)",
            f"robot complaints Sep-Dec: {post_deploy} "
            "(paper: 2 over four months)",
        ]
        return "\n".join(lines)


def run(
    n_sessions: int = 1500,
    seed: int = 2006,
    config: ComplaintConfig | None = None,
) -> Figure3Result:
    """Measure suppression on a calibration workload, then generate."""
    calibration = run_codeen_week_cached(n_sessions, seed)
    suppression = measure_robot_suppression(calibration.sessions)
    timeline = generate_timeline(config, measured_suppression=suppression)
    return Figure3Result(
        timeline=timeline, measured_suppression=suppression
    )
