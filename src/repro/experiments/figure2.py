"""Figure 2: CDF of the number of requests needed to detect humans.

Paper claims: 80% of mouse-event clients detected within 20 requests,
95% within 57; CSS downloads classified 95% within 19 requests and 99%
within 48; JavaScript-file downloads behave like CSS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ascii_plot import line_chart
from repro.analysis.cdf import DetectionCdfs, detection_cdfs
from repro.experiments.table1 import run_codeen_week_cached
from repro.workload.codeen import CodeenWeekResult

PAPER_FIGURE2 = {
    ("mouse", 20): 0.80,
    ("mouse", 57): 0.95,
    ("css", 19): 0.95,
    ("css", 48): 0.99,
}


@dataclass
class Figure2Result:
    """The three CDFs plus headline readings."""

    result: CodeenWeekResult
    cdfs: DetectionCdfs

    def readings(self) -> dict[tuple[str, int], float]:
        """Measured CDF values at the paper's checkpoints."""
        out: dict[tuple[str, int], float] = {}
        for (curve, x), _ in PAPER_FIGURE2.items():
            ecdf = self.cdfs.mouse if curve == "mouse" else self.cdfs.css
            out[(curve, x)] = (
                ecdf.fraction_at_or_below(x) if ecdf is not None else 0.0
            )
        return out

    def quantiles(self) -> dict[str, dict[float, float]]:
        """Requests needed to reach 80/95/99% per curve."""
        out: dict[str, dict[float, float]] = {}
        for name, ecdf in (
            ("css", self.cdfs.css),
            ("beacon_js", self.cdfs.beacon_js),
            ("mouse", self.cdfs.mouse),
        ):
            if ecdf is None:
                continue
            out[name] = {q: ecdf.quantile(q) for q in (0.80, 0.95, 0.99)}
        return out

    def render(self) -> str:
        """Text report with an ASCII rendition of the figure."""
        readings = self.readings()
        lines = [
            "Figure 2 — CDF of # requests needed to detect "
            f"({len(self.result.latencies):,} sessions with signals)",
            "",
            line_chart(
                {
                    name: points
                    for name, points in self.cdfs.series(100, 2).items()
                },
                x_label="Number of Requests Required to Detect",
                y_label="CDF",
            ),
            "",
            "paper vs measured:",
        ]
        for (curve, x), paper_value in PAPER_FIGURE2.items():
            lines.append(
                f"  {curve:<6} within {x:3d} requests: paper "
                f"{paper_value:.0%}   measured {readings[(curve, x)]:.1%}"
            )
        for name, quantile_map in self.quantiles().items():
            parts = ", ".join(
                f"{q:.0%} at {int(v)} reqs" for q, v in quantile_map.items()
            )
            lines.append(f"  {name}: {parts}")
        return "\n".join(lines)


def run(
    n_sessions: int = 3000,
    seed: int = 2006,
    flight_interval: float | None = None,
) -> Figure2Result:
    """Run the Figure 2 experiment (shares the Table 1 workload)."""
    result = run_codeen_week_cached(n_sessions, seed, flight_interval)
    return Figure2Result(result=result, cdfs=detection_cdfs(result.latencies))
