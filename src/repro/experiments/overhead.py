"""§3.2 overhead study: script generation latency and beacon bandwidth.

Paper: "A fake JavaScript code of size 1KB with simple obfuscation is
generated in 144 µs on a machine with a 2 GHz Pentium 4 processor ...
The bandwidth overhead of fake JavaScript and CSS files comprise only
0.3% of CoDeeN's total bandwidth."
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.table1 import run_codeen_week_cached
from repro.instrument.js_beacon import build_beacon_script
from repro.instrument.obfuscator import obfuscate_beacon
from repro.util.rng import RngStream


@dataclass
class OverheadResult:
    """Measured generation latency and bandwidth share."""

    mean_generation_seconds: float
    mean_script_bytes: float
    bandwidth_fraction: float
    samples: int

    def render(self) -> str:
        """Text report, paper vs measured."""
        micros = self.mean_generation_seconds * 1e6
        return "\n".join(
            [
                "§3.2 overhead — instrumentation cost",
                "",
                f"beacon script generation: {micros:.0f} µs per script "
                f"(~{self.mean_script_bytes:.0f} bytes, {self.samples} samples; "
                "paper: ~1KB in 144 µs on a 2 GHz P4)",
                f"instrumentation bandwidth share: "
                f"{self.bandwidth_fraction:.2%} of bytes served "
                "(paper: 0.3% of CoDeeN's total bandwidth)",
            ]
        )


def measure_generation(
    samples: int = 200, decoys: int = 4, seed: int = 99
) -> tuple[float, float]:
    """Mean (seconds, bytes) to build + obfuscate one beacon script."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    rng = RngStream(seed, "overhead")
    total_bytes = 0
    start = time.perf_counter()
    for i in range(samples):
        script = build_beacon_script(
            rng.split(f"s{i}"), "www.example.com", decoys=decoys
        )
        source, _ = obfuscate_beacon(
            script.source, script.handler_expression, rng.split(f"o{i}")
        )
        total_bytes += len(source.encode("utf-8"))
    elapsed = time.perf_counter() - start
    return elapsed / samples, total_bytes / samples


def run(n_sessions: int = 1500, seed: int = 2006) -> OverheadResult:
    """Measure both overhead quantities."""
    mean_seconds, mean_bytes = measure_generation()
    deployment = run_codeen_week_cached(n_sessions, seed)
    return OverheadResult(
        mean_generation_seconds=mean_seconds,
        mean_script_bytes=mean_bytes,
        bandwidth_fraction=deployment.stats.beacon_bandwidth_fraction,
        samples=200,
    )
