"""Table 1: the CoDeeN session census.

Paper values (929,922 sessions, 1/6/06-1/13/06):

    Downloaded CSS            268,952   28.9%
    Executed JavaScript       251,706   27.1%
    Mouse movement detected   207,368   22.3%
    Passed CAPTCHA test        84,924    9.1%
    Followed hidden links       9,323    1.0%
    Browser type mismatch       6,288    0.7%

plus S_H = 225,220 (24.2%), bound gap 1.9% and max FPR 2.4%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table1
from repro.workload.codeen import (
    CodeenWeekConfig,
    CodeenWeekExperiment,
    CodeenWeekResult,
)

PAPER_TABLE1 = {
    "css_downloads": 28.9,
    "js_executions": 27.1,
    "mouse_movements": 22.3,
    "captcha_passes": 9.1,
    "hidden_link_follows": 1.0,
    "ua_mismatches": 0.7,
    "upper_bound": 24.2,
    "lower_bound": 22.3,
    "max_false_positive_rate": 2.4,
}

_CACHE: dict[tuple[int, int, float | None], CodeenWeekResult] = {}


def run_codeen_week_cached(
    n_sessions: int = 3000,
    seed: int = 2006,
    flight_interval: float | None = None,
) -> CodeenWeekResult:
    """Run (or reuse) the CoDeeN-week workload.

    Table 1, Figure 2 and the overhead study all reduce the same
    deployment run, so it is executed once per (size, seed,
    flight-recorder interval).
    """
    key = (n_sessions, seed, flight_interval)
    if key not in _CACHE:
        experiment = CodeenWeekExperiment(
            CodeenWeekConfig(
                n_sessions=n_sessions,
                seed=seed,
                flight_interval=flight_interval,
            )
        )
        _CACHE[key] = experiment.run()
    return _CACHE[key]


@dataclass
class Table1Result:
    """Measured census next to the paper's."""

    result: CodeenWeekResult

    def measured_percentages(self) -> dict[str, float]:
        """The same keys as PAPER_TABLE1, measured, in percent."""
        s = self.result.summary
        return {
            "css_downloads": 100.0 * s.fraction("css_downloads"),
            "js_executions": 100.0 * s.fraction("js_executions"),
            "mouse_movements": 100.0 * s.fraction("mouse_movements"),
            "captcha_passes": 100.0 * s.fraction("captcha_passes"),
            "hidden_link_follows": 100.0 * s.fraction("hidden_link_follows"),
            "ua_mismatches": 100.0 * s.fraction("ua_mismatches"),
            "upper_bound": 100.0 * s.upper_bound,
            "lower_bound": 100.0 * s.lower_bound,
            "max_false_positive_rate": 100.0 * s.max_false_positive_rate,
        }

    def render(self) -> str:
        """Text report: measured table plus paper-vs-measured deltas."""
        measured = self.measured_percentages()
        lines = [
            "Table 1 — CoDeeN session census "
            f"(simulated, {self.result.summary.total_sessions:,} sessions, "
            f"scale {self.result.scale:.2%} of the paper's week)",
            "",
            render_table1(self.result.summary),
            "",
            "paper vs measured (percent of sessions):",
        ]
        for key, paper_value in PAPER_TABLE1.items():
            lines.append(
                f"  {key:<26} paper {paper_value:5.1f}   "
                f"measured {measured[key]:5.1f}"
            )
        check = self.result.captcha_check
        lines.extend(
            [
                "",
                "CAPTCHA passer cross-check (§3.1):",
                f"  passers executed JavaScript: paper 95.8%  "
                f"measured {check.js_fraction:.1%}",
                f"  passers fetched CSS:         paper 99.2%  "
                f"measured {check.css_fraction:.1%}",
                f"  JS-disabled among passers:   paper  3.4%  "
                f"measured {check.js_disabled_fraction:.1%}",
            ]
        )
        return "\n".join(lines)


def run(
    n_sessions: int = 3000,
    seed: int = 2006,
    flight_interval: float | None = None,
) -> Table1Result:
    """Run the Table 1 experiment."""
    return Table1Result(
        result=run_codeen_week_cached(n_sessions, seed, flight_interval)
    )
