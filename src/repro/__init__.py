"""repro — a reproduction of "Securing Web Service by Automatic Robot
Detection" (Park, Pai, Lee, Calo; USENIX ATC 2006).

The package implements the paper's two online human/robot classifiers —
JavaScript mouse-activity beacons and standard-browser testing — together
with every substrate they ran on: a CoDeeN-like proxy network, synthetic
origin sites, behavioural client models (browsers and eight robot
families), the CAPTCHA funnel, and the §4.2 AdaBoost study, plus the
experiment harness that regenerates every table and figure.

Quickstart::

    from repro import CodeenWeekExperiment, CodeenWeekConfig

    result = CodeenWeekExperiment(CodeenWeekConfig(n_sessions=500)).run()
    print(result.summary.lower_bound, result.summary.upper_bound)

See README.md for the architecture tour and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.detection import (
    DetectionService,
    Label,
    OnlineClassifier,
    SessionSets,
    SessionState,
    SessionTracker,
    Verdict,
)
from repro.instrument import (
    InstrumentConfig,
    InstrumentationRegistry,
    PageInstrumenter,
)
from repro.ml import (
    ATTRIBUTE_NAMES,
    AdaBoostClassifier,
    FeatureAccumulator,
)
from repro.proxy import ProxyNetwork, ProxyNode
from repro.site import OriginServer, SiteConfig, SiteGenerator
from repro.util import RngStream
from repro.workload import (
    CODEEN_WEEK,
    CodeenWeekExperiment,
    WorkloadConfig,
    WorkloadEngine,
)
from repro.workload.codeen import CodeenWeekConfig

__version__ = "1.0.0"

__all__ = [
    "ATTRIBUTE_NAMES",
    "AdaBoostClassifier",
    "CODEEN_WEEK",
    "CodeenWeekConfig",
    "CodeenWeekExperiment",
    "DetectionService",
    "FeatureAccumulator",
    "InstrumentConfig",
    "InstrumentationRegistry",
    "Label",
    "OnlineClassifier",
    "OriginServer",
    "PageInstrumenter",
    "ProxyNetwork",
    "ProxyNode",
    "RngStream",
    "SessionSets",
    "SessionState",
    "SessionTracker",
    "SiteConfig",
    "SiteGenerator",
    "Verdict",
    "WorkloadConfig",
    "WorkloadEngine",
    "__version__",
]
