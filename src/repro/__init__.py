"""repro — a reproduction of "Securing Web Service by Automatic Robot
Detection" (Park, Pai, Lee, Calo; USENIX ATC 2006).

The package implements the paper's two online human/robot classifiers —
JavaScript mouse-activity beacons and standard-browser testing — together
with every substrate they ran on: a CoDeeN-like proxy network, synthetic
origin sites, behavioural client models (browsers and eight robot
families), the CAPTCHA funnel, and the §4.2 AdaBoost study, plus the
experiment harness that regenerates every table and figure and a trace
subsystem (:mod:`repro.trace`) that exports any workload as a Combined
Log Format access log and replays logs — recorded or real — through the
detection pipeline in global timestamp order.  The ingress subsystem
(:mod:`repro.ingress`) puts an explicit admission stage in front of it
all: hash routing onto bounded per-lane queues with backpressure or
counted load shedding, micro-batched ensemble scoring, and serial /
thread / true-parallel process lane executors that never change
results — only wall-clock.

Quickstart::

    from repro import CodeenWeekExperiment, CodeenWeekConfig

    result = CodeenWeekExperiment(CodeenWeekConfig(n_sessions=500)).run()
    print(result.summary.lower_bound, result.summary.upper_bound)

See README.md (repository root) for the architecture tour and the
``repro record`` / ``repro replay`` command-line usage.
"""

from repro.detection import (
    DetectionService,
    Label,
    OnlineClassifier,
    SessionSets,
    SessionState,
    SessionTracker,
    ShardedDetectionService,
    Verdict,
)
from repro.ingress import (
    AsyncIngress,
    IngressConfig,
    IngressPipeline,
    MicroBatchConfig,
    ShedPolicy,
)
from repro.instrument import (
    InstrumentConfig,
    InstrumentationRegistry,
    PageInstrumenter,
)
from repro.ml import (
    ATTRIBUTE_NAMES,
    AdaBoostClassifier,
    BatchScorer,
    FeatureAccumulator,
)
from repro.proxy import ProxyNetwork, ProxyNode
from repro.site import OriginServer, SiteConfig, SiteGenerator
from repro.trace import (
    BurstArrival,
    DiurnalArrival,
    TraceRecord,
    TraceRecorder,
    TraceReplayEngine,
    UniformArrival,
    read_trace,
    record_workload,
    replay_trace,
    write_trace,
)
from repro.util import RngStream
from repro.workload import (
    CODEEN_WEEK,
    CodeenWeekExperiment,
    WorkloadConfig,
    WorkloadEngine,
)
from repro.workload.codeen import CodeenWeekConfig

__version__ = "1.3.0"

__all__ = [
    "ATTRIBUTE_NAMES",
    "AdaBoostClassifier",
    "AsyncIngress",
    "BatchScorer",
    "BurstArrival",
    "CODEEN_WEEK",
    "CodeenWeekConfig",
    "CodeenWeekExperiment",
    "DetectionService",
    "DiurnalArrival",
    "FeatureAccumulator",
    "IngressConfig",
    "IngressPipeline",
    "InstrumentConfig",
    "InstrumentationRegistry",
    "Label",
    "MicroBatchConfig",
    "OnlineClassifier",
    "OriginServer",
    "PageInstrumenter",
    "ProxyNetwork",
    "ProxyNode",
    "RngStream",
    "ShedPolicy",
    "SessionSets",
    "SessionState",
    "SessionTracker",
    "ShardedDetectionService",
    "SiteConfig",
    "SiteGenerator",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayEngine",
    "UniformArrival",
    "Verdict",
    "WorkloadConfig",
    "WorkloadEngine",
    "__version__",
    "read_trace",
    "record_workload",
    "replay_trace",
    "write_trace",
]
