"""Graduated response ladder: ``throttle -> CAPTCHA -> block``.

The paper's deployment did not just *report* robot verdicts — CoDeeN
refused service to clients it distrusted.  This module closes that
loop: micro-batch checkpoint verdicts accumulate evidence points per
client IP, and the request path consults the resulting stage before
detection runs.

Determinism contract
--------------------
Ladder state must be byte-identical across ``{serial, thread,
process}`` executors *and* across lane layouts (per-node lanes vs
per-shard lanes).  Batch flush boundaries depend on a lane's combined
event stream, so flush verdicts cannot drive the ladder without
breaking that invariant.  Instead sessions are scored at *per-session
request-count checkpoints* (the session's own observed-request count
hitting a power of two >= ``checkpoint_base``): whether and when a
checkpoint fires is a pure function of that session's own stream, and
every enforcement the verdict triggers is positional in the same IP's
stream — both invariant under any interleaving the executors produce.

Decay uses half-life *steps* (``points * 0.5 ** floor(dt / half_life)``)
rather than a continuous exponent so the arithmetic stays exactly
representable and the exported floats compare byte-for-byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "LadderConfig",
    "LadderStage",
    "ResponseLadder",
    "is_checkpoint",
    "merge_ladder_states",
]

#: Response header marking a ladder enforcement; the value is the stage.
LADDER_HEADER = "x-robot-ladder"


class LadderStage(enum.Enum):
    """Rungs of the graduated response, mildest first."""

    ALLOW = "allow"
    THROTTLE = "throttle"
    CAPTCHA = "captcha"
    BLOCK = "block"

    @property
    def rank(self) -> int:
        return _STAGE_RANK[self]


_STAGE_RANK = {
    LadderStage.ALLOW: 0,
    LadderStage.THROTTLE: 1,
    LadderStage.CAPTCHA: 2,
    LadderStage.BLOCK: 3,
}


def is_checkpoint(count: int, base: int) -> bool:
    """True when ``count`` is a power of two at or past ``base``."""
    return count >= base and (count & (count - 1)) == 0


@dataclass(frozen=True)
class LadderConfig:
    """Tuning for the per-IP escalation/decay state machine.

    ``checkpoint_base`` must be a power of two: checkpoints fire at
    observed-request counts ``base, 2*base, 4*base, ...`` per session.
    A robot checkpoint verdict adds one evidence point; points decay by
    half every ``half_life`` seconds of event time.  Stage thresholds
    are compared against the decayed total.
    """

    checkpoint_base: int = 4
    robot_weight: float = 1.0
    throttle_points: float = 1.0
    captcha_points: float = 2.0
    block_points: float = 4.0
    half_life: float = 1800.0
    #: In THROTTLE, admit one request in this many; refuse the rest.
    throttle_keep_one_in: int = 4
    #: Unanswered challenges before CAPTCHA escalates to BLOCK.
    challenge_patience: int = 32

    def __post_init__(self) -> None:
        base = self.checkpoint_base
        if base < 2 or (base & (base - 1)) != 0:
            raise ValueError(
                f"checkpoint_base must be a power of two >= 2, got {base}"
            )
        if not (
            0.0
            < self.throttle_points
            <= self.captcha_points
            <= self.block_points
        ):
            raise ValueError(
                "stage thresholds must satisfy 0 < throttle <= captcha "
                "<= block, got "
                f"{self.throttle_points}/{self.captcha_points}/"
                f"{self.block_points}"
            )
        if self.half_life <= 0.0:
            raise ValueError("half_life must be positive")
        if self.throttle_keep_one_in < 2:
            raise ValueError("throttle_keep_one_in must be >= 2")
        if self.challenge_patience < 1:
            raise ValueError("challenge_patience must be >= 1")
        if self.robot_weight <= 0.0:
            raise ValueError("robot_weight must be positive")


@dataclass
class _IpState:
    """Mutable ladder record for one client IP."""

    points: float = 0.0
    #: Event timestamp the decay is anchored at (advances in whole
    #: half-life steps so the multiplier stays a power of 0.5).
    anchor: float = 0.0
    stage: str = LadderStage.ALLOW.value
    throttle_seq: int = 0
    challenge_streak: int = 0
    verdicts: int = 0
    throttled: int = 0
    challenged: int = 0
    blocked: int = 0


class ResponseLadder:
    """Per-IP escalation/decay state machine for one lane partition.

    One instance lives on each :class:`~repro.proxy.node.NodeShard`
    (lane-contained, pickle-safe: plain dicts plus an optional metrics
    registry, which already crosses process boundaries with the shard).
    Client IPs are sticky to a shard, so instances never share an IP
    and their exports merge by plain union.
    """

    def __init__(self, config: LadderConfig | None = None) -> None:
        self.config = config or LadderConfig()
        self._ips: dict[str, _IpState] = {}
        self._transitions: list[tuple[float, str, str, str]] = []
        self._registry = None
        self._labels: dict[str, str] = {}

    def attach_metrics(self, registry, labels: Mapping[str, str]) -> None:
        """Record ladder activity into ``registry`` (event-time domain)."""
        self._registry = registry
        self._labels = dict(labels)

    def _count(self, name: str, **extra: str) -> None:
        if self._registry is not None:
            self._registry.counter(name, {**self._labels, **extra}).inc()

    # -- evidence ------------------------------------------------------------

    def observe_verdict(
        self, ip: str, margin: float, timestamp: float
    ) -> None:
        """Fold one checkpoint verdict for ``ip`` into its record.

        A robot verdict (``margin <= 0``, matching the batch scorer's
        tie-to-robot rule) adds ``robot_weight`` points; a human
        verdict adds nothing — recovery is decay's job.  Records are
        created lazily on first robot evidence so the table stays
        bounded by the suspicious-IP population, not the client one.
        """
        is_robot = margin <= 0.0
        self._count(
            "repro_ladder_verdicts_total",
            verdict="robot" if is_robot else "human",
        )
        record = self._ips.get(ip)
        if record is None:
            if not is_robot:
                return
            record = self._ips[ip] = _IpState(anchor=timestamp)
        self._decay(record, timestamp)
        if is_robot:
            record.points += self.config.robot_weight
            record.verdicts += 1
        self._note_stage(record, ip, timestamp)

    def note_captcha_result(
        self, ip: str, passed: bool, timestamp: float
    ) -> None:
        """A challenge came back: a pass exonerates, a fail condemns."""
        record = self._ips.get(ip)
        if record is None:
            return
        self._decay(record, timestamp)
        record.challenge_streak = 0
        if passed:
            record.points = 0.0
        else:
            record.points = max(record.points, self.config.block_points)
        self._note_stage(record, ip, timestamp)

    # -- enforcement ---------------------------------------------------------

    def gate(self, ip: str, now: float) -> LadderStage:
        """Decide the enforcement for one arriving request from ``ip``.

        Returns the stage to enforce *for this request*: ``ALLOW``
        passes it on to detection, ``THROTTLE`` refuses it (503),
        ``CAPTCHA`` serves a challenge, ``BLOCK`` refuses hard (403).
        While in THROTTLE one request in ``throttle_keep_one_in`` is
        admitted so the micro-batcher keeps seeing evidence.
        """
        record = self._ips.get(ip)
        if record is None:
            return LadderStage.ALLOW
        self._decay(record, now)
        stage = self._stage_of(record.points)
        if stage is LadderStage.CAPTCHA:
            record.challenge_streak += 1
            if record.challenge_streak > self.config.challenge_patience:
                # The client keeps hammering instead of solving the
                # challenge: that is evidence in itself.
                record.points = max(record.points, self.config.block_points)
                record.anchor = now
                stage = LadderStage.BLOCK
        else:
            record.challenge_streak = 0
        self._transition(record, ip, stage, now)
        if stage is LadderStage.THROTTLE:
            record.throttle_seq += 1
            if record.throttle_seq % self.config.throttle_keep_one_in == 0:
                return LadderStage.ALLOW
            record.throttled += 1
            self._count("repro_ladder_gated_total", stage=stage.value)
            return LadderStage.THROTTLE
        if stage is LadderStage.CAPTCHA:
            record.challenged += 1
        elif stage is LadderStage.BLOCK:
            record.blocked += 1
        if stage is not LadderStage.ALLOW:
            self._count("repro_ladder_gated_total", stage=stage.value)
        return stage

    # -- internals -----------------------------------------------------------

    def _decay(self, record: _IpState, now: float) -> None:
        steps = int((now - record.anchor) // self.config.half_life)
        if steps > 0:
            record.points *= 0.5**steps
            record.anchor += steps * self.config.half_life

    def _stage_of(self, points: float) -> LadderStage:
        cfg = self.config
        if points >= cfg.block_points:
            return LadderStage.BLOCK
        if points >= cfg.captcha_points:
            return LadderStage.CAPTCHA
        if points >= cfg.throttle_points:
            return LadderStage.THROTTLE
        return LadderStage.ALLOW

    def _note_stage(self, record: _IpState, ip: str, now: float) -> None:
        self._transition(record, ip, self._stage_of(record.points), now)

    def _transition(
        self, record: _IpState, ip: str, stage: LadderStage, now: float
    ) -> None:
        if stage.value != record.stage:
            self._transitions.append((now, ip, record.stage, stage.value))
            self._count(
                "repro_ladder_transitions_total",
                src=record.stage,
                dst=stage.value,
            )
            record.stage = stage.value

    # -- export --------------------------------------------------------------

    def export_state(self) -> dict:
        """Canonical, JSON-serialisable ladder state for this partition."""
        ips = {
            ip: {
                "points": record.points,
                "anchor": record.anchor,
                "stage": record.stage,
                "verdicts": record.verdicts,
                "throttled": record.throttled,
                "challenged": record.challenged,
                "blocked": record.blocked,
            }
            for ip, record in sorted(self._ips.items())
        }
        return {
            "ips": ips,
            "transitions": [list(item) for item in self._transitions],
        }


def merge_ladder_states(states: Iterable[dict]) -> dict:
    """Union per-partition exports into one network-wide state.

    IPs are sticky to a partition so the ``ips`` maps are disjoint;
    transitions interleave by ``(timestamp, ip)`` — a stable sort, so
    each IP's own transition order (already total within one
    partition) is preserved.  The result is identical whichever lane
    layout produced the partitions.
    """
    ips: dict[str, dict] = {}
    transitions: list[list] = []
    for state in states:
        for ip, record in state["ips"].items():
            if ip in ips:
                raise ValueError(
                    f"ladder partitions overlap on client IP {ip}"
                )
            ips[ip] = record
        transitions.extend(state["transitions"])
    transitions.sort(key=lambda item: (item[0], item[1]))
    return {
        "ips": {ip: ips[ip] for ip in sorted(ips)},
        "transitions": transitions,
    }
