"""Delay-budget admission control with per-IP fairness.

``ShedPolicy.ADAPTIVE`` replaces the binary full-queue drop with a
controller that watches the per-lane *predicted* queue delay (depth
divided by the drain-rate EWMA, PR 8's gauge) and sheds at the front
door once that prediction exceeds a latency budget.  Three refinements
keep the degradation graceful:

* **hysteresis** — shedding starts above ``delay_budget`` but only
  stops below ``delay_budget * resume_ratio``, so the controller does
  not flap around the threshold;
* **fairness** — while shedding, clients whose recent admitted share
  exceeds a multiple of the fair share are dropped first, so a flash
  crowd of distinct users degrades gracefully while a flooding IP
  absorbs the drops;
* **pressure ramp** — the over-share multiple starts permissive and
  tightens toward 1x the longer the episode lasts; once saturated, a
  duty-cycle backstop sheds all but one request in ``duty_cycle``
  until the prediction falls back under budget.

This controller runs in the submitting thread against wall-clock
signals, so — exactly like ``ShedPolicy.SHED`` — which individual
events it sheds is timing-dependent and **not** part of the
determinism contract.  What it guarantees instead is accounting
(admitted + shed always balances the arrival totals) and the bounded
predicted delay the tests pin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "AdaptiveConfig",
    "DelayBudgetController",
    "FairnessTracker",
    "LaneOverload",
    "OverloadReport",
]

#: Renormalise the inflated fairness weights before the common scale
#: factor (2 ** (elapsed / half_life)) can overflow a float.
_RENORM_SCALE = 2.0**500


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning for :class:`DelayBudgetController`."""

    #: Predicted queue delay (seconds) that triggers shedding.
    delay_budget: float = 1.0
    #: Shedding stops once prediction falls below ``budget * ratio``.
    resume_ratio: float = 0.5
    #: Half-life (wall seconds) of the per-IP admitted-share memory.
    fairness_half_life: float = 5.0
    #: Initial over-share multiple: an IP sheds only once its share
    #: exceeds ``boost * fair_share`` at the start of an episode.
    fairness_boost: float = 4.0
    #: Requests over which the episode pressure ramps from 0 to 1.
    ramp_requests: int = 256
    #: At full pressure, admit one request in this many.
    duty_cycle: int = 4

    def __post_init__(self) -> None:
        if self.delay_budget <= 0.0:
            raise ValueError("delay_budget must be positive")
        if not 0.0 < self.resume_ratio < 1.0:
            raise ValueError(
                "resume_ratio must be in (0, 1): shedding has to stop "
                "strictly below the budget that started it"
            )
        if self.fairness_half_life <= 0.0:
            raise ValueError("fairness_half_life must be positive")
        if self.fairness_boost < 1.0:
            raise ValueError("fairness_boost must be >= 1")
        if self.ramp_requests < 1:
            raise ValueError("ramp_requests must be >= 1")
        if self.duty_cycle < 2:
            raise ValueError("duty_cycle must be >= 2")


class FairnessTracker:
    """Exponentially-decayed admitted-request counts per client IP.

    Weights are stored *inflated* by ``2 ** (elapsed / half_life)`` so
    a single multiply-free dict update implements the decay; shares are
    ratios, so the common inflation cancels exactly.  Renormalisation
    keeps the scale finite on long runs.
    """

    def __init__(self, half_life: float) -> None:
        self.half_life = half_life
        self._epoch: float | None = None
        self._weights: dict[str, float] = {}
        self._total = 0.0

    @property
    def population(self) -> int:
        """Distinct IPs with non-negligible recent admitted weight."""
        return len(self._weights)

    def _scale(self, now: float) -> float:
        if self._epoch is None:
            self._epoch = now
        scale = 2.0 ** ((now - self._epoch) / self.half_life)
        if scale >= _RENORM_SCALE:
            self._renormalize(now)
            scale = 1.0
        return scale

    def _renormalize(self, now: float) -> None:
        factor = 2.0 ** (-(now - self._epoch) / self.half_life)
        cutoff = 2.0**-40
        rescaled = {
            ip: weight * factor
            for ip, weight in self._weights.items()
            if weight * factor > cutoff
        }
        self._weights = rescaled
        self._total = sum(rescaled.values())
        self._epoch = now

    def note(self, ip: str, now: float) -> None:
        """Record one admitted request from ``ip``."""
        scale = self._scale(now)
        self._weights[ip] = self._weights.get(ip, 0.0) + scale
        self._total += scale

    def share(self, ip: str, now: float) -> float:
        """``ip``'s fraction of recently admitted requests, in [0, 1]."""
        del now  # decay cancels in the ratio
        if self._total <= 0.0:
            return 0.0
        return self._weights.get(ip, 0.0) / self._total

    def fair_share(self) -> float:
        """The equal-split share given the current population."""
        return 1.0 / max(1, len(self._weights))


@dataclass
class _LaneState:
    shedding: bool = False
    pressure: float = 0.0
    peak_pressure: float = 0.0
    duty_seq: int = 0
    admitted: int = 0
    shed: int = 0
    entered: int = 0
    exited: int = 0


@dataclass(frozen=True)
class LaneOverload:
    """One lane's admission ledger for the run."""

    lane: int
    admitted: int
    shed: int
    entered: int
    exited: int
    peak_pressure: float


@dataclass(frozen=True)
class OverloadReport:
    """What adaptive admission did, for summaries and fairness tests."""

    lanes: tuple[LaneOverload, ...]
    admitted_by_ip: dict[str, int] = field(default_factory=dict)
    shed_by_ip: dict[str, int] = field(default_factory=dict)
    reasons: dict[str, int] = field(default_factory=dict)

    @property
    def admitted(self) -> int:
        return sum(lane.admitted for lane in self.lanes)

    @property
    def shed(self) -> int:
        return sum(lane.shed for lane in self.lanes)

    def shed_fraction(self, ip: str) -> float:
        """Fraction of ``ip``'s arrivals the controller refused."""
        admitted = self.admitted_by_ip.get(ip, 0)
        shed = self.shed_by_ip.get(ip, 0)
        total = admitted + shed
        return shed / total if total else 0.0


class DelayBudgetController:
    """Front-door admission for ``ShedPolicy.ADAPTIVE``.

    Lives in the submitting process; one fairness tracker and one
    hysteresis state per lane (client IPs are lane-sticky, so per-lane
    shares are exactly the shares among that lane's clients).
    """

    def __init__(
        self,
        config: AdaptiveConfig,
        lanes: int,
        metrics=None,
    ) -> None:
        self.config = config
        self._states = [_LaneState() for _ in range(lanes)]
        self._trackers = [
            FairnessTracker(config.fairness_half_life) for _ in range(lanes)
        ]
        self._metrics = metrics
        self._admitted_by_ip: dict[str, int] = {}
        self._shed_by_ip: dict[str, int] = {}
        self._reasons: dict[str, int] = {}

    # -- decision ------------------------------------------------------------

    def admit(
        self,
        lane: int,
        ip: str,
        predicted_delay: float,
        now: float | None = None,
    ) -> bool:
        """Admit or shed one arrival for ``lane`` from ``ip``."""
        if now is None:
            now = time.monotonic()
        cfg = self.config
        state = self._states[lane]
        if state.shedding:
            if predicted_delay < cfg.delay_budget * cfg.resume_ratio:
                state.shedding = False
                state.pressure = 0.0
                state.exited += 1
                self._phase(lane, state)
        elif predicted_delay > cfg.delay_budget:
            state.shedding = True
            state.entered += 1
            self._phase(lane, state)
        if not state.shedding:
            return self._admit(lane, state, ip, now)
        state.pressure = min(
            1.0, state.pressure + 1.0 / cfg.ramp_requests
        )
        state.peak_pressure = max(state.peak_pressure, state.pressure)
        tracker = self._trackers[lane]
        multiple = 1.0 + (cfg.fairness_boost - 1.0) * (1.0 - state.pressure)
        if tracker.share(ip, now) > tracker.fair_share() * multiple:
            return self._shed(lane, state, ip, "fairness")
        if state.pressure >= 1.0 and predicted_delay > cfg.delay_budget:
            state.duty_seq += 1
            if state.duty_seq % cfg.duty_cycle != 0:
                return self._shed(lane, state, ip, "delay_budget")
        return self._admit(lane, state, ip, now)

    def _admit(
        self, lane: int, state: _LaneState, ip: str, now: float
    ) -> bool:
        self._trackers[lane].note(ip, now)
        state.admitted += 1
        self._admitted_by_ip[ip] = self._admitted_by_ip.get(ip, 0) + 1
        return True

    def _shed(
        self, lane: int, state: _LaneState, ip: str, reason: str
    ) -> bool:
        state.shed += 1
        self._shed_by_ip[ip] = self._shed_by_ip.get(ip, 0) + 1
        self._reasons[reason] = self._reasons.get(reason, 0) + 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_ingress_shed_reason_total",
                {"lane": str(lane), "reason": reason},
                wall=True,
            ).inc()
        return False

    def _phase(self, lane: int, state: _LaneState) -> None:
        if self._metrics is not None:
            labels = {"lane": str(lane)}
            self._metrics.gauge(
                "repro_ingress_adaptive_shedding", labels, wall=True
            ).set(1.0 if state.shedding else 0.0)
            self._metrics.counter(
                "repro_ingress_adaptive_transitions_total",
                {**labels, "phase": "enter" if state.shedding else "exit"},
                wall=True,
            ).inc()

    # -- accounting ----------------------------------------------------------

    def lane_shed_counts(self) -> list[int]:
        """Per-lane admission-side sheds, for the stats ledger."""
        return [state.shed for state in self._states]

    def report(self) -> OverloadReport:
        return OverloadReport(
            lanes=tuple(
                LaneOverload(
                    lane=index,
                    admitted=state.admitted,
                    shed=state.shed,
                    entered=state.entered,
                    exited=state.exited,
                    peak_pressure=state.peak_pressure,
                )
                for index, state in enumerate(self._states)
            ),
            admitted_by_ip=dict(self._admitted_by_ip),
            shed_by_ip=dict(self._shed_by_ip),
            reasons=dict(self._reasons),
        )
