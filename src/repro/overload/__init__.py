"""Adaptive overload control: delay-budget admission and the
graduated ``throttle -> CAPTCHA -> block`` response ladder.

Two controllers live here, one per clock domain:

* :class:`~repro.overload.admission.DelayBudgetController` runs at the
  ingress front door in *wall* time.  It sheds work when a lane's
  predicted queue delay exceeds a latency budget, weighting the drops
  by each client IP's recent admitted share so a flash crowd of
  distinct users degrades gracefully while a flooding IP absorbs them.
* :class:`~repro.overload.ladder.ResponseLadder` runs inside the lane
  in *event* time.  Micro-batch checkpoint verdicts escalate a per-IP
  state machine through throttle, CAPTCHA, and block rungs; decay and
  solved challenges walk it back down.  Its state is a pure function
  of each IP's own request stream, so it is byte-identical across
  executors and lane layouts.
"""

from repro.overload.admission import (
    AdaptiveConfig,
    DelayBudgetController,
    FairnessTracker,
    OverloadReport,
)
from repro.overload.ladder import (
    LadderConfig,
    LadderStage,
    ResponseLadder,
    merge_ladder_states,
)

__all__ = [
    "AdaptiveConfig",
    "DelayBudgetController",
    "FairnessTracker",
    "LadderConfig",
    "LadderStage",
    "OverloadReport",
    "ResponseLadder",
    "merge_ladder_states",
]
