"""CAPTCHA subsystem: optional challenges with a bandwidth incentive.

The paper used CAPTCHA twice: as the Table 1 "Passed CAPTCHA test" row
(9.1% of sessions — it was *optional*, offered "with an incentive of
getting higher bandwidth") and as ground-truth labelling for the §4.2
machine-learning dataset.  Images are not rendered; the model captures
who gets offered a test, who attempts it, and who solves it.
"""

from repro.captcha.challenge import (
    CHALLENGE_PATH,
    CaptchaChallenge,
    CaptchaOutcome,
    challenge_redirect,
)
from repro.captcha.service import CaptchaConfig, CaptchaService

__all__ = [
    "CHALLENGE_PATH",
    "CaptchaChallenge",
    "CaptchaConfig",
    "CaptchaOutcome",
    "CaptchaService",
    "challenge_redirect",
]
