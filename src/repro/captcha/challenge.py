"""CAPTCHA challenge model.

A challenge has a difficulty in [0, 1]; solvers have a skill level.  A
human with normal vision solves an average-difficulty distorted-text test
with high probability; contemporary OCR attacks solved a small fraction
(the paper notes "some CAPTCHA tests can be solved by character
recognition" but saw no abuse from passers).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.ids import random_hex_key
from repro.util.rng import RngStream


class CaptchaOutcome(Enum):
    """Result of presenting a challenge."""

    NOT_OFFERED = "not_offered"
    DECLINED = "declined"
    PASSED = "passed"
    FAILED = "failed"


@dataclass(frozen=True)
class CaptchaChallenge:
    """One generated challenge."""

    challenge_id: str
    difficulty: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError("difficulty must be in [0, 1]")

    def solve_probability(self, solver_skill: float) -> float:
        """Chance a solver of the given skill passes this challenge.

        Skill 1.0 is an attentive human (≈98% on average difficulty);
        skill around 0.15 models a 2006 OCR attack.
        """
        if not 0.0 <= solver_skill <= 1.0:
            raise ValueError("solver_skill must be in [0, 1]")
        base = solver_skill * (1.0 - 0.35 * self.difficulty)
        return max(0.0, min(1.0, base))


def generate_challenge(rng: RngStream) -> CaptchaChallenge:
    """Mint a challenge with mid-range difficulty."""
    return CaptchaChallenge(
        challenge_id=random_hex_key(rng, 64),
        difficulty=rng.uniform(0.3, 0.8),
    )


#: Where the graduated response ladder sends challenged clients.
CHALLENGE_PATH = "/__captcha__/challenge"


def challenge_redirect(location: str = CHALLENGE_PATH):
    """A 302 redirect into the CAPTCHA flow, for the response ladder.

    The ``x-robot-ladder: captcha`` header marks the enforcement so
    span flagging and the trace tooling can attribute the redirect to
    the ladder rather than to origin behaviour.  Imported lazily from
    ``repro.http`` to keep this module a leaf for the solver model.
    """
    from repro.http.headers import Headers
    from repro.http.message import Response

    body = (
        b"<html><body><h1>Verification required</h1>"
        b"<p>Solve the challenge to continue browsing.</p></body></html>"
    )
    return Response(
        status=302,
        headers=Headers(
            [
                ("Location", location),
                ("Content-Type", "text/html"),
                ("x-robot-ladder", "captcha"),
            ]
        ),
        body=body,
    )
