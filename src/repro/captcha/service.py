"""CAPTCHA offering policy and outcome bookkeeping.

"Users were given the option of solving a CAPTCHA with an incentive of
getting higher bandwidth.  We see that 9.1% of the total sessions passed
the CAPTCHA."  The service models the funnel: offer -> attempt ->
solve, with per-population participation and skill parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.captcha.challenge import CaptchaOutcome, generate_challenge
from repro.util.rng import RngStream


@dataclass(frozen=True)
class CaptchaConfig:
    """Funnel parameters.

    ``human_participation`` calibrates Table 1's 9.1% row: only users who
    want the bandwidth incentive bother.  ``human_skill`` reproduces a
    high pass rate among attempters; ``robot_attempt_probability`` is tiny
    (the paper "saw no abuse from clients passing the CAPTCHA test").
    """

    human_participation: float = 0.43
    human_skill: float = 0.97
    robot_attempt_probability: float = 0.004
    robot_skill: float = 0.15
    max_attempts: int = 2

    def __post_init__(self) -> None:
        for name in (
            "human_participation",
            "human_skill",
            "robot_attempt_probability",
            "robot_skill",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass
class CaptchaStats:
    """Funnel counters."""

    offered: int = 0
    declined: int = 0
    attempted: int = 0
    passed: int = 0
    failed: int = 0

    def absorb(self, other: "CaptchaStats") -> None:
        """Fold another funnel's counters into this one.

        Used by the pipelined workload driver, where each ingress lane
        runs its own funnel (possibly in another process) and the
        engine re-aggregates them into one deployment-wide view.
        """
        self.offered += other.offered
        self.declined += other.declined
        self.attempted += other.attempted
        self.passed += other.passed
        self.failed += other.failed


class CaptchaService:
    """Runs the optional-challenge funnel for one session at a time."""

    def __init__(self, config: CaptchaConfig | None = None) -> None:
        self._config = config or CaptchaConfig()
        self.stats = CaptchaStats()

    @property
    def config(self) -> CaptchaConfig:
        """The funnel parameters."""
        return self._config

    def run_for_session(
        self, rng: RngStream, is_human: bool
    ) -> CaptchaOutcome:
        """Offer the optional test to one session; returns the outcome.

        ``is_human`` is ground truth from the workload generator — it
        decides the *behaviour* (participation, skill), standing in for
        the real user/robot on the other end.  Detectors never see it.
        """
        cfg = self._config
        self.stats.offered += 1

        attempt_probability = (
            cfg.human_participation if is_human
            else cfg.robot_attempt_probability
        )
        if not rng.bernoulli(attempt_probability):
            self.stats.declined += 1
            return CaptchaOutcome.DECLINED

        self.stats.attempted += 1
        skill = cfg.human_skill if is_human else cfg.robot_skill
        for _ in range(cfg.max_attempts):
            challenge = generate_challenge(rng)
            if rng.bernoulli(challenge.solve_probability(skill)):
                self.stats.passed += 1
                return CaptchaOutcome.PASSED
        self.stats.failed += 1
        return CaptchaOutcome.FAILED
