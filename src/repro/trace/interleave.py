"""Time-interleaved session scheduling.

The sequential engine drives sessions one at a time — fine for census
arithmetic (the tracker keys state by <IP, User-Agent>), but incapable of
expressing load shape: every request of session A hits the proxy before
any request of session B, no matter what their timestamps say.

:class:`InterleavedScheduler` instead keeps every live session as a
:class:`~repro.workload.session_run.SessionCursor` in a min-heap ordered
by next-event time and always performs the globally earliest fetch, so
the proxy network sees requests in true timestamp order.  That is what
makes flash-crowd and diurnal arrival profiles
(:mod:`repro.trace.arrival`) meaningful, and it is the same event loop
the trace replay engine uses — one discipline for synthetic and recorded
traffic.

For the default uniform profile, per-session results are identical to
the sequential engine: cursors own all per-session state, and the only
shared state (caches, probe tables, trackers) is keyed or content-
equivalent under reordering.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.agents.base import Agent, SessionBudget
from repro.ml.dataset import DEFAULT_CHECKPOINTS
from repro.workload.session_run import Handler, SessionCursor, SessionRecord


class InterleavedScheduler:
    """Steps many agent sessions through one handler in event-time order."""

    def __init__(
        self,
        handler: Handler,
        budget: SessionBudget | None = None,
        collect_features: bool = False,
        checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
        housekeeping: Callable[[float], None] | None = None,
        housekeeping_interval: float = 0.0,
    ) -> None:
        if housekeeping_interval < 0:
            raise ValueError("housekeeping_interval must be non-negative")
        self._handler = handler
        self._budget = budget
        self._collect_features = collect_features
        self._checkpoints = checkpoints
        self._housekeeping = housekeeping
        self._interval = housekeeping_interval

    def run(
        self,
        agents: Iterable[Agent],
        starts: Iterable[float],
        on_session_end: Callable[[SessionRecord], None] | None = None,
    ) -> list[SessionRecord]:
        """Drive all sessions to completion in global event order.

        ``on_session_end`` fires the moment each session finishes — at
        that point its tracker state is still live, so callers can attach
        ground truth exactly like the sequential engine does.  Records
        are returned in the agents' original order.
        """
        cursors: list[SessionCursor] = []
        heap: list[tuple[float, int, int]] = []
        records: list[SessionRecord | None] = []

        for index, (agent, start) in enumerate(zip(agents, starts)):
            cursor = SessionCursor(
                agent,
                start_time=start,
                budget=self._budget,
                collect_features=self._collect_features,
                checkpoints=self._checkpoints,
            )
            cursors.append(cursor)
            records.append(None)
            if cursor.begin():
                heapq.heappush(heap, (cursor.next_time, index, index))
            else:
                records[index] = cursor.record
                if on_session_end is not None:
                    on_session_end(cursor.record)

        # One sweep per elapsed interval of event time; a sweep at the
        # end of an idle gap subsumes the boundary sweeps inside it.
        interval = self._interval if self._housekeeping else 0.0
        next_service = interval if interval else None
        while heap:
            now, _, index = heapq.heappop(heap)
            if next_service is not None and now >= next_service:
                self._housekeeping(now)
                next_service = now + interval
            cursor = cursors[index]
            if cursor.step(self._handler):
                heapq.heappush(heap, (cursor.next_time, index, index))
            else:
                records[index] = cursor.record
                if on_session_end is not None:
                    on_session_end(cursor.record)

        return [record for record in records if record is not None]
