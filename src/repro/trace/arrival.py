"""Arrival profiles: when sessions start within the experiment window.

The seed engine spread session starts uniformly over the window — the
only arrival process a sequential, one-session-at-a-time replay can
express.  With the interleaved scheduler (:mod:`repro.trace.interleave`)
the start-time *distribution* becomes a real workload knob, so diurnal
cycles and flash crowds — the load shapes a production CoDeeN node
actually sees — are now first-class scenarios.

Profiles draw from the workload's own RNG stream, so a workload remains
fully described by (mix, size, seed, profile).
"""

from __future__ import annotations

import abc
import math

from repro.util.rng import RngStream
from repro.util.timeutil import DAY


class ArrivalProfile(abc.ABC):
    """Samples sorted session start times over ``[0, duration)``."""

    name: str = "abstract"

    @abc.abstractmethod
    def sample(
        self, rng: RngStream, count: int, duration: float
    ) -> list[float]:
        """Draw ``count`` start times in ascending order."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class UniformArrival(ArrivalProfile):
    """Starts spread uniformly over the window (the seed behaviour).

    Draw-for-draw identical to the original engine's sampling, so
    default workloads reproduce the exact same start times.
    """

    name = "uniform"

    def sample(
        self, rng: RngStream, count: int, duration: float
    ) -> list[float]:
        return sorted(rng.uniform(0.0, duration) for _ in range(count))


class DiurnalArrival(ArrivalProfile):
    """A day/night sine cycle: intensity peaks once per period.

    ``peak_ratio`` is peak-to-trough intensity; sampling is by rejection
    against the normalised intensity curve, which keeps the draws
    deterministic under the stream and exact for any ratio.
    """

    name = "diurnal"

    def __init__(
        self,
        period: float = DAY,
        peak_ratio: float = 4.0,
        peak_at: float = 0.58,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if peak_ratio < 1.0:
            raise ValueError("peak_ratio must be >= 1")
        if not 0.0 <= peak_at < 1.0:
            raise ValueError("peak_at must be in [0, 1)")
        self.period = period
        self.peak_ratio = peak_ratio
        self.peak_at = peak_at

    def intensity(self, t: float) -> float:
        """Relative arrival intensity at time ``t`` (max 1.0)."""
        phase = (t / self.period - self.peak_at) * 2.0 * math.pi
        trough = 1.0 / self.peak_ratio
        return trough + (1.0 - trough) * (1.0 + math.cos(phase)) / 2.0

    def sample(
        self, rng: RngStream, count: int, duration: float
    ) -> list[float]:
        starts: list[float] = []
        while len(starts) < count:
            t = rng.uniform(0.0, duration)
            if rng.random() < self.intensity(t):
                starts.append(t)
        starts.sort()
        return starts


class BurstArrival(ArrivalProfile):
    """A flash crowd: a fraction of all sessions lands in one short window.

    ``burst_share`` of the population arrives uniformly inside the burst
    window; the rest arrives uniformly over the whole duration, so the
    burst rides on top of background load.
    """

    name = "burst"

    def __init__(
        self,
        burst_share: float = 0.5,
        burst_start: float = 0.4,
        burst_width: float = 0.02,
    ) -> None:
        if not 0.0 <= burst_share <= 1.0:
            raise ValueError("burst_share must be in [0, 1]")
        if not 0.0 <= burst_start < 1.0:
            raise ValueError("burst_start must be in [0, 1)")
        if not 0.0 < burst_width <= 1.0:
            raise ValueError("burst_width must be in (0, 1]")
        self.burst_share = burst_share
        self.burst_start = burst_start
        self.burst_width = burst_width

    def sample(
        self, rng: RngStream, count: int, duration: float
    ) -> list[float]:
        begin = self.burst_start * duration
        end = min(duration, begin + self.burst_width * duration)
        starts = []
        for _ in range(count):
            if rng.bernoulli(self.burst_share):
                starts.append(rng.uniform(begin, end))
            else:
                starts.append(rng.uniform(0.0, duration))
        starts.sort()
        return starts


_PROFILES = {
    UniformArrival.name: UniformArrival,
    DiurnalArrival.name: DiurnalArrival,
    BurstArrival.name: BurstArrival,
}


def profile_by_name(name: str, **kwargs) -> ArrivalProfile:
    """Instantiate a named profile (``uniform``, ``diurnal``, ``burst``)."""
    try:
        cls = _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown arrival profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
    return cls(**kwargs)
