"""Streaming trace replay: feed an access log through the detection
pipeline in global timestamp order.

This is how BOTracle/BotGraph-style evaluations work — the classifier is
judged on a recorded request log rather than on scripted clients.  The
engine heap-merges any number of trace sources (plus an optional probe
journal) into one time-ordered event stream, pushes every request
through :meth:`ProxyNetwork.handle`, runs periodic
:meth:`ProxyNetwork.housekeeping` sweeps, and reduces the outcome to the
same census/set-algebra/latency shape the synthetic engine produces
(:class:`~repro.workload.results.SessionCensus`), so every analysis and
reporting consumer works unchanged.

Replay networks should be built with ``instrument_enabled=False``: the
pages were already instrumented when the trace was recorded, and the
probe journal re-creates the original registrations — minting fresh
probes would register keys the recorded clients never fetch.  Origins
are optional; requests with no route are answered 502, which feeds the
per-session status counters but no detection evidence, so a census does
not need the original site at all.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Union

from repro.detection.online import DetectionLatency
from repro.detection.session import SessionState
from repro.detection.set_algebra import SetAlgebraSummary
from repro.ml.batch import BatchVerdict
from repro.obs.flight import FlightFrame, FlightRecorder, merge_flight
from repro.obs.registry import MetricsSnapshot
from repro.obs.spans import (
    SpanConfig,
    SpanTracer,
    SpanTree,
    TailSampler,
    merge_traces,
)
from repro.proxy.network import NetworkStats, ProxyNetwork
from repro.trace.clf import ParseStats, TraceRecord, read_trace
from repro.trace.recorder import ProbeRecord, read_probe_journal
from repro.workload.results import SessionCensus, apply_session_identities

if TYPE_CHECKING:  # imported lazily at run time (package-cycle-free)
    from repro.ingress.batcher import MicroBatchConfig
    from repro.ml.adaboost import AdaBoostModel
    from repro.overload.admission import AdaptiveConfig, OverloadReport
    from repro.overload.ladder import LadderConfig

TraceSource = Union[str, Iterable[TraceRecord]]
ProbeSource = Union[str, Iterable[ProbeRecord]]

#: Merge priorities: at equal timestamps, a page's probe registrations
#: must land in the table before the fetches they explain.
_PROBE_EVENT = 0
_REQUEST_EVENT = 1


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters.

    ``assume_sorted`` skips the per-source sort for logs already in
    timestamp order (the recorder writes sorted files; real access logs
    usually are too) — required for constant-memory streaming.
    ``shards`` > 0 hash-partitions each node's detection state into that
    many shards before the first event (0 keeps the network as built);
    ``shard_workers`` sizes the optional executor behind the shards'
    batch and housekeeping paths.

    ``executor`` switches the replay from the synchronous one-request-
    at-a-time loop to the pipelined ingress: events stream onto bounded
    per-lane queues (one lane per node, ``queue_depth`` events each,
    None = unbounded) consumed by ``serial``/``thread``/``process`` lane
    executors.  Results are bit-identical to the synchronous loop unless
    ``shed`` opts the full-queue behaviour into counted load shedding.
    ``scorer_model`` additionally micro-batches §4.2 ensemble scoring
    per lane under the ``batch`` count/latency budgets.
    """

    housekeeping_interval: float = 600.0
    assume_sorted: bool = False
    default_host: str | None = None
    strict: bool = False
    shards: int = 0
    shard_workers: int | None = None
    executor: str | None = None
    queue_depth: int | None = None
    shed: bool = False
    #: Delay-budget admission (``ShedPolicy.ADAPTIVE``): shed at the
    #: front door when the lane's predicted queue delay exceeds the
    #: budget, with hysteresis and per-IP fairness.  Mutually exclusive
    #: with ``shed`` (which is the binary full-queue policy).
    adaptive: "AdaptiveConfig | None" = None
    #: Graduated response ladder (throttle -> CAPTCHA -> block) driven
    #: live from micro-batch checkpoint verdicts; needs
    #: ``scorer_model`` and a pipelined executor.
    ladder: "LadderConfig | None" = None
    #: Lane granularity for the pipelined path: 1 = one lane per node;
    #: the node's detection shard count = one lane per
    #: :class:`~repro.proxy.node.NodeShard`, so process lanes scale
    #: with cores instead of node count.  Results are invariant.
    lanes_per_node: int = 1
    scorer_model: "AdaBoostModel | None" = None
    batch: "MicroBatchConfig | None" = None
    #: Virtual-time flight-recorder sampling interval (None = off).
    #: Works on both the synchronous loop (per-node recorders) and the
    #: pipelined ingress (per-lane + admission-side recorders) — the
    #: sampling grid is absolute, so both produce the same frames.
    flight_interval: float | None = None
    #: Tail-sampling budgets for causal span tracing (None = off).
    #: Works on both paths: the synchronous loop runs one tracer per
    #: node, the pipelined ingress one per lane — the virtual view of
    #: the retained trees is identical either way.
    spans: SpanConfig | None = None

    def __post_init__(self) -> None:
        if self.housekeeping_interval < 0:
            raise ValueError("housekeeping_interval must be non-negative")
        if self.flight_interval is not None and self.flight_interval <= 0:
            raise ValueError(
                "flight_interval must be positive (or None to disable)"
            )
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1 when given")
        if self.executor is not None:
            from repro.ingress.executors import EXECUTOR_KINDS

            if self.executor not in EXECUTOR_KINDS:
                raise ValueError(
                    f"executor must be one of {EXECUTOR_KINDS}, "
                    f"got {self.executor!r}"
                )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(
                "queue_depth must be >= 1 (or None for unbounded)"
            )
        if self.shed and self.executor is None:
            raise ValueError("shed requires a pipelined executor")
        if self.shed and self.queue_depth is None:
            raise ValueError(
                "shed with queue_depth=None can never shed (an "
                "unbounded queue never refuses): set a queue_depth"
            )
        if self.adaptive is not None:
            if self.shed:
                raise ValueError(
                    "shed and adaptive are mutually exclusive shedding "
                    "policies"
                )
            if self.executor not in ("thread", "process"):
                raise ValueError(
                    "adaptive admission needs a queued executor "
                    "(thread or process)"
                )
        if self.ladder is not None:
            if self.executor is None:
                raise ValueError(
                    "ladder requires a pipelined executor"
                )
            if self.scorer_model is None:
                raise ValueError(
                    "ladder requires scorer_model (checkpoint verdicts "
                    "drive the escalation)"
                )
        if self.lanes_per_node < 1:
            raise ValueError("lanes_per_node must be >= 1")
        if self.lanes_per_node > 1 and self.executor is None:
            raise ValueError(
                "lanes_per_node > 1 requires a pipelined executor"
            )


@dataclass
class ReplayResult(SessionCensus):
    """Everything one trace replay produced (census-compatible)."""

    sessions: list[SessionState]
    summary: SetAlgebraSummary
    stats: NetworkStats
    latencies: list[DetectionLatency]
    requests_replayed: int = 0
    probes_loaded: int = 0
    first_timestamp: float = 0.0
    last_timestamp: float = 0.0
    #: Micro-batched ensemble verdicts, when the pipelined replay ran
    #: with a scorer model attached (empty otherwise).
    ml_verdicts: list[BatchVerdict] = field(default_factory=list)
    #: Trace-file and probe-journal parse accounting, kept separate so
    #: journal corruption is never misreported as access-log damage.
    parse_stats: ParseStats = field(default_factory=ParseStats)
    probe_parse_stats: ParseStats = field(default_factory=ParseStats)
    #: Deployment-wide metrics snapshot, and the merged flight-recorder
    #: timeline (empty unless ``flight_interval`` was configured).
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    flight: list[FlightFrame] = field(default_factory=list)
    #: Tail-sampled span trees, merged in (lane, seq) order (empty
    #: unless ``spans`` was configured).
    spans: list[SpanTree] = field(default_factory=list)
    #: Network-wide graduated-response ladder state (None unless the
    #: ladder was enabled).
    ladder: dict | None = None
    #: Adaptive admission ledger (None unless ``adaptive`` was set).
    overload: "OverloadReport | None" = None

    @property
    def span(self) -> float:
        """Virtual seconds between the first and last replayed request."""
        return max(0.0, self.last_timestamp - self.first_timestamp)


class TraceReplayEngine:
    """Replays trace records through a proxy network in event order."""

    def __init__(
        self,
        network: ProxyNetwork,
        config: ReplayConfig | None = None,
    ) -> None:
        self._network = network
        self._config = config or ReplayConfig()

    @property
    def network(self) -> ProxyNetwork:
        """The network being replayed into."""
        return self._network

    def replay(
        self,
        *sources: TraceSource,
        probes: ProbeSource | None = None,
    ) -> ReplayResult:
        """Replay one or more trace sources (paths or record iterables).

        Multiple sources — e.g. one log per front-end node — are merged
        by timestamp on the fly; each individual source must be sorted
        when ``assume_sorted`` is set, and is sorted here otherwise.
        """
        if not sources:
            raise ValueError("replay needs at least one trace source")
        cfg = self._config
        if cfg.shards:
            self._network.shard_detection(
                cfg.shards, max_workers=cfg.shard_workers
            )
        try:
            return self._replay(*sources, probes=probes)
        finally:
            # Release shard-executor threads the replay may have
            # spawned; lazily recreated if the network is reused.
            if cfg.shard_workers:
                self._network.close_detection()

    def _replay(
        self,
        *sources: TraceSource,
        probes: ProbeSource | None = None,
    ) -> ReplayResult:
        if self._config.executor is not None:
            return self._replay_pipelined(*sources, probes=probes)
        cfg = self._config
        parse_stats = ParseStats()
        probe_parse_stats = ParseStats()

        streams = [
            self._events(
                self._trace_records(src, parse_stats), _REQUEST_EVENT, index
            )
            for index, src in enumerate(sources)
        ]
        if probes is not None:
            streams.append(
                self._events(
                    self._probe_records(probes, probe_parse_stats),
                    _PROBE_EVENT,
                    len(streams),
                )
            )

        result = ReplayResult(
            sessions=[],
            summary=SetAlgebraSummary(0, 0, 0, 0, 0, 0, 0, 0),
            stats=NetworkStats(),
            latencies=[],
            parse_stats=parse_stats,
            probe_parse_stats=probe_parse_stats,
        )
        identities: dict[tuple[str, str], tuple[str, str]] = {}
        # Sweeps follow event time, anchored at the first event: real
        # logs carry absolute dates (years past the virtual epoch), so
        # counting boundaries from zero would spin through hundreds of
        # thousands of no-op sweeps before the first request, and a
        # single sweep at the end of a long idle gap subsumes all the
        # boundary sweeps inside it.
        interval = cfg.housekeeping_interval or None
        next_sweep = None
        first = last = None
        # Per-node flight recorders, ticked on each node's own event
        # stream — identical frame sequences to what pipelined lanes
        # record, because the sampling grid is absolute and a node sees
        # the same events in the same order either way.
        recorders = (
            [
                FlightRecorder(
                    cfg.flight_interval, node.metrics,
                    snapshot=node.metrics_snapshot,
                )
                for node in self._network.nodes
            ]
            if cfg.flight_interval
            else None
        )
        # Per-node tracers mirror the pipelined lanes exactly: lane =
        # node index, one begun-trace sequence per node, queue_wait
        # recorded (zero — there is no queue here) so tree shapes match
        # the ingress path span for span.
        tracers: list[SpanTracer] | None = None
        lane_clocks: list[float | None] = []
        if cfg.spans is not None:
            tracers = [
                SpanTracer(index, TailSampler(cfg.spans))
                for index in range(len(self._network.nodes))
            ]
            lane_clocks = [None] * len(self._network.nodes)
            for index, node in enumerate(self._network.nodes):
                node.attach_tracer(tracers[index])
        # Deferred for the same package-cycle reason as the pipelined
        # imports below.
        if tracers is not None:
            from repro.ingress.workers import _request_flags

        for timestamp, priority, _stream, _seq, item in heapq.merge(*streams):
            if interval is not None:
                if next_sweep is None:
                    next_sweep = timestamp + interval
                elif timestamp >= next_sweep:
                    self._network.housekeeping(timestamp)
                    next_sweep = timestamp + interval
            index = (
                self._network.node_index_for(item.client_ip)
                if recorders is not None or tracers is not None
                else 0
            )
            if recorders is not None:
                recorders[index].tick(timestamp)
            tracer = None
            if tracers is not None:
                tracer = tracers[index]
                clock = lane_clocks[index]
                skew = (
                    0.0 if clock is None else max(0.0, clock - timestamp)
                )
                if clock is None or timestamp > clock:
                    lane_clocks[index] = timestamp
            if priority == _PROBE_EVENT:
                node = self._network.node_for(item.client_ip)
                if tracer is not None:
                    tracer.begin("probe", timestamp)
                    tracer.record(
                        "queue_wait", timestamp, timestamp + skew
                    )
                    with tracer.span("register", timestamp):
                        node.detection.registry.register(item.to_probe())
                    tracer.end()
                else:
                    node.detection.registry.register(item.to_probe())
                result.probes_loaded += 1
                continue

            if item.agent_kind or item.true_label:
                identities[(item.client_ip, item.user_agent)] = (
                    item.agent_kind,
                    item.true_label,
                )
            if tracer is not None:
                tracer.begin("request", timestamp)
                tracer.record("queue_wait", timestamp, timestamp + skew)
                with tracer.span("handle", timestamp):
                    response, outcome = self._network.handle_traced(
                        item.to_request()
                    )
                    flags = _request_flags(response, outcome)
                tracer.end(flags=flags)
            else:
                self._network.handle(item.to_request())
            result.requests_replayed += 1
            if first is None:
                first = timestamp
            last = timestamp

        if tracers is None:
            sessions = self._network.finalize_sessions()
        else:
            # finalize_sessions(), inlined so each node's finalization
            # lands in an always-retained finish trace (one per lane,
            # exactly like the pipelined workers emit).
            sessions = []
            for index, node in enumerate(self._network.nodes):
                tracer = tracers[index]
                end = lane_clocks[index]
                end = 0.0 if end is None else end
                tracer.begin("finish", end)
                with tracer.span("finalize", end):
                    node.detection.finalize()
                tracer.end(flags=("finish",))
                sessions.extend(node.detection.tracker.analyzable())
                node.attach_tracer(None)
            result.spans = merge_traces(
                tracer.traces() for tracer in tracers
            )
        apply_session_identities(sessions, identities)

        result.sessions = sessions
        result.summary = self._network.session_sets().summary()
        result.stats = self._network.stats()
        result.latencies = self._network.detection_latencies()
        result.first_timestamp = first or 0.0
        result.last_timestamp = last or 0.0
        result.metrics = self._network.metrics_snapshot()
        if recorders is not None:
            result.flight = merge_flight(
                [recorder.frames for recorder in recorders],
                [
                    node.metrics_snapshot()
                    for node in self._network.nodes
                ],
            )
        return result

    def _replay_pipelined(
        self,
        *sources: TraceSource,
        probes: ProbeSource | None = None,
    ) -> ReplayResult:
        """The ingress path: stream events onto per-lane queues.

        Same heap-merged event order as the synchronous loop — but the
        loop only *admits*; per-node processing happens on the lanes'
        executors.  Probe-journal registrations are admitted with
        ``force`` (key material is never shed) and ride the same lane
        queue as their IP's requests, which preserves the registration-
        before-fetch ordering the probe table depends on.
        """
        # Deferred import: repro.trace's package init imports this
        # module, and the ingress package imports trace machinery.
        from repro.ingress.batcher import MicroBatchConfig
        from repro.ingress.pipeline import (
            IngressConfig,
            IngressPipeline,
            replay_workers,
        )
        from repro.ingress.queues import ShedPolicy
        from repro.ingress.workers import PROBE_EVENT, REQUEST_EVENT

        cfg = self._config
        parse_stats = ParseStats()
        probe_parse_stats = ParseStats()

        streams = [
            self._events(
                self._trace_records(src, parse_stats), _REQUEST_EVENT, index
            )
            for index, src in enumerate(sources)
        ]
        if probes is not None:
            streams.append(
                self._events(
                    self._probe_records(probes, probe_parse_stats),
                    _PROBE_EVENT,
                    len(streams),
                )
            )

        if cfg.adaptive is not None:
            policy = ShedPolicy.ADAPTIVE
        elif cfg.shed:
            policy = ShedPolicy.SHED
        else:
            policy = ShedPolicy.BLOCK
        ingress_config = IngressConfig(
            executor=cfg.executor or "serial",
            queue_depth=cfg.queue_depth,
            policy=policy,
            housekeeping_interval=cfg.housekeeping_interval,
            lanes_per_node=cfg.lanes_per_node,
            batch=cfg.batch or MicroBatchConfig(),
            scorer_model=cfg.scorer_model,
            flight_interval=cfg.flight_interval,
            spans=cfg.spans,
            adaptive=cfg.adaptive,
            ladder=cfg.ladder,
        )
        pipeline = IngressPipeline(
            self._network,
            replay_workers(self._network, ingress_config),
            ingress_config,
        )

        identities: dict[tuple[str, str], tuple[str, str]] = {}
        for _time, priority, _stream, _seq, item in heapq.merge(*streams):
            pipeline.tick(_time)
            if priority == _PROBE_EVENT:
                pipeline.submit(
                    (PROBE_EVENT, item), item.client_ip, force=True
                )
                continue
            if item.agent_kind or item.true_label:
                identities[(item.client_ip, item.user_agent)] = (
                    item.agent_kind,
                    item.true_label,
                )
            pipeline.submit((REQUEST_EVENT, item), item.client_ip)

        ingress = pipeline.close()
        sessions = ingress.sessions
        apply_session_identities(sessions, identities)
        return ReplayResult(
            sessions=sessions,
            summary=ingress.session_sets().summary(),
            stats=ingress.stats,
            latencies=ingress.latencies,
            requests_replayed=ingress.handled,
            probes_loaded=ingress.probes_loaded,
            first_timestamp=ingress.first_timestamp,
            last_timestamp=ingress.last_timestamp,
            parse_stats=parse_stats,
            probe_parse_stats=probe_parse_stats,
            ml_verdicts=ingress.ml_verdicts,
            metrics=ingress.metrics,
            flight=ingress.flight,
            spans=ingress.spans,
            ladder=ingress.ladder,
            overload=ingress.overload,
        )

    # -- stream plumbing ----------------------------------------------------

    def _trace_records(
        self, source: TraceSource, stats: ParseStats
    ) -> Iterator[TraceRecord]:
        cfg = self._config
        if isinstance(source, str):
            records: Iterable[TraceRecord] = read_trace(
                source,
                default_host=cfg.default_host,
                stats=stats,
                strict=cfg.strict,
            )
        else:
            records = source
        if cfg.assume_sorted:
            yield from records
        else:
            yield from sorted(records, key=lambda r: r.timestamp)

    def _probe_records(
        self, source: ProbeSource, stats: ParseStats
    ) -> Iterator[ProbeRecord]:
        cfg = self._config
        if isinstance(source, str):
            records: Iterable[ProbeRecord] = read_probe_journal(
                source, stats=stats, strict=cfg.strict
            )
        else:
            records = source
        if cfg.assume_sorted:
            yield from records
        else:
            yield from sorted(records, key=lambda p: p.issued_at)

    @staticmethod
    def _events(records: Iterable, priority: int, stream: int):
        """Wrap records as sortable (time, priority, stream, seq, record)
        events; stream/seq break ties so records are never compared."""
        for seq, record in enumerate(records):
            time = (
                record.timestamp
                if priority == _REQUEST_EVENT
                else record.issued_at
            )
            yield (time, priority, stream, seq, record)


def replay_trace(
    network: ProxyNetwork,
    *sources: TraceSource,
    probes: ProbeSource | None = None,
    config: ReplayConfig | None = None,
) -> ReplayResult:
    """One-call replay: build the engine, merge, replay, reduce."""
    return TraceReplayEngine(network, config).replay(*sources, probes=probes)
