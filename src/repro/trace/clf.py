"""Common/Combined Log Format traces: the interchange format of the
trace subsystem.

A :class:`TraceRecord` is one access-log line — exactly the fields a
CoDeeN node would log for one request/response pair.  The module reads
and writes NCSA Combined Log Format so that (a) any workload this
simulator runs can be exported as a standard access log, and (b) real
access logs can be replayed through the detection pipeline
(:mod:`repro.trace.replay`), the way BOTracle and BotGraph evaluate
their detectors.

Two deliberate extensions, both backward compatible with real logs:

* timestamps carry optional fractional seconds
  (``[06/Feb/2006:00:12:07.318204 +0000]``) so a replay preserves the
  simulator's sub-second event ordering; plain second-resolution stamps
  parse fine;
* the normally unused ``ident``/``authuser`` fields carry the synthetic
  ground truth (agent kind and "human"/"robot" label) when a trace is
  exported by the recorder — evaluation metadata the detectors never
  read.  Real logs have ``-`` there and simply replay unlabelled.

Reading is streaming (constant memory) and gzip-transparent; malformed
lines are counted and skipped rather than aborting a multi-gigabyte
replay (set ``strict=True`` to raise instead).
"""

from __future__ import annotations

import gzip
import re
from dataclasses import dataclass, field, replace
from typing import IO, Iterable, Iterator

from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url

#: Virtual second 0 of every exported trace, rendered in CLF dates.
#: The paper's CoDeeN week was captured in Feb 2006; the exact anchor is
#: arbitrary because replays only use differences between timestamps.
TRACE_EPOCH = "06/Feb/2006:00:00:00"

_EPOCH_YEAR = 2006
_EPOCH_MONTH = 2
_EPOCH_DAY = 6

_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_INDEX = {name: i + 1 for i, name in enumerate(_MONTHS)}

#: Days in each month of a non-leap year (index 1..12).
_MONTH_DAYS = (0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

_QUOTED = r'"((?:[^"\\]|\\.)*)"'
_LINE_RE = re.compile(
    r"^(?P<ip>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+"
    r"\[(?P<time>[^\]]+)\]\s+"
    rf"(?P<request>{_QUOTED})\s+"
    r"(?P<status>\d{3})\s+(?P<size>\d+|-)"
    rf"(?:\s+(?P<referer>{_QUOTED})\s+(?P<agent>{_QUOTED}))?\s*$"
)
_TIME_RE = re.compile(
    r"^(?P<day>\d{1,2})/(?P<month>[A-Za-z]{3})/(?P<year>\d{4})"
    r":(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})"
    r"(?:\.(?P<fraction>\d{1,6}))?"
    r"(?:\s+(?P<sign>[+-])(?P<zh>\d{2})(?P<zm>\d{2}))?$"
)


class TraceParseError(ValueError):
    """A CLF line (or one of its fields) could not be parsed."""


@dataclass
class ParseStats:
    """Counters for one reading pass over a trace file."""

    lines: int = 0
    parsed: int = 0
    malformed: int = 0
    #: First few offending lines, for diagnostics.
    samples: list[str] = field(default_factory=list)

    _MAX_SAMPLES = 5

    def note_malformed(self, line: str) -> None:
        """Count one bad line, keeping a short sample for the report."""
        self.malformed += 1
        if len(self.samples) < self._MAX_SAMPLES:
            self.samples.append(line.rstrip("\n")[:200])


@dataclass(frozen=True)
class TraceRecord:
    """One access-log line: a request and what was answered.

    ``agent_kind``/``true_label`` round-trip through the CLF
    ``ident``/``authuser`` fields; empty strings render as ``-``.
    """

    client_ip: str
    timestamp: float
    method: Method
    url: Url
    status: int
    size: int
    user_agent: str = ""
    referer: str | None = None
    agent_kind: str = ""
    true_label: str = ""

    @classmethod
    def from_exchange(
        cls, request: Request, response: Response
    ) -> "TraceRecord":
        """Capture one request/response pair flowing through a proxy."""
        return cls(
            client_ip=request.client_ip,
            timestamp=request.timestamp,
            method=request.method,
            url=request.url,
            status=response.status,
            size=response.size,
            user_agent=request.user_agent,
            referer=request.referer,
        )

    def to_request(self) -> Request:
        """Rebuild the proxy-side request this line describes."""
        headers = Headers()
        if self.user_agent:
            headers.set("User-Agent", self.user_agent)
        if self.referer:
            headers.set("Referer", self.referer)
        return Request(
            method=self.method,
            url=self.url,
            client_ip=self.client_ip,
            headers=headers,
            timestamp=self.timestamp,
        )

    def with_ground_truth(self, kind: str, label: str) -> "TraceRecord":
        """Copy of this record annotated with synthetic ground truth."""
        return replace(self, agent_kind=kind, true_label=label)


# -- timestamp rendering ----------------------------------------------------


def format_clf_time(timestamp: float) -> str:
    """Virtual seconds -> ``06/Feb/2006:00:12:07.318204 +0000``.

    Fractional digits are emitted only when the timestamp has them, so a
    whole-second trace is byte-identical to standard CLF.
    """
    if timestamp < 0:
        raise ValueError(f"timestamp must be non-negative, got {timestamp}")
    whole = int(timestamp)
    micros = int(round((timestamp - whole) * 1_000_000))
    if micros == 1_000_000:  # rounding carried into the next second
        whole += 1
        micros = 0

    day = _EPOCH_DAY - 1 + whole // 86_400
    month = _EPOCH_MONTH
    year = _EPOCH_YEAR
    while day >= _days_in_month(year, month):
        day -= _days_in_month(year, month)
        month += 1
        if month > 12:
            month = 1
            year += 1
    rem = whole % 86_400
    hh, rem = divmod(rem, 3600)
    mm, ss = divmod(rem, 60)
    base = (
        f"{day + 1:02d}/{_MONTHS[month - 1]}/{year}:{hh:02d}:{mm:02d}:{ss:02d}"
    )
    if micros:
        base += f".{micros:06d}"
    return base + " +0000"


def parse_clf_time(text: str) -> float:
    """``06/Feb/2006:00:12:07[.ffffff] [+zzzz]`` -> virtual seconds.

    Any absolute date parses; the result is seconds since
    :data:`TRACE_EPOCH` (UTC), so real logs land on the same virtual
    clock the simulator uses.  Dates before the epoch are rejected.
    """
    match = _TIME_RE.match(text.strip())
    if match is None:
        raise TraceParseError(f"unparseable CLF timestamp: {text!r}")
    month = _MONTH_INDEX.get(match.group("month").title())
    if month is None:
        raise TraceParseError(f"unknown month in timestamp: {text!r}")
    year = int(match.group("year"))
    day = int(match.group("day"))
    days = _days_since_epoch(year, month, day)
    seconds = (
        days * 86_400.0
        + int(match.group("hour")) * 3600
        + int(match.group("minute")) * 60
        + int(match.group("second"))
    )
    fraction = match.group("fraction")
    if fraction:
        seconds += int(fraction.ljust(6, "0")) / 1_000_000
    if match.group("sign"):
        offset = int(match.group("zh")) * 3600 + int(match.group("zm")) * 60
        if match.group("sign") == "+":
            seconds -= offset
        else:
            seconds += offset
    if seconds < 0:
        raise TraceParseError(
            f"timestamp predates the trace epoch ({TRACE_EPOCH}): {text!r}"
        )
    return seconds


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _days_in_month(year: int, month: int) -> int:
    if month == 2 and _is_leap(year):
        return 29
    return _MONTH_DAYS[month]


def _days_since_epoch(year: int, month: int, day: int) -> int:
    if not 1 <= month <= 12 or not 1 <= day <= _days_in_month(year, month):
        raise TraceParseError(f"invalid date: {year}-{month}-{day}")
    days = 0
    for y in range(_EPOCH_YEAR, year):
        days += 366 if _is_leap(y) else 365
    for m in range(1, month):
        days += _days_in_month(year, m)
    days += day - 1
    # Anchor at Feb 6 rather than Jan 1.
    days -= _MONTH_DAYS[1] + _EPOCH_DAY - 1
    return days


# -- line rendering ---------------------------------------------------------


def _quote(value: str) -> str:
    return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _unquote(value: str) -> str:
    return value.replace('\\"', '"').replace("\\\\", "\\")


def format_clf_line(record: TraceRecord) -> str:
    """Render one record as a Combined Log Format line (no newline)."""
    ident = record.agent_kind or "-"
    user = record.true_label or "-"
    request = f"{record.method.value} {record.url} HTTP/1.1"
    referer = record.referer or "-"
    return (
        f"{record.client_ip} {ident} {user} "
        f"[{format_clf_time(record.timestamp)}] "
        f"{_quote(request)} {record.status} {record.size} "
        f"{_quote(referer)} {_quote(record.user_agent or '-')}"
    )


def parse_clf_line(
    line: str, default_host: str | None = None
) -> TraceRecord:
    """Parse one access-log line; raises :class:`TraceParseError`.

    ``default_host`` resolves origin-form request targets (``GET /x``)
    as real servers log them; exported traces use absolute URLs and do
    not need it.
    """
    match = _LINE_RE.match(line)
    if match is None:
        raise TraceParseError(f"unparseable CLF line: {line!r}")

    request_line = _unquote(match.group("request")[1:-1])
    parts = request_line.split()
    if len(parts) == 3:
        method_text, target, _protocol = parts
    elif len(parts) == 2:
        method_text, target = parts
    else:
        raise TraceParseError(f"unparseable request field: {request_line!r}")
    try:
        method = Method(method_text.upper())
    except ValueError:
        raise TraceParseError(f"unsupported method: {method_text!r}") from None

    if target.startswith("/"):
        if default_host is None:
            raise TraceParseError(
                f"origin-form target {target!r} needs a default_host"
            )
        target = f"http://{default_host}{target}"
    try:
        url = Url.parse(target)
    except ValueError as exc:
        raise TraceParseError(str(exc)) from None

    size_text = match.group("size")
    referer_group = match.group("referer")
    referer = _unquote(referer_group[1:-1]) if referer_group else "-"
    agent_group = match.group("agent")
    agent = _unquote(agent_group[1:-1]) if agent_group else "-"
    ident = match.group("ident")
    user = match.group("user")
    return TraceRecord(
        client_ip=match.group("ip"),
        timestamp=parse_clf_time(match.group("time")),
        method=method,
        url=url,
        status=int(match.group("status")),
        size=0 if size_text == "-" else int(size_text),
        user_agent="" if agent == "-" else agent,
        referer=None if referer == "-" else referer,
        agent_kind="" if ident == "-" else ident,
        true_label="" if user == "-" else user,
    )


# -- file I/O ---------------------------------------------------------------


def open_trace_file(path: str, mode: str = "rt") -> IO[str]:
    """Open a trace file for text I/O, transparently handling gzip.

    Reading sniffs the gzip magic; writing gzips when the path ends in
    ``.gz``.
    """
    if "r" in mode:
        with open(path, "rb") as probe:
            magic = probe.read(2)
        if magic == b"\x1f\x8b":
            return gzip.open(path, "rt", encoding="utf-8")
        return open(path, "r", encoding="utf-8")
    if path.endswith(".gz"):
        return gzip.open(path, mode if "t" in mode else mode + "t",
                         encoding="utf-8")
    return open(path, mode.replace("t", ""), encoding="utf-8")


def read_trace(
    source: str | IO[str] | Iterable[str],
    default_host: str | None = None,
    stats: ParseStats | None = None,
    strict: bool = False,
) -> Iterator[TraceRecord]:
    """Stream records from a trace file, path or line iterable.

    Malformed lines (and blank lines / ``#`` comments) are skipped and
    counted in ``stats``; with ``strict=True`` the first malformed line
    raises :class:`TraceParseError` instead.
    """
    stats = stats if stats is not None else ParseStats()
    close_after = False
    if isinstance(source, str):
        lines: Iterable[str] = open_trace_file(source)
        close_after = True
    else:
        lines = source
    try:
        for line in lines:
            stats.lines += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                record = parse_clf_line(stripped, default_host=default_host)
            except TraceParseError:
                if strict:
                    raise
                stats.note_malformed(line)
                continue
            stats.parsed += 1
            yield record
    finally:
        if close_after:
            lines.close()  # type: ignore[union-attr]


def write_trace(path: str, records: Iterable[TraceRecord]) -> int:
    """Write records as CLF lines (gzipped for ``.gz``); returns count."""
    written = 0
    with open_trace_file(path, "wt") as handle:
        for record in records:
            handle.write(format_clf_line(record))
            handle.write("\n")
            written += 1
    return written
