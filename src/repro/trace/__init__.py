"""Trace subsystem: access-log ingestion, recording, and replay.

Connects the simulator to real-world request logs in both directions:

* :mod:`repro.trace.clf` — Common/Combined Log Format records, with
  streaming gzip-transparent reading and malformed-line accounting;
* :mod:`repro.trace.recorder` — a network tap that exports any workload
  as a CLF trace plus the probe journal replays need for full detection
  fidelity;
* :mod:`repro.trace.replay` — heap-merged, timestamp-ordered streaming
  replay of traces through the detection pipeline, reduced to the same
  census shape the synthetic engine emits;
* :mod:`repro.trace.arrival` — uniform / diurnal / flash-crowd session
  arrival profiles;
* :mod:`repro.trace.interleave` — the event-ordered scheduler that
  drives synthetic sessions the way the replay engine drives recorded
  ones.
"""

from repro.trace.arrival import (
    ArrivalProfile,
    BurstArrival,
    DiurnalArrival,
    UniformArrival,
    profile_by_name,
)
from repro.trace.clf import (
    ParseStats,
    TraceParseError,
    TraceRecord,
    format_clf_line,
    parse_clf_line,
    read_trace,
    write_trace,
)
from repro.trace.interleave import InterleavedScheduler
from repro.trace.recorder import (
    ProbeRecord,
    TraceRecorder,
    read_probe_journal,
    record_workload,
    write_probe_journal,
)
from repro.trace.replay import (
    ReplayConfig,
    ReplayResult,
    TraceReplayEngine,
    replay_trace,
)

__all__ = [
    "ArrivalProfile",
    "BurstArrival",
    "DiurnalArrival",
    "InterleavedScheduler",
    "ParseStats",
    "ProbeRecord",
    "ReplayConfig",
    "ReplayResult",
    "TraceParseError",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayEngine",
    "UniformArrival",
    "format_clf_line",
    "parse_clf_line",
    "profile_by_name",
    "read_probe_journal",
    "read_trace",
    "record_workload",
    "replay_trace",
    "write_probe_journal",
    "write_trace",
]
