"""Trace recording: tap a proxy network and export what flowed through.

:class:`TraceRecorder` attaches to a :class:`~repro.proxy.network.ProxyNetwork`
and captures two synchronised streams:

* every request/response pair the network handles, as
  :class:`~repro.trace.clf.TraceRecord` lines — the access log; and
* every probe the instrumenter registers, as :class:`ProbeRecord` lines —
  the **probe journal**.

The journal exists because the paper's mouse-beacon scheme is *designed*
so that a URL alone does not reveal whether its key is real or a decoy —
only the server-side table knows.  An access log therefore cannot be
replayed with full detection fidelity unless the table's registrations
are exported alongside it; the journal is exactly the key material a
deployment would log server-side (§2.1's ``<foo.html, k>`` tuples).
Replaying a CLF file *without* a journal still works and models the real
use case of analysing a foreign access log: request-stream features
survive, probe-derived evidence does not.

Both files are written sorted by timestamp so the replay engine can
stream them with a bounded heap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from repro.http.message import Request, Response
from repro.instrument.keys import BeaconKind, RegisteredProbe
from repro.proxy.network import ProxyNetwork
from repro.trace.clf import (
    ParseStats,
    TraceParseError,
    TraceRecord,
    open_trace_file,
    write_trace,
)
from repro.workload.session_run import SessionRecord


@dataclass(frozen=True)
class ProbeRecord:
    """One probe-table registration, as journalled by the recorder."""

    issued_at: float
    kind: str
    client_ip: str
    host: str
    path: str
    page_path: str
    key: str | None = None
    is_real_key: bool = False

    @classmethod
    def from_probe(cls, probe: RegisteredProbe) -> "ProbeRecord":
        """Journal form of a live registration.

        ``issued_at`` is quantised to the journal's microsecond
        resolution (matching CLF timestamps) so records round-trip
        exactly through the file format.
        """
        return cls(
            issued_at=round(probe.issued_at, 6),
            kind=probe.kind.value,
            client_ip=probe.client_ip,
            host=probe.host,
            path=probe.path,
            page_path=probe.page_path,
            key=probe.key,
            is_real_key=probe.is_real_key,
        )

    def to_probe(self) -> RegisteredProbe:
        """Rebuild the registration for a replay network's table.

        The beacon-JS payload is not journalled (it is bandwidth
        bookkeeping, not detection state), so replayed script probes
        serve an empty body.
        """
        return RegisteredProbe(
            kind=BeaconKind(self.kind),
            client_ip=self.client_ip,
            host=self.host,
            path=self.path,
            page_path=self.page_path,
            issued_at=self.issued_at,
            key=self.key,
            is_real_key=self.is_real_key,
        )


def format_probe_line(record: ProbeRecord) -> str:
    """Tab-separated journal line (no newline)."""
    return "\t".join(
        (
            f"{record.issued_at:.6f}",
            record.kind,
            record.client_ip,
            record.host,
            record.path,
            record.page_path or "-",
            record.key or "-",
            "real" if record.is_real_key else "decoy",
        )
    )


def parse_probe_line(line: str) -> ProbeRecord:
    """Parse one journal line; raises :class:`TraceParseError`."""
    parts = line.rstrip("\n").split("\t")
    if len(parts) != 8:
        raise TraceParseError(f"unparseable probe journal line: {line!r}")
    issued, kind, ip, host, path, page_path, key, realness = parts
    try:
        timestamp = float(issued)
        BeaconKind(kind)
    except ValueError:
        raise TraceParseError(
            f"unparseable probe journal line: {line!r}"
        ) from None
    return ProbeRecord(
        issued_at=timestamp,
        kind=kind,
        client_ip=ip,
        host=host,
        path=path,
        page_path="" if page_path == "-" else page_path,
        key=None if key == "-" else key,
        is_real_key=realness == "real",
    )


def write_probe_journal(path: str, records: Iterable[ProbeRecord]) -> int:
    """Write a probe journal (gzipped for ``.gz``); returns the count."""
    written = 0
    with open_trace_file(path, "wt") as handle:
        for record in records:
            handle.write(format_probe_line(record))
            handle.write("\n")
            written += 1
    return written


def read_probe_journal(
    source: str | IO[str] | Iterable[str],
    stats: ParseStats | None = None,
    strict: bool = False,
) -> Iterator[ProbeRecord]:
    """Stream a probe journal, skipping (and counting) malformed lines."""
    stats = stats if stats is not None else ParseStats()
    close_after = False
    if isinstance(source, str):
        lines: Iterable[str] = open_trace_file(source)
        close_after = True
    else:
        lines = source
    try:
        for line in lines:
            stats.lines += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                record = parse_probe_line(stripped)
            except TraceParseError:
                if strict:
                    raise
                stats.note_malformed(line)
                continue
            stats.parsed += 1
            yield record
    finally:
        if close_after:
            lines.close()  # type: ignore[union-attr]


class TraceRecorder:
    """Captures a network's traffic (and probe table) for later replay.

    Usage::

        recorder = TraceRecorder()
        recorder.attach(network)
        ...drive any workload through the network...
        recorder.detach(network)
        recorder.annotate_ground_truth(result.records)
        recorder.save("trace.log.gz", "trace.keys.gz")
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.probes: list[ProbeRecord] = []
        self._identities: dict[tuple[str, str], tuple[str, str]] = {}

    # -- capture ----------------------------------------------------------

    def attach(self, network: ProxyNetwork) -> None:
        """Start capturing this network's traffic and registrations."""
        network.add_tap(self.observe)
        for node in network.nodes:
            node.detection.registry.add_listener(self.observe_probe)

    def detach(self, network: ProxyNetwork) -> None:
        """Stop capturing (taps/listeners added by :meth:`attach`)."""
        network.remove_tap(self.observe)
        for node in network.nodes:
            node.detection.registry.remove_listener(self.observe_probe)

    def observe(self, request: Request, response: Response) -> None:
        """Network tap: one handled request/response pair."""
        self.records.append(TraceRecord.from_exchange(request, response))

    def observe_probe(self, probe: RegisteredProbe) -> None:
        """Registry listener: one probe registration."""
        self.probes.append(ProbeRecord.from_probe(probe))

    # -- annotation and export -------------------------------------------

    def annotate_ground_truth(
        self, session_records: Iterable[SessionRecord]
    ) -> None:
        """Learn <IP, User-Agent> -> (kind, label) from a workload run.

        Applied at save time, this writes the synthetic ground truth into
        the CLF ``ident``/``authuser`` fields so a replayed census can be
        compared against the original run.
        """
        for record in session_records:
            self._identities[(record.client_ip, record.user_agent)] = (
                record.agent_kind,
                record.true_label,
            )

    def sorted_records(self) -> list[TraceRecord]:
        """Captured records in global timestamp order, annotated.

        The sort is stable, so same-timestamp requests keep their arrival
        order — which preserves per-session request order exactly.
        """
        annotated = []
        for record in self.records:
            identity = self._identities.get(
                (record.client_ip, record.user_agent)
            )
            if identity is not None:
                record = record.with_ground_truth(*identity)
            annotated.append(record)
        annotated.sort(key=lambda r: r.timestamp)
        return annotated

    def sorted_probes(self) -> list[ProbeRecord]:
        """Journalled registrations in issue order (stable by time)."""
        return sorted(self.probes, key=lambda p: p.issued_at)

    def save(self, trace_path: str, probes_path: str | None = None) -> int:
        """Write the trace (and optionally the probe journal) to disk.

        Returns the number of CLF lines written.
        """
        written = write_trace(trace_path, self.sorted_records())
        if probes_path is not None:
            write_probe_journal(probes_path, self.sorted_probes())
        return written


def record_workload(engine, trace_path: str, probes_path: str | None = None):
    """Run a workload engine with a recorder attached and save the trace.

    Returns ``(WorkloadResult, TraceRecorder)``.  The engine should be
    configured with ``captcha_enabled=False`` when the trace is meant for
    round-trip comparison: CAPTCHA outcomes happen out-of-band and leave
    no access-log footprint, so a replay cannot reproduce them.
    """
    recorder = TraceRecorder()
    recorder.attach(engine.network)
    try:
        result = engine.run()
    finally:
        recorder.detach(engine.network)
    recorder.annotate_ground_truth(result.records)
    recorder.save(trace_path, probes_path)
    return result, recorder
