"""The paper's primary contribution: online human/robot classification.

A :class:`~repro.detection.tracker.SessionTracker` groups the request
stream into ``<IP, User-Agent>`` sessions (1-hour idle timeout, §3).  Each
request is matched against the instrumentation registry; hits become
:class:`~repro.detection.events.DetectionEvent`s that update per-session
evidence flags:

* valid keyed mouse-image fetch  -> human activity (§2.1);
* CSS-beacon fetch               -> standard-browser behaviour (§2.2);
* UA-probe fetch                 -> JavaScript execution (+ forgery check);
* hidden-trap page fetch         -> crawler behaviour;
* wrong-key beacon fetch         -> blind-fetching robot.

:mod:`repro.detection.set_algebra` combines the per-session flags with the
paper's formula ``S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)`` and derives the
lower/upper human-fraction bounds and the maximum false-positive rate.
:mod:`repro.detection.online` produces per-request verdicts and the
requests-to-detect samples behind Figure 2, and
:mod:`repro.detection.policy` applies the post-classification rate
limiting and blocking described in §3.2.
"""

from repro.detection.events import DetectionEvent, EventKind
from repro.detection.online import OnlineClassifier, OnlineConfig
from repro.detection.policy import PolicyAction, PolicyConfig, RobotPolicy
from repro.detection.service import DetectionService, RequestOutcome
from repro.detection.session import SessionKey, SessionState
from repro.detection.set_algebra import SessionSets, SetAlgebraSummary
from repro.detection.sharded import (
    ShardedDetectionService,
    shard_index,
    shard_service,
)
from repro.detection.tracker import SessionTracker
from repro.detection.verdict import Label, Verdict

__all__ = [
    "DetectionEvent",
    "DetectionService",
    "EventKind",
    "Label",
    "OnlineClassifier",
    "OnlineConfig",
    "PolicyAction",
    "PolicyConfig",
    "RequestOutcome",
    "RobotPolicy",
    "SessionKey",
    "SessionSets",
    "SessionState",
    "SessionTracker",
    "SetAlgebraSummary",
    "ShardedDetectionService",
    "Verdict",
    "shard_index",
    "shard_service",
]
