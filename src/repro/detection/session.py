"""Per-session state: identity, counters and evidence flags.

§3 defines a session as "a stream of HTTP requests and responses
associated with a unique <IP, User-Agent> pair, that has not been idle for
more than an hour", and the analysis "only consider[s] sessions that have
sent more than 10 requests".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.http.message import Method, Request, Response
from repro.http.status import StatusClass


@dataclass(frozen=True)
class SessionKey:
    """The <IP, User-Agent> pair that identifies a session."""

    client_ip: str
    user_agent: str

    def __str__(self) -> str:
        agent = self.user_agent if len(self.user_agent) <= 40 else (
            self.user_agent[:37] + "..."
        )
        return f"<{self.client_ip}, {agent}>"


@dataclass
class SessionState:
    """Everything the detector remembers about one session.

    Evidence fields record the 1-based request index at which each signal
    *first* fired (None = never) — these indices are the Figure 2 samples.
    """

    session_id: str
    key: SessionKey
    started_at: float
    last_request_at: float = 0.0
    request_count: int = 0

    # -- evidence (first-occurrence request indices) -----------------------
    css_beacon_at: int | None = None
    beacon_js_at: int | None = None
    js_executed_at: int | None = None
    mouse_event_at: int | None = None
    hidden_link_at: int | None = None
    ua_mismatch_at: int | None = None
    captcha_passed_at: int | None = None
    wrong_key_fetches: int = 0

    # -- aggregate counters (cheap; always maintained) ---------------------
    head_requests: int = 0
    get_requests: int = 0
    post_requests: int = 0
    cgi_requests: int = 0
    status_2xx: int = 0
    status_3xx: int = 0
    status_4xx: int = 0
    status_5xx: int = 0
    bytes_served: int = 0
    beacon_bytes_served: int = 0

    # Ground truth for evaluation only — set by the workload generator,
    # never read by any detector.
    true_label: str = ""
    agent_kind: str = ""

    # Scratch space other components may attach (e.g. the ML feature
    # accumulator when dataset collection is enabled).
    attachments: dict[str, object] = field(default_factory=dict)

    # -- membership predicates used by the set algebra ---------------------

    @property
    def in_css_set(self) -> bool:
        """S_CSS: downloaded the beacon CSS file."""
        return self.css_beacon_at is not None

    @property
    def in_js_set(self) -> bool:
        """S_JS: executed the embedded JavaScript (UA probe fetched)."""
        return self.js_executed_at is not None

    @property
    def in_mouse_set(self) -> bool:
        """S_MM: produced a correctly keyed mouse-event fetch."""
        return self.mouse_event_at is not None

    @property
    def followed_hidden_link(self) -> bool:
        """Fetched a hidden-trap page."""
        return self.hidden_link_at is not None

    @property
    def ua_mismatched(self) -> bool:
        """JavaScript-echoed UA disagreed with the UA header."""
        return self.ua_mismatch_at is not None

    @property
    def passed_captcha(self) -> bool:
        """Solved the optional CAPTCHA."""
        return self.captcha_passed_at is not None

    @property
    def is_human_by_set_algebra(self) -> bool:
        """Membership in S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)."""
        in_union = self.in_css_set or self.in_mouse_set
        in_js_only = self.in_js_set and not self.in_mouse_set
        return in_union and not in_js_only

    @property
    def idle_since(self) -> float:
        """Timestamp of the last request (idle time starts here)."""
        return self.last_request_at

    # -- updates ------------------------------------------------------------

    def note_request(self, request: Request) -> int:
        """Record an incoming request; returns its 1-based index."""
        self.request_count += 1
        self.last_request_at = request.timestamp
        if request.method is Method.HEAD:
            self.head_requests += 1
        elif request.method is Method.POST:
            self.post_requests += 1
        else:
            self.get_requests += 1
        if request.path_kind.value == "cgi":
            self.cgi_requests += 1
        return self.request_count

    def note_response(self, response: Response, from_beacon: bool = False) -> None:
        """Record the response paired with the latest request."""
        klass = response.status_class
        if klass is StatusClass.SUCCESS:
            self.status_2xx += 1
        elif klass is StatusClass.REDIRECT:
            self.status_3xx += 1
        elif klass is StatusClass.CLIENT_ERROR:
            self.status_4xx += 1
        elif klass is StatusClass.SERVER_ERROR:
            self.status_5xx += 1
        self.bytes_served += response.size
        if from_beacon:
            self.beacon_bytes_served += response.size

    def mark_first(self, attribute: str, request_index: int) -> bool:
        """Set a first-occurrence index if unset; True when newly set."""
        if getattr(self, attribute) is None:
            setattr(self, attribute, request_index)
            return True
        return False
