"""The session set algebra of §3.1.

Given the per-session evidence flags of a finished experiment:

    S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)

``|S_MM| / total`` is a *lower* bound on the human fraction (every valid
keyed mouse event had a human behind it), ``|S_H| / total`` an *upper*
bound (sessions that looked like browsers minus those proven automated),
and the worst-case false-positive rate is the gap normalised by the
non-human population:

    max FPR = (upper − lower) / (1 − lower)

which in the paper evaluates to 1.9% / 77.7% = 2.4%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.detection.session import SessionState


@dataclass(frozen=True)
class SetAlgebraSummary:
    """The Table 1 census plus the derived §3.1 quantities."""

    total_sessions: int
    css_downloads: int
    js_executions: int
    mouse_movements: int
    captcha_passes: int
    hidden_link_follows: int
    ua_mismatches: int
    human_upper_count: int

    @property
    def lower_bound(self) -> float:
        """Human-fraction lower bound: |S_MM| / total."""
        return self._fraction(self.mouse_movements)

    @property
    def upper_bound(self) -> float:
        """Human-fraction upper bound: |S_H| / total."""
        return self._fraction(self.human_upper_count)

    @property
    def bound_gap(self) -> float:
        """Upper minus lower bound (the paper's 1.9%)."""
        return self.upper_bound - self.lower_bound

    @property
    def max_false_positive_rate(self) -> float:
        """Worst-case FPR: gap / (1 − lower bound) (the paper's 2.4%)."""
        denominator = 1.0 - self.lower_bound
        if denominator <= 0.0:
            return 0.0
        return self.bound_gap / denominator

    def _fraction(self, count: int) -> float:
        if self.total_sessions == 0:
            return 0.0
        return count / self.total_sessions

    def fraction(self, field_name: str) -> float:
        """Fraction of total sessions for any census field."""
        return self._fraction(getattr(self, field_name))


class SessionSets:
    """Accumulates session-evidence sets and evaluates the formula.

    Can be built incrementally (``add``) or in one shot (``from_sessions``)
    so both streaming sinks and post-hoc analysis use the same code.
    """

    def __init__(self) -> None:
        self.total = 0
        self.css = 0
        self.js = 0
        self.mouse = 0
        self.captcha = 0
        self.hidden = 0
        self.mismatch = 0
        self.human_upper = 0

    @classmethod
    def from_sessions(cls, sessions: Iterable[SessionState]) -> "SessionSets":
        """Build the sets from finished sessions."""
        sets = cls()
        for state in sessions:
            sets.add(state)
        return sets

    def add(self, state: SessionState) -> None:
        """Accumulate one finished session."""
        self.total += 1
        if state.in_css_set:
            self.css += 1
        if state.in_js_set:
            self.js += 1
        if state.in_mouse_set:
            self.mouse += 1
        if state.passed_captcha:
            self.captcha += 1
        if state.followed_hidden_link:
            self.hidden += 1
        if state.ua_mismatched:
            self.mismatch += 1
        if state.is_human_by_set_algebra:
            self.human_upper += 1

    def summary(self) -> SetAlgebraSummary:
        """Freeze the accumulated counts into a summary."""
        return SetAlgebraSummary(
            total_sessions=self.total,
            css_downloads=self.css,
            js_executions=self.js,
            mouse_movements=self.mouse,
            captcha_passes=self.captcha,
            hidden_link_follows=self.hidden,
            ua_mismatches=self.mismatch,
            human_upper_count=self.human_upper,
        )
