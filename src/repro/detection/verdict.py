"""Classification verdicts."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Label(Enum):
    """Session classification outcomes."""

    HUMAN = "human"
    ROBOT = "robot"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class Verdict:
    """A classification with its justification.

    ``definitive`` marks verdicts backed by hard evidence (a correctly
    keyed mouse event, a wrong-key fetch, a hidden-link fetch) as opposed
    to behavioural inference (CSS-but-no-JS looks like a browser).
    """

    label: Label
    reason: str
    definitive: bool = False
    at_request: int = 0

    def __str__(self) -> str:
        kind = "definitive" if self.definitive else "tentative"
        return f"{self.label.value} ({kind}: {self.reason})"
