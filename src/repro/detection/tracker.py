"""Session tracking: <IP, User-Agent> grouping with the 1-hour idle rule."""

from __future__ import annotations

from typing import Callable

from repro.detection.session import SessionKey, SessionState
from repro.http.message import Request
from repro.util.ids import IdGenerator
from repro.util.timeutil import HOUR

SessionSink = Callable[[SessionState], None]


class SessionTracker:
    """Maintains live sessions and retires idle ones.

    Completed (idle-expired or explicitly finalized) sessions are handed to
    an optional ``sink`` callback so million-session workloads don't
    accumulate in memory; they are also kept in :attr:`completed` unless
    ``keep_completed`` is False.
    """

    def __init__(
        self,
        idle_timeout: float = HOUR,
        min_requests: int = 10,
        sink: SessionSink | None = None,
        keep_completed: bool = True,
        id_prefix: str = "sess",
    ) -> None:
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if min_requests < 0:
            raise ValueError("min_requests must be non-negative")
        self._idle_timeout = idle_timeout
        self._min_requests = min_requests
        self._sink = sink
        self._keep_completed = keep_completed
        self._live: dict[SessionKey, SessionState] = {}
        self._ids = IdGenerator(id_prefix)
        self.completed: list[SessionState] = []
        self._total_started = 0

    @property
    def idle_timeout(self) -> float:
        """Seconds of inactivity after which a session ends."""
        return self._idle_timeout

    @property
    def min_requests(self) -> int:
        """Sessions at or below this request count are noise (§3: > 10)."""
        return self._min_requests

    @property
    def live_count(self) -> int:
        """Number of currently live sessions."""
        return len(self._live)

    @property
    def total_started(self) -> int:
        """Number of sessions ever started."""
        return self._total_started

    def observe(self, request: Request) -> tuple[SessionState, bool]:
        """Route a request to its session, rotating idle ones.

        Returns ``(state, started)`` where ``started`` is True when this
        request opened a new session.
        """
        key = SessionKey(request.client_ip, request.user_agent)
        state = self._live.get(key)
        started = False
        if state is not None and (
            request.timestamp - state.last_request_at > self._idle_timeout
        ):
            self._retire(state)
            state = None
        if state is None:
            state = SessionState(
                session_id=self._ids.next(),
                key=key,
                started_at=request.timestamp,
                last_request_at=request.timestamp,
            )
            self._live[key] = state
            self._total_started += 1
            started = True
        return state, started

    def get(self, client_ip: str, user_agent: str) -> SessionState | None:
        """Look up the live session for a key, if any."""
        return self._live.get(SessionKey(client_ip, user_agent))

    def expire_idle(self, now: float) -> list[SessionState]:
        """Retire every session idle for longer than the timeout."""
        expired = [
            state
            for state in self._live.values()
            if now - state.last_request_at > self._idle_timeout
        ]
        for state in expired:
            self._retire(state)
        return expired

    def finalize_all(self) -> list[SessionState]:
        """Retire every live session (end of experiment)."""
        remaining = list(self._live.values())
        for state in remaining:
            self._retire(state)
        return remaining

    def analyzable(self) -> list[SessionState]:
        """Completed sessions above the noise threshold (> min_requests)."""
        return [
            s for s in self.completed if s.request_count > self._min_requests
        ]

    def _retire(self, state: SessionState) -> None:
        self._live.pop(state.key, None)
        if self._keep_completed:
            self.completed.append(state)
        if self._sink is not None:
            self._sink(state)
