"""Human activity detection (§2.1): verify keyed mouse-event fetches.

The server-side check from step 4 of the protocol: "The server finds the
entry for the client IP, and checks if k in the URL matches. If so, it
classifies the session as human. If the k does not match ... it is
classified as a robot."  A decoy-key fetch is the signature of a robot
that scraped the beacon script for URLs.
"""

from __future__ import annotations

from repro.detection.events import DetectionEvent, EventKind
from repro.detection.session import SessionState
from repro.instrument.keys import BeaconHit, BeaconKind


class HumanActivityDetector:
    """Turns mouse-image and beacon-script fetches into evidence."""

    def observe_hit(
        self,
        state: SessionState,
        hit: BeaconHit,
        request_index: int,
        timestamp: float,
    ) -> list[DetectionEvent]:
        """Process a registry hit for this detector's probe kinds."""
        probe = hit.probe
        events: list[DetectionEvent] = []

        if probe.kind is BeaconKind.BEACON_JS:
            if state.mark_first("beacon_js_at", request_index):
                events.append(
                    DetectionEvent(
                        kind=EventKind.BEACON_JS_FETCH,
                        session_id=state.session_id,
                        request_index=request_index,
                        timestamp=timestamp,
                        detail=probe.path,
                    )
                )
            return events

        if probe.kind is not BeaconKind.MOUSE_IMAGE:
            return events

        if probe.is_real_key:
            if state.mark_first("mouse_event_at", request_index):
                events.append(
                    DetectionEvent(
                        kind=EventKind.MOUSE_EVENT_VALID,
                        session_id=state.session_id,
                        request_index=request_index,
                        timestamp=timestamp,
                        detail=f"key={probe.key[:8]}... page={probe.page_path}",
                    )
                )
        else:
            state.wrong_key_fetches += 1
            events.append(
                DetectionEvent(
                    kind=EventKind.MOUSE_EVENT_WRONG_KEY,
                    session_id=state.session_id,
                    request_index=request_index,
                    timestamp=timestamp,
                    detail=f"decoy key for page={probe.page_path}",
                )
            )
        return events
