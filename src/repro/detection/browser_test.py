"""Standard browser testing (§2.2): CSS beacons and the UA echo probe."""

from __future__ import annotations

from repro.detection.events import DetectionEvent, EventKind
from repro.detection.session import SessionState
from repro.instrument.keys import BeaconHit, BeaconKind
from repro.instrument.ua_probe import sanitize_user_agent


class BrowserTestDetector:
    """Turns CSS-beacon and UA-probe fetches into evidence.

    A UA-probe fetch proves JavaScript execution (S_JS membership); when
    the JavaScript-echoed agent string disagrees with the User-Agent
    *header* for the session, the client forged one of them — the
    "browser type mismatch" row of Table 1.
    """

    def observe_hit(
        self,
        state: SessionState,
        hit: BeaconHit,
        request_index: int,
        timestamp: float,
    ) -> list[DetectionEvent]:
        """Process a registry hit for this detector's probe kinds."""
        probe = hit.probe
        events: list[DetectionEvent] = []

        if probe.kind is BeaconKind.CSS_BEACON:
            if state.mark_first("css_beacon_at", request_index):
                events.append(
                    DetectionEvent(
                        kind=EventKind.CSS_BEACON_FETCH,
                        session_id=state.session_id,
                        request_index=request_index,
                        timestamp=timestamp,
                        detail=probe.path,
                    )
                )
            return events

        if probe.kind is not BeaconKind.UA_PROBE:
            return events

        if state.mark_first("js_executed_at", request_index):
            events.append(
                DetectionEvent(
                    kind=EventKind.JS_EXECUTED,
                    session_id=state.session_id,
                    request_index=request_index,
                    timestamp=timestamp,
                    detail="ua probe fetched",
                )
            )

        echoed = hit.echoed_user_agent or ""
        claimed = sanitize_user_agent(state.key.user_agent)
        if echoed and echoed != claimed:
            if state.mark_first("ua_mismatch_at", request_index):
                events.append(
                    DetectionEvent(
                        kind=EventKind.UA_MISMATCH,
                        session_id=state.session_id,
                        request_index=request_index,
                        timestamp=timestamp,
                        detail=f"claimed={claimed[:24]!r} echoed={echoed[:24]!r}",
                    )
                )
        return events
