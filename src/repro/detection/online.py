"""Online per-request classification and requests-to-detect accounting.

The paper's two schemes have different speed/accuracy profiles (§3.1):
"the standard browser testing is a quick method to get results, while
human activity detection will provide more accurate results provided a
reasonable amount of data".  :class:`OnlineClassifier` encodes the paper's
decision order on live sessions:

1. hard robot evidence (wrong beacon key, hidden-link fetch, UA mismatch)
   -> definitive ROBOT;
2. a correctly keyed mouse event -> definitive HUMAN;
3. JavaScript executed but still no mouse event after a grace period ->
   tentative ROBOT ("these definitely belong to robots" at session end);
4. CSS beacon fetched -> tentative HUMAN (standard-browser behaviour);
5. otherwise UNDECIDED until ``min_requests``, then tentative ROBOT (the
   set algebra labels "all other sessions" robots).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.session import SessionState
from repro.detection.verdict import Label, Verdict


@dataclass(frozen=True)
class OnlineConfig:
    """Thresholds for the online decision order.

    ``js_no_mouse_grace`` is how many requests after JavaScript execution
    we wait for a mouse event before tentatively calling the session a
    robot; the paper's offline analysis applies the same rule at session
    end with an infinite horizon.
    """

    min_requests: int = 10
    js_no_mouse_grace: int = 30

    def __post_init__(self) -> None:
        if self.min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if self.js_no_mouse_grace < 0:
            raise ValueError("js_no_mouse_grace must be >= 0")


class OnlineClassifier:
    """Stateless verdict function over live session state."""

    def __init__(self, config: OnlineConfig | None = None) -> None:
        self._config = config or OnlineConfig()

    @property
    def config(self) -> OnlineConfig:
        """The decision thresholds."""
        return self._config

    def classify(self, state: SessionState) -> Verdict:
        """Current verdict for a (possibly still live) session."""
        n = state.request_count

        if state.wrong_key_fetches > 0:
            return Verdict(
                Label.ROBOT, "fetched beacon URL with wrong key",
                definitive=True, at_request=n,
            )
        if state.followed_hidden_link:
            return Verdict(
                Label.ROBOT, "followed hidden link",
                definitive=True, at_request=n,
            )
        if state.ua_mismatched:
            return Verdict(
                Label.ROBOT, "User-Agent header contradicts JavaScript echo",
                definitive=True, at_request=n,
            )
        if state.in_mouse_set:
            return Verdict(
                Label.HUMAN, "correctly keyed mouse event",
                definitive=True, at_request=state.mouse_event_at or n,
            )
        if state.passed_captcha:
            return Verdict(
                Label.HUMAN, "passed CAPTCHA",
                definitive=True, at_request=state.captcha_passed_at or n,
            )
        if (
            state.in_js_set
            and state.js_executed_at is not None
            and n - state.js_executed_at >= self._config.js_no_mouse_grace
        ):
            return Verdict(
                Label.ROBOT, "executed JavaScript but produced no mouse event",
                at_request=n,
            )
        if state.in_css_set:
            return Verdict(
                Label.HUMAN, "downloaded beacon CSS (standard browser pattern)",
                at_request=state.css_beacon_at or n,
            )
        if n >= self._config.min_requests:
            return Verdict(
                Label.ROBOT, "no browser-like evidence after minimum requests",
                at_request=n,
            )
        return Verdict(Label.UNDECIDED, "insufficient requests", at_request=n)

    def classify_final(self, state: SessionState) -> Verdict:
        """Session-end verdict: the set algebra with hard evidence first."""
        if state.wrong_key_fetches > 0:
            return Verdict(
                Label.ROBOT, "fetched beacon URL with wrong key",
                definitive=True, at_request=state.request_count,
            )
        if state.followed_hidden_link:
            return Verdict(
                Label.ROBOT, "followed hidden link",
                definitive=True, at_request=state.request_count,
            )
        if state.ua_mismatched:
            return Verdict(
                Label.ROBOT, "User-Agent header contradicts JavaScript echo",
                definitive=True, at_request=state.request_count,
            )
        if state.in_mouse_set:
            return Verdict(
                Label.HUMAN, "correctly keyed mouse event",
                definitive=True, at_request=state.mouse_event_at or 0,
            )
        if state.is_human_by_set_algebra:
            return Verdict(
                Label.HUMAN, "in S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)",
                at_request=state.request_count,
            )
        return Verdict(
            Label.ROBOT, "outside S_H", at_request=state.request_count
        )


@dataclass(frozen=True)
class DetectionLatency:
    """Figure 2 samples for one session: first-evidence request indices."""

    session_id: str
    css_at: int | None
    beacon_js_at: int | None
    mouse_at: int | None

    @classmethod
    def from_state(cls, state: SessionState) -> "DetectionLatency":
        """Extract the latency sample from a finished session."""
        return cls(
            session_id=state.session_id,
            css_at=state.css_beacon_at,
            beacon_js_at=state.beacon_js_at,
            mouse_at=state.mouse_event_at,
        )
