"""Post-classification robot handling (§3.2).

"After we classify a session to belong to a robot, we further analyzed
its behavior (by checking CGI request rate, GET request rate, error
response codes, etc.), and blocked its traffic as soon as its behavior
deviated from predefined thresholds."

:class:`RobotPolicy` implements exactly that staging: sessions classified
as robots are *watched*; when any behavioural threshold trips, the session
is *blocked* and subsequent requests are answered with 403 by the proxy.
Rates use an exponentially decayed per-minute estimate so the policy runs
in O(1) memory per session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.detection.session import SessionState
from repro.detection.verdict import Label, Verdict
from repro.http.message import Method, Request
from repro.util.timeutil import MINUTE


class PolicyAction(Enum):
    """What the proxy should do with a request."""

    ALLOW = "allow"
    WATCH = "watch"
    BLOCK = "block"


@dataclass(frozen=True)
class PolicyConfig:
    """Behavioural thresholds for watched robot sessions (per minute)."""

    cgi_rate_limit: float = 10.0
    get_rate_limit: float = 120.0
    error_4xx_limit: int = 15
    wrong_key_limit: int = 1
    block_undecided: bool = False

    def __post_init__(self) -> None:
        if self.cgi_rate_limit <= 0 or self.get_rate_limit <= 0:
            raise ValueError("rate limits must be positive")
        if self.error_4xx_limit < 1:
            raise ValueError("error_4xx_limit must be >= 1")


@dataclass
class _WatchState:
    """Decayed per-minute rate estimates for one watched session."""

    cgi_rate: float = 0.0
    get_rate: float = 0.0
    last_update: float = 0.0
    blocked: bool = False
    block_reason: str = ""

    def bump(self, now: float, is_cgi: bool, is_get: bool) -> None:
        """Add one request to the decayed rate estimates."""
        if self.last_update:
            elapsed = max(0.0, now - self.last_update)
            decay = math.exp(-elapsed / MINUTE)
            self.cgi_rate *= decay
            self.get_rate *= decay
        self.last_update = now
        if is_cgi:
            self.cgi_rate += 1.0
        if is_get:
            self.get_rate += 1.0


@dataclass
class PolicyDecision:
    """The action for one request plus the reason when blocking."""

    action: PolicyAction
    reason: str = ""


class RobotPolicy:
    """Watches robot-classified sessions and blocks misbehaving ones."""

    def __init__(self, config: PolicyConfig | None = None) -> None:
        self._config = config or PolicyConfig()
        self._watch: dict[str, _WatchState] = {}
        self.blocked_sessions = 0
        self.blocked_requests = 0

    @property
    def config(self) -> PolicyConfig:
        """The behavioural thresholds."""
        return self._config

    def evaluate(
        self, state: SessionState, verdict: Verdict, request: Request
    ) -> PolicyDecision:
        """Decide what to do with ``request`` given the session verdict."""
        cfg = self._config
        if verdict.label is Label.HUMAN:
            self._watch.pop(state.session_id, None)
            return PolicyDecision(PolicyAction.ALLOW)
        if verdict.label is Label.UNDECIDED and not cfg.block_undecided:
            return PolicyDecision(PolicyAction.ALLOW)

        watch = self._watch.get(state.session_id)
        if watch is None:
            watch = _WatchState()
            self._watch[state.session_id] = watch
        if watch.blocked:
            self.blocked_requests += 1
            return PolicyDecision(PolicyAction.BLOCK, watch.block_reason)

        watch.bump(
            request.timestamp,
            is_cgi=request.path_kind.value == "cgi",
            is_get=request.method is Method.GET,
        )

        reason = self._threshold_tripped(state, watch)
        if reason is not None:
            watch.blocked = True
            watch.block_reason = reason
            self.blocked_sessions += 1
            self.blocked_requests += 1
            return PolicyDecision(PolicyAction.BLOCK, reason)
        return PolicyDecision(PolicyAction.WATCH)

    def is_blocked(self, session_id: str) -> bool:
        """True when a session has been blocked."""
        watch = self._watch.get(session_id)
        return watch is not None and watch.blocked

    def forget(self, session_id: str) -> None:
        """Drop watch state for a finished session."""
        self._watch.pop(session_id, None)

    def _threshold_tripped(
        self, state: SessionState, watch: _WatchState
    ) -> str | None:
        cfg = self._config
        if state.wrong_key_fetches >= cfg.wrong_key_limit:
            return (
                f"wrong-key beacon fetches >= {cfg.wrong_key_limit}"
            )
        if watch.cgi_rate > cfg.cgi_rate_limit:
            return (
                f"CGI request rate {watch.cgi_rate:.1f}/min exceeds "
                f"{cfg.cgi_rate_limit:.0f}/min"
            )
        if watch.get_rate > cfg.get_rate_limit:
            return (
                f"GET request rate {watch.get_rate:.1f}/min exceeds "
                f"{cfg.get_rate_limit:.0f}/min"
            )
        if state.status_4xx >= cfg.error_4xx_limit:
            return f"4xx responses >= {cfg.error_4xx_limit}"
        return None
