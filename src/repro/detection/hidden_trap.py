"""Hidden-link trap detection (§2.2).

Fetching the trap *page* is robot evidence — no human can see the link.
Fetching the transparent trap *image* is ordinary rendering behaviour
(browsers fetch every <img>), so it generates no evidence.
"""

from __future__ import annotations

from repro.detection.events import DetectionEvent, EventKind
from repro.detection.session import SessionState
from repro.instrument.keys import BeaconHit, BeaconKind


class HiddenLinkDetector:
    """Turns trap-page fetches into robot evidence."""

    def observe_hit(
        self,
        state: SessionState,
        hit: BeaconHit,
        request_index: int,
        timestamp: float,
    ) -> list[DetectionEvent]:
        """Process a registry hit for this detector's probe kinds."""
        probe = hit.probe
        if probe.kind is not BeaconKind.TRAP_PAGE:
            return []
        if not state.mark_first("hidden_link_at", request_index):
            return []
        return [
            DetectionEvent(
                kind=EventKind.HIDDEN_LINK_FOLLOWED,
                session_id=state.session_id,
                request_index=request_index,
                timestamp=timestamp,
                detail=probe.path,
            )
        ]
