"""Sharded detection: hash-partitioned session state behind one facade.

A single :class:`~repro.detection.service.DetectionService` keys every
live session in one dictionary — correct, but a single lock domain once
the pipeline moves toward concurrent or multiprocess execution, and a
single cache-unfriendly blob at CoDeeN scale (~930k sessions/week).
:class:`ShardedDetectionService` splits the session space instead: every
client IP is assigned to one of ``n_shards`` independent shards by the
stable :func:`repro.state.partition.partition_index` hash (all of an
IP's sessions, whatever their User-Agent, share a shard), and each
shard owns a full :class:`DetectionService` — its own
:class:`~repro.detection.tracker.SessionTracker`, detectors, classifier
and policy — plus its own :class:`InstrumentationRegistry` partition of
the probe table, so a shard is a self-contained unit of state that can
run as its own ingress lane.

Determinism is the design constraint: the shard hash depends only on the
session key, every shard processes its own requests in arrival order,
and all merged reductions (:meth:`finalize`, :meth:`session_sets`,
:meth:`detection_latencies`, the tracker view's ``analyzable``) are
sorted by ``(started_at, client_ip, user_agent)`` — so shard counts
1, 2 and 8 produce identical censuses, set-algebra summaries and
verdicts for the same workload, which the test suite enforces.

``max_workers`` opts into a :mod:`concurrent.futures` thread pool for
the shard-parallel paths (:meth:`handle_batch`, housekeeping sweeps,
finalization).  Under CPython's GIL this buys structure more than speed,
but it is the seam along which a process pool or free-threaded build
slots in without touching callers.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.detection.events import DetectionEvent
from repro.detection.online import DetectionLatency, OnlineClassifier, OnlineConfig
from repro.detection.policy import PolicyConfig
from repro.detection.service import DetectionService, RequestOutcome
from repro.detection.session import SessionState
from repro.detection.set_algebra import SessionSets
from repro.http.message import Request, Response
from repro.instrument.keys import InstrumentationRegistry
from repro.obs.spans import NULL_SPAN
from repro.state.partition import partition_index
from repro.state.stores import PartitionedRegistry
from repro.util.timeutil import HOUR

_T = TypeVar("_T")
_R = TypeVar("_R")


def shard_index(client_ip: str, n_shards: int) -> int:
    """Stable shard assignment for a client IP.

    Shards are keyed by client IP alone (not the full ``<IP, UA>``
    session key): the probe registry, rate-limit buckets and proxy
    cache are all partitioned per IP, so a shard can only be a
    self-contained lane of execution if *every* session of an IP —
    whatever its User-Agent — lands on the shard that owns that IP's
    state partition.  This is the same hash
    :func:`repro.state.partition.partition_index` the partitioned
    stores and the ingress lane router use; ``hash()`` is salted per
    process and cannot be used here.
    """
    return partition_index(client_ip, n_shards)


def _session_order(state: SessionState) -> tuple[float, str, str]:
    """Deterministic merge order, independent of shard count."""
    return (state.started_at, state.key.client_ip, state.key.user_agent)


def merge_sessions(
    groups: Iterable[list[SessionState]],
) -> list[SessionState]:
    """Deterministically merge per-shard session lists."""
    merged: list[SessionState] = []
    for group in groups:
        merged.extend(group)
    merged.sort(key=_session_order)
    return merged


class ShardedTrackerView:
    """The :class:`SessionTracker` surface over all shards.

    Callers that talk to ``service.tracker`` — the proxy node's
    housekeeping, the workload engine's ground-truth annotation, the
    network's finalization — work unchanged against this view: lookups
    route to the owning shard, sweeps fan out to every shard, and list
    reductions are deterministically merged.
    """

    def __init__(self, service: "ShardedDetectionService") -> None:
        self._service = service

    @property
    def _trackers(self):
        return [shard.tracker for shard in self._service.shards]

    @property
    def idle_timeout(self) -> float:
        """Seconds of inactivity after which a session ends."""
        return self._trackers[0].idle_timeout

    @property
    def min_requests(self) -> int:
        """The analyzability noise threshold (§3: > 10 requests)."""
        return self._trackers[0].min_requests

    @property
    def live_count(self) -> int:
        """Live sessions across all shards."""
        return sum(tracker.live_count for tracker in self._trackers)

    @property
    def total_started(self) -> int:
        """Sessions ever started across all shards."""
        return sum(tracker.total_started for tracker in self._trackers)

    @property
    def completed(self) -> list[SessionState]:
        """All completed sessions, deterministically merged."""
        return merge_sessions(
            tracker.completed for tracker in self._trackers
        )

    def get(self, client_ip: str, user_agent: str) -> SessionState | None:
        """Look up the live session for a key on its owning shard."""
        return self._service.shard_for(client_ip, user_agent).tracker.get(
            client_ip, user_agent
        )

    def expire_idle(self, now: float) -> list[SessionState]:
        """Retire idle sessions on every shard."""
        return merge_sessions(
            self._service.map_shards(
                lambda shard: shard.tracker.expire_idle(now)
            )
        )

    def finalize_all(self) -> list[SessionState]:
        """Retire every live session on every shard."""
        return merge_sessions(
            self._service.map_shards(
                lambda shard: shard.tracker.finalize_all()
            )
        )

    def analyzable(self) -> list[SessionState]:
        """Completed above-noise sessions, deterministically merged."""
        return merge_sessions(
            tracker.analyzable() for tracker in self._trackers
        )


class ShardedDetectionService:
    """N independent detection shards behind the DetectionService API.

    Drop-in for :class:`DetectionService` wherever a proxy node hosts
    one: requests route to their key's shard, batch entry points process
    per-shard runs (optionally on an executor), and every reduction is
    merged deterministically.
    """

    def __init__(
        self,
        registry: InstrumentationRegistry | PartitionedRegistry,
        n_shards: int = 1,
        idle_timeout: float = HOUR,
        min_requests: int = 10,
        online_config: OnlineConfig | None = None,
        policy_config: PolicyConfig | None = None,
        enforce_policy: bool = True,
        max_workers: int | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 when given")
        # The probe table is re-partitioned to one registry partition
        # per shard, keyed by the same IP hash that routes requests to
        # shards — shard i owns exactly the probe state its requests
        # can touch, so a shard (plus its partitions) is a complete,
        # independently executable lane of state.  Existing probes and
        # listeners migrate into the new layout.
        self._registry = PartitionedRegistry.migrate(registry, n_shards)
        # Distinct id prefixes keep session ids unique network-wide
        # without any cross-shard coordination.
        self.shards: list[DetectionService] = [
            DetectionService(
                self._registry.partition(index),
                idle_timeout=idle_timeout,
                min_requests=min_requests,
                online_config=online_config,
                policy_config=policy_config,
                enforce_policy=enforce_policy,
                session_id_prefix=f"s{index:02d}",
            )
            for index in range(n_shards)
        ]
        self.tracker = ShardedTrackerView(self)
        self._max_workers = max_workers
        self._executor: Executor | None = None
        self._metric_seconds: list | None = None
        self._metric_requests: list | None = None
        self._tracer = None

    # -- topology -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """How many shards the session space is split across."""
        return len(self.shards)

    @property
    def max_workers(self) -> int | None:
        """Executor width for shard-parallel paths (None = sequential)."""
        return self._max_workers

    @property
    def registry(self) -> PartitionedRegistry:
        """The IP-partitioned probe table (one partition per shard)."""
        return self._registry

    @property
    def classifier(self) -> OnlineClassifier:
        """The (stateless) online classifier, identical on every shard."""
        return self.shards[0].classifier

    @property
    def enforce_policy(self) -> bool:
        """Whether the robot policy is consulted per request."""
        return self.shards[0].enforce_policy

    def shard_index_for(
        self, client_ip: str, user_agent: str = ""
    ) -> int:
        """Which shard owns a client IP (the UA no longer matters)."""
        return shard_index(client_ip, self.n_shards)

    def shard_for(
        self, client_ip: str, user_agent: str = ""
    ) -> DetectionService:
        """The shard service owning a client IP."""
        return self.shards[self.shard_index_for(client_ip)]

    # -- metrics ------------------------------------------------------------

    def attach_metrics(self, registry, node_id: str) -> None:
        """Wire per-shard scoring timers and request counters.

        Per-shard wall histograms (``repro_detection_seconds``) plus
        deterministic per-shard request counters
        (``repro_detection_requests_total``).  Instruments are shard-
        private, so the shard-parallel paths never contend on one.
        """
        from repro.obs.registry import WALL_SECONDS_BUCKETS

        self._metric_seconds = [
            registry.histogram(
                "repro_detection_seconds",
                WALL_SECONDS_BUCKETS,
                {"node": node_id, "shard": f"{index:02d}"},
                wall=True,
            )
            for index in range(self.n_shards)
        ]
        self._metric_requests = [
            registry.counter(
                "repro_detection_requests_total",
                {"node": node_id, "shard": f"{index:02d}"},
            )
            for index in range(self.n_shards)
        ]

    def attach_tracer(self, tracer) -> None:
        """Emit a ``detection`` span per handled request into ``tracer``.

        For direct drivers of the sharded service (tests, benchmarks,
        batched ingestion).  A :class:`~repro.proxy.node.NodeShard`
        hosting per-shard plain services wraps detection itself, so the
        two never double-report.  Unsafe with a shard-parallel executor
        — tracers are single-lane; ``attach_metrics`` stays the
        concurrent-path instrument.
        """
        self._tracer = tracer

    def _handle_on_shard(self, index: int, request: Request) -> RequestOutcome:
        if self._tracer is not None:
            span = self._tracer.span("detection", request.timestamp)
        else:
            span = NULL_SPAN
        with span:
            if self._metric_seconds is None:
                return self.shards[index].handle_request(request)
            started = time.perf_counter()
            outcome = self.shards[index].handle_request(request)
            self._metric_seconds[index].observe(
                time.perf_counter() - started
            )
            assert self._metric_requests is not None
            self._metric_requests[index].inc()
            return outcome

    # -- event log ----------------------------------------------------------

    @property
    def keep_event_log(self) -> bool:
        """Whether shards retain their detection event logs."""
        return self.shards[0].keep_event_log

    @keep_event_log.setter
    def keep_event_log(self, value: bool) -> None:
        for shard in self.shards:
            shard.keep_event_log = value

    @property
    def event_log(self) -> list[DetectionEvent]:
        """All shards' events merged into one time-ordered log."""
        events = [
            event for shard in self.shards for event in shard.event_log
        ]
        events.sort(
            key=lambda e: (e.timestamp, e.session_id, e.request_index)
        )
        return events

    # -- request path -------------------------------------------------------

    def handle_request(self, request: Request) -> RequestOutcome:
        """Run the pipeline for one request on its owning shard."""
        return self._handle_on_shard(
            self.shard_index_for(request.client_ip, request.user_agent),
            request,
        )

    def handle_batch(
        self, requests: Sequence[Request]
    ) -> list[RequestOutcome]:
        """Process a request batch shard-parallel, results in input order.

        Requests are partitioned by owning shard; each shard consumes its
        sub-sequence in the original arrival order, so per-session state
        evolves exactly as under one-at-a-time handling.  With an
        executor configured, shards run concurrently.  This is the batch
        entry point for replay-scale ingestion; note that
        :class:`~repro.trace.replay.TraceReplayEngine` itself still
        feeds the network one request at a time (batched ingestion is a
        ROADMAP item), so today's callers are direct users of this
        service, tests and benchmarks.
        """
        requests = list(requests)
        groups: dict[int, list[int]] = {}
        for position, request in enumerate(requests):
            shard = self.shard_index_for(
                request.client_ip, request.user_agent
            )
            groups.setdefault(shard, []).append(position)

        def run_shard(
            item: tuple[int, list[int]],
        ) -> list[tuple[int, RequestOutcome]]:
            shard, positions = item
            return [
                (position, self._handle_on_shard(shard, requests[position]))
                for position in positions
            ]

        outcomes: list[RequestOutcome | None] = [None] * len(requests)
        for completed in self._map(run_shard, sorted(groups.items())):
            for position, outcome in completed:
                outcomes[position] = outcome
        return [outcome for outcome in outcomes if outcome is not None]

    def note_response(
        self, outcome: RequestOutcome, response: Response
    ) -> None:
        """Record the response for the request handled in ``outcome``."""
        outcome.state.note_response(
            response, from_beacon=outcome.hit is not None
        )

    def note_captcha(
        self, state: SessionState, passed: bool, timestamp: float
    ) -> DetectionEvent:
        """Record a CAPTCHA result on the session's owning shard."""
        return self.shard_for(
            state.key.client_ip, state.key.user_agent
        ).note_captcha(state, passed, timestamp)

    # -- end-of-experiment reductions ---------------------------------------

    def finalize(self) -> list[SessionState]:
        """Finalize every shard; merged analyzable sessions."""
        return merge_sessions(
            self.map_shards(lambda shard: shard.finalize())
        )

    def session_sets(self) -> SessionSets:
        """Set-algebra census over all shards' analyzable sessions."""
        return SessionSets.from_sessions(self.tracker.analyzable())

    def detection_latencies(self) -> list[DetectionLatency]:
        """Figure 2 samples over all shards' analyzable sessions."""
        return [
            DetectionLatency.from_state(state)
            for state in self.tracker.analyzable()
        ]

    # -- executor plumbing --------------------------------------------------

    def map_shards(
        self, fn: Callable[[DetectionService], _R]
    ) -> list[_R]:
        """Apply ``fn`` to every shard (concurrently when configured)."""
        return self._map(fn, self.shards)

    def _map(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        if self._max_workers is None or len(items) <= 1:
            return [fn(item) for item in items]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self._max_workers, self.n_shards),
                thread_name_prefix="detection-shard",
            )
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        """Shut down the executor, if one was ever started."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedDetectionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Shard state is picklable; a live thread pool is not.

        The executor is dropped on serialization and lazily recreated
        on first use, so sharded services travel into ingress worker
        processes (the process lane executor) unchanged.
        """
        state = self.__dict__.copy()
        state["_executor"] = None
        return state


def shard_service(
    service: "DetectionService | ShardedDetectionService",
    n_shards: int,
    max_workers: int | None = None,
) -> ShardedDetectionService:
    """Re-partition an (untouched) service's config across ``n_shards``.

    The instrumentation registry's contents migrate into the new
    layout — probe registrations and listeners survive — but session
    state must be empty: re-hashing live sessions between shard
    layouts is not supported.
    """
    if service.tracker.total_started > 0:
        raise RuntimeError(
            "cannot re-shard a detection service that already tracked "
            "sessions"
        )
    policy = (
        service.shards[0].policy
        if isinstance(service, ShardedDetectionService)
        else service.policy
    )
    return ShardedDetectionService(
        service.registry,
        n_shards=n_shards,
        idle_timeout=service.tracker.idle_timeout,
        min_requests=service.tracker.min_requests,
        online_config=service.classifier.config,
        policy_config=policy.config,
        enforce_policy=service.enforce_policy,
        max_workers=max_workers,
    )
