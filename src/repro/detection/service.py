"""DetectionService: the full per-request pipeline a proxy node hosts.

Order of operations for each incoming request (mirrors the CoDeeN
deployment):

1. route the request to its <IP, User-Agent> session (idle rotation);
2. match it against the instrumentation registry — beacon fetches are
   answered by the proxy itself and converted into detection events;
3. update the session's verdict;
4. ask the robot policy whether to block.

The service does not forward to the origin or instrument pages — that is
the proxy node's job — it owns *state and judgement*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.browser_test import BrowserTestDetector
from repro.detection.events import DetectionEvent, EventKind
from repro.detection.hidden_trap import HiddenLinkDetector
from repro.detection.human_activity import HumanActivityDetector
from repro.detection.online import DetectionLatency, OnlineClassifier, OnlineConfig
from repro.detection.policy import PolicyAction, PolicyConfig, PolicyDecision, RobotPolicy
from repro.detection.session import SessionState
from repro.detection.set_algebra import SessionSets
from repro.detection.tracker import SessionTracker
from repro.detection.verdict import Verdict
from repro.http.message import Request, Response
from repro.instrument.keys import BeaconHit, InstrumentationRegistry
from repro.util.timeutil import HOUR


@dataclass
class RequestOutcome:
    """Everything the pipeline concluded about one request."""

    state: SessionState
    session_started: bool
    request_index: int
    hit: BeaconHit | None
    events: list[DetectionEvent] = field(default_factory=list)
    verdict: Verdict | None = None
    decision: PolicyDecision | None = None

    @property
    def blocked(self) -> bool:
        """True when the policy blocked this request."""
        return (
            self.decision is not None
            and self.decision.action is PolicyAction.BLOCK
        )


class DetectionService:
    """Sessions + detectors + verdicts + policy, as one pipeline."""

    def __init__(
        self,
        registry: InstrumentationRegistry,
        idle_timeout: float = HOUR,
        min_requests: int = 10,
        online_config: OnlineConfig | None = None,
        policy_config: PolicyConfig | None = None,
        enforce_policy: bool = True,
        session_id_prefix: str = "sess",
    ) -> None:
        self._registry = registry
        self.tracker = SessionTracker(
            idle_timeout=idle_timeout,
            min_requests=min_requests,
            id_prefix=session_id_prefix,
        )
        self._human_activity = HumanActivityDetector()
        self._browser_test = BrowserTestDetector()
        self._hidden_trap = HiddenLinkDetector()
        self.classifier = OnlineClassifier(online_config)
        self.policy = RobotPolicy(policy_config)
        self._enforce_policy = enforce_policy
        self.event_log: list[DetectionEvent] = []
        self.keep_event_log = True

    @property
    def registry(self) -> InstrumentationRegistry:
        """The shared probe table."""
        return self._registry

    @property
    def enforce_policy(self) -> bool:
        """Whether the robot policy is consulted per request."""
        return self._enforce_policy

    def handle_request(self, request: Request) -> RequestOutcome:
        """Run the pipeline for one request (response not yet known)."""
        state, started = self.tracker.observe(request)
        index = state.note_request(request)

        hit = self._registry.match(request)
        events: list[DetectionEvent] = []
        if started:
            events.append(
                DetectionEvent(
                    kind=EventKind.SESSION_STARTED,
                    session_id=state.session_id,
                    request_index=index,
                    timestamp=request.timestamp,
                    detail=str(state.key),
                )
            )
        if hit is not None:
            for detector in (
                self._human_activity,
                self._browser_test,
                self._hidden_trap,
            ):
                events.extend(
                    detector.observe_hit(state, hit, index, request.timestamp)
                )

        verdict = self.classifier.classify(state)
        decision = None
        if self._enforce_policy:
            decision = self.policy.evaluate(state, verdict, request)

        if self.keep_event_log:
            self.event_log.extend(events)
        return RequestOutcome(
            state=state,
            session_started=started,
            request_index=index,
            hit=hit,
            events=events,
            verdict=verdict,
            decision=decision,
        )

    def note_response(self, outcome: RequestOutcome, response: Response) -> None:
        """Record the response for the request handled in ``outcome``."""
        outcome.state.note_response(response, from_beacon=outcome.hit is not None)

    def note_captcha(
        self, state: SessionState, passed: bool, timestamp: float
    ) -> DetectionEvent:
        """Record a CAPTCHA result against a session."""
        kind = EventKind.CAPTCHA_PASSED if passed else EventKind.CAPTCHA_FAILED
        if passed:
            state.mark_first("captcha_passed_at", state.request_count)
        event = DetectionEvent(
            kind=kind,
            session_id=state.session_id,
            request_index=state.request_count,
            timestamp=timestamp,
        )
        if self.keep_event_log:
            self.event_log.append(event)
        return event

    # -- end-of-experiment reductions --------------------------------------

    def finalize(self) -> list[SessionState]:
        """Retire all live sessions and return every analyzable session."""
        self.tracker.finalize_all()
        for state in self.tracker.completed:
            self.policy.forget(state.session_id)
        return self.tracker.analyzable()

    def session_sets(self) -> SessionSets:
        """Set-algebra census over analyzable completed sessions."""
        return SessionSets.from_sessions(self.tracker.analyzable())

    def detection_latencies(self) -> list[DetectionLatency]:
        """Figure 2 samples over analyzable completed sessions."""
        return [
            DetectionLatency.from_state(s) for s in self.tracker.analyzable()
        ]
