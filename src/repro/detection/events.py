"""Detection events: what the instrumentation observed about a session."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class EventKind(Enum):
    """Kinds of evidence the detectors can emit."""

    SESSION_STARTED = "session_started"
    SESSION_EXPIRED = "session_expired"
    CSS_BEACON_FETCH = "css_beacon_fetch"
    BEACON_JS_FETCH = "beacon_js_fetch"
    JS_EXECUTED = "js_executed"
    MOUSE_EVENT_VALID = "mouse_event_valid"
    MOUSE_EVENT_WRONG_KEY = "mouse_event_wrong_key"
    HIDDEN_LINK_FOLLOWED = "hidden_link_followed"
    UA_MISMATCH = "ua_mismatch"
    CAPTCHA_PASSED = "captcha_passed"
    CAPTCHA_FAILED = "captcha_failed"

    @property
    def is_human_evidence(self) -> bool:
        """Evidence that a human is driving the client."""
        return self in (EventKind.MOUSE_EVENT_VALID, EventKind.CAPTCHA_PASSED)

    @property
    def is_robot_evidence(self) -> bool:
        """Evidence that the client is automated."""
        return self in (
            EventKind.MOUSE_EVENT_WRONG_KEY,
            EventKind.HIDDEN_LINK_FOLLOWED,
            EventKind.UA_MISMATCH,
        )


@dataclass(frozen=True)
class DetectionEvent:
    """One piece of evidence, tied to the session and request that caused it.

    ``request_index`` is 1-based within the session — Figure 2's
    "number of requests required to detect" is exactly this value for the
    first event of each kind.
    """

    kind: EventKind
    session_id: str
    request_index: int
    timestamp: float
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"[{self.timestamp:10.1f}] {self.session_id} "
            f"req#{self.request_index}: {self.kind.value}{extra}"
        )
