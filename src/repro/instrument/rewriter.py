"""Dynamic HTML rewriting: apply all four probes to a served page.

This is the server-side half of §2: for each HTML response to each client,
:class:`PageInstrumenter` generates fresh probes, injects them into the
document, registers them in the per-IP table, and marks the page
uncacheable ("the server marks it uncacheable by adding the response
header line Cache-Control: no-cache, no-store").

Injection has two code paths: well-formed pages (a ``</head>``, a
``<body ...>`` and a ``</body>`` — everything the origin emits) are
rewritten with direct string splices, which keeps per-page cost in the
tens of microseconds; anything else goes through the HTML parser, which
synthesises the missing structure first.  Both paths produce the same
probes.

:func:`beacon_response` is the serving half: when a later request matches
a registered probe, the proxy answers it directly (empty CSS, any JPEG,
the generated script, ...) without involving the origin.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.html.document import Element, Text
from repro.html.parser import parse_html
from repro.html.serializer import serialize
from repro.http.headers import Headers
from repro.http.message import Response
from repro.http.uri import Url
from repro.instrument.css_beacon import make_css_beacon
from repro.instrument.hidden_link import make_hidden_link
from repro.instrument.js_beacon import BeaconScript, build_beacon_script
from repro.instrument.keys import (
    BeaconHit,
    BeaconKind,
    InstrumentationRegistry,
    RegisteredProbe,
)
from repro.instrument.obfuscator import obfuscate_beacon
from repro.instrument.ua_probe import make_ua_probe_script
from repro.util.ids import random_numeric_key
from repro.util.rng import RngStream

# Minimal valid-enough payloads for probe responses.
_FAKE_JPEG = b"\xff\xd8\xff\xe0\x00\x10JFIF\x00\x01" + b"\x00" * 64 + b"\xff\xd9"
_TRANSPARENT_GIF = (
    b"GIF89a\x01\x00\x01\x00\x80\x00\x00\x00\x00\x00\x00\x00\x00"
    b"!\xf9\x04\x01\x00\x00\x00\x00,\x00\x00\x00\x00\x01\x00\x01\x00\x00"
    b"\x02\x02D\x01\x00;"
)
_TRAP_PAGE_BODY = (
    b"<html><head><title>index</title></head>"
    b"<body><p>nothing to see</p></body></html>"
)

_BODY_TAG_RE = re.compile(r"<body([^>]*)>", re.IGNORECASE)


@dataclass(frozen=True)
class InstrumentConfig:
    """Which probes to apply and how (§2 parameters).

    ``decoys`` is the paper's ``m``; ``key_bits`` the key space (2^128).
    """

    decoys: int = 4
    key_bits: int = 128
    obfuscate: bool = True
    junk_statements: int = 6
    mouse_beacon: bool = True
    css_beacon: bool = True
    hidden_link: bool = True
    ua_probe: bool = True

    def __post_init__(self) -> None:
        if self.decoys < 0:
            raise ValueError("decoys must be non-negative")


@dataclass
class InstrumentedPage:
    """The rewritten page plus everything that was registered for it."""

    html: str
    original_html: str
    probes: list[RegisteredProbe] = field(default_factory=list)
    beacon_script: BeaconScript | None = None

    @property
    def added_bytes(self) -> int:
        """HTML growth caused by instrumentation (markup only)."""
        return len(self.html.encode("utf-8")) - len(
            self.original_html.encode("utf-8")
        )


@dataclass
class _ProbePlan:
    """Everything generated for one page before injection."""

    head_fragment: str = ""
    body_attribute: str | None = None  # onmousemove handler expression
    tail_fragment: str = ""


class PageInstrumenter:
    """Rewrites HTML pages and maintains the probe registry."""

    def __init__(
        self,
        registry: InstrumentationRegistry,
        rng: RngStream,
        config: InstrumentConfig | None = None,
    ) -> None:
        self._registry = registry
        self._rng = rng
        self._config = config or InstrumentConfig()
        self._pages_instrumented = 0
        self._ip_seq: dict[str, int] = {}

    @property
    def config(self) -> InstrumentConfig:
        """The instrumentation configuration."""
        return self._config

    @property
    def registry(self) -> InstrumentationRegistry:
        """The shared per-IP probe table."""
        return self._registry

    @property
    def pages_instrumented(self) -> int:
        """How many pages this instrumenter has rewritten."""
        return self._pages_instrumented

    def instrument(
        self,
        html: str,
        page_url: Url,
        client_ip: str,
        now: float,
    ) -> InstrumentedPage:
        """Rewrite one page for one client and register its probes."""
        result = InstrumentedPage(html=html, original_html=html)
        plan = self._build_plan(result, page_url, client_ip, now)
        result.html = self._inject(html, plan)
        self._pages_instrumented += 1
        return result

    # -- probe generation -----------------------------------------------------

    def _build_plan(
        self,
        result: InstrumentedPage,
        page_url: Url,
        client_ip: str,
        now: float,
    ) -> _ProbePlan:
        cfg = self._config
        # Probe randomness is derived per request, not drawn from a
        # shared sequential stream: the split is keyed on (client,
        # per-client sequence number), so the generated keys depend only
        # on how many pages *this* client had instrumented before —
        # never on how many requests other clients interleaved.  A
        # client's event subsequence is identical under every shard
        # count, lane layout and executor (the admission contract pins
        # per-client order, and an IP always hashes to one shard), so
        # instrumentation is invariant to all of them while staying
        # fresh per call even for identical (page, timestamp) repeats.
        seq = self._ip_seq.get(client_ip, 0)
        self._ip_seq[client_ip] = seq + 1
        rng = self._rng.split(f"page|{client_ip}|{seq}")
        host = page_url.host
        plan = _ProbePlan()
        head_parts: list[str] = []
        tail_parts: list[str] = []

        if cfg.css_beacon:
            beacon = make_css_beacon(rng)
            head_parts.append(
                '<link rel="stylesheet" type="text/css" '
                f'href="http://{host}{beacon.path}">'
            )
            self._register(
                result, BeaconKind.CSS_BEACON, client_ip, host,
                beacon.path, page_url.path, now,
            )

        if cfg.mouse_beacon:
            script = build_beacon_script(
                rng, host, decoys=cfg.decoys, key_bits=cfg.key_bits
            )
            handler_expression = script.handler_expression
            source = script.source
            if cfg.obfuscate:
                source, handler_expression = obfuscate_beacon(
                    source, handler_expression, rng, cfg.junk_statements
                )
            # The script file is named like a sibling of the page, as in
            # the paper's "./index_0729395150.js".
            stem = page_url.filename.rsplit(".", 1)[0] or "index"
            js_name = f"{stem}_{random_numeric_key(rng, 10)}.js"
            js_url = page_url.sibling(js_name)
            head_parts.append(
                f'<script language="javascript" src="./{js_name}"></script>'
            )
            plan.body_attribute = handler_expression

            self._register(
                result, BeaconKind.BEACON_JS, client_ip, host,
                js_url.path, page_url.path, now,
                payload=source.encode("utf-8"),
            )
            self._register(
                result, BeaconKind.MOUSE_IMAGE, client_ip, host,
                script.real_image_path, page_url.path, now,
                key=script.real_key, is_real_key=True,
            )
            for key, path in zip(script.decoy_keys, script.decoy_image_paths):
                self._register(
                    result, BeaconKind.MOUSE_IMAGE, client_ip, host,
                    path, page_url.path, now, key=key, is_real_key=False,
                )
            result.beacon_script = BeaconScript(
                source=source,
                handler_function=script.handler_function,
                handler_expression=handler_expression,
                real_key=script.real_key,
                real_image_path=script.real_image_path,
                decoy_keys=script.decoy_keys,
                decoy_image_paths=script.decoy_image_paths,
            )

        if cfg.ua_probe:
            probe = make_ua_probe_script(rng)
            tail_parts.append(f"<script>{probe.script_source(host)}</script>")
            self._register(
                result, BeaconKind.UA_PROBE, client_ip, host,
                probe.prefix_path, page_url.path, now,
            )

        if cfg.hidden_link:
            trap = make_hidden_link(rng)
            tail_parts.append(
                f'<a href="http://{host}{trap.page_path}">'
                f'<img src="http://{host}{trap.image_path}" width="1" '
                'height="1" border="0" alt=""></a>'
            )
            self._register(
                result, BeaconKind.TRAP_PAGE, client_ip, host,
                trap.page_path, page_url.path, now,
            )
            self._register(
                result, BeaconKind.TRAP_IMAGE, client_ip, host,
                trap.image_path, page_url.path, now,
            )

        plan.head_fragment = "".join(head_parts)
        plan.tail_fragment = "".join(tail_parts)
        return plan

    # -- injection --------------------------------------------------------------

    def _inject(self, html: str, plan: _ProbePlan) -> str:
        if (
            "</head>" in html
            and "</body>" in html
            and _BODY_TAG_RE.search(html) is not None
        ):
            return self._inject_fast(html, plan)
        return self._inject_tree(html, plan)

    @staticmethod
    def _inject_fast(html: str, plan: _ProbePlan) -> str:
        """String-splice injection for well-formed pages."""
        if plan.head_fragment:
            html = html.replace(
                "</head>", plan.head_fragment + "</head>", 1
            )
        if plan.body_attribute is not None:
            html = _BODY_TAG_RE.sub(
                lambda m: (
                    f'<body{m.group(1)} '
                    f'onmousemove="{plan.body_attribute}">'
                ),
                html,
                count=1,
            )
        if plan.tail_fragment:
            html = html.replace(
                "</body>", plan.tail_fragment + "</body>", 1
            )
        return html

    @staticmethod
    def _inject_tree(html: str, plan: _ProbePlan) -> str:
        """Parser-based injection for fragments and malformed pages."""
        root = parse_html(html)
        head = root.find("head")
        body = root.find("body")
        if head is None or body is None:  # parser guarantees both
            raise AssertionError("parse_html must synthesise head and body")
        if plan.head_fragment:
            # Fragments parse into a head/body split; collect both halves.
            fragment = parse_html(plan.head_fragment)
            for node in fragment.find("head").children:
                head.append(node)
            for node in fragment.find("body").children:
                head.append(node)
        if plan.body_attribute is not None:
            body.set("onmousemove", plan.body_attribute)
        if plan.tail_fragment:
            fragment = parse_html(plan.tail_fragment)
            for node in fragment.find("head").children:
                body.append(node)
            for node in fragment.find("body").children:
                body.append(node)
        return serialize(root)

    def _register(
        self,
        result: InstrumentedPage,
        kind: BeaconKind,
        client_ip: str,
        host: str,
        path: str,
        page_path: str,
        now: float,
        key: str | None = None,
        is_real_key: bool = False,
        payload: bytes = b"",
    ) -> None:
        probe = RegisteredProbe(
            kind=kind,
            client_ip=client_ip,
            host=host,
            path=path,
            page_path=page_path,
            issued_at=now,
            key=key,
            is_real_key=is_real_key,
            payload=payload,
        )
        self._registry.register(probe)
        result.probes.append(probe)


def mark_uncacheable(headers: Headers) -> None:
    """Apply the paper's anti-caching header to an instrumented response."""
    headers.set("Cache-Control", "no-cache, no-store")


def beacon_response(hit: BeaconHit) -> Response:
    """Serve a matched probe request directly from the proxy."""
    kind = hit.probe.kind
    if kind is BeaconKind.BEACON_JS:
        headers = Headers([("Content-Type", "application/javascript")])
        mark_uncacheable(headers)
        return Response(status=200, headers=headers, body=hit.probe.payload)
    if kind is BeaconKind.MOUSE_IMAGE:
        # "The server can respond with any JPEG image because the picture
        # is not used."
        headers = Headers([("Content-Type", "image/jpeg")])
        mark_uncacheable(headers)
        return Response(status=200, headers=headers, body=_FAKE_JPEG)
    if kind is BeaconKind.CSS_BEACON or kind is BeaconKind.UA_PROBE:
        headers = Headers([("Content-Type", "text/css")])
        mark_uncacheable(headers)
        return Response(status=200, headers=headers, body=b"")
    if kind is BeaconKind.TRAP_IMAGE:
        headers = Headers([("Content-Type", "image/gif")])
        return Response(status=200, headers=headers, body=_TRANSPARENT_GIF)
    if kind is BeaconKind.TRAP_PAGE:
        headers = Headers([("Content-Type", "text/html")])
        mark_uncacheable(headers)
        return Response(status=200, headers=headers, body=_TRAP_PAGE_BODY)
    raise ValueError(f"unhandled beacon kind: {kind}")
