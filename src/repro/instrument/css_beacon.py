"""The empty-CSS browser probe (§2.2).

"We can dynamically embed an empty CSS file for each HTML page and observe
if the CSS file gets requested."  The file name is a fresh random number
per page/client, e.g. ``http://www.example.com/2031464296.css``, so a
cached or shared fetch can never be mistaken for this client's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.html.document import Element
from repro.util.ids import random_numeric_key
from repro.util.rng import RngStream


@dataclass(frozen=True)
class CssBeacon:
    """A minted CSS beacon: the path to register and the <link> to inject."""

    path: str

    def link_element(self, host: str) -> Element:
        """The ``<link rel=stylesheet>`` element to add to the page head."""
        return Element(
            "link",
            {
                "rel": "stylesheet",
                "type": "text/css",
                "href": f"http://{host}{self.path}",
            },
        )


def make_css_beacon(rng: RngStream) -> CssBeacon:
    """Mint a fresh CSS beacon with a random 10-digit name."""
    return CssBeacon(path=f"/{random_numeric_key(rng, 10)}.css")
