"""The User-Agent echo probe (Figure 1, second script block).

An inline script reads ``navigator.userAgent``, lowercases it, strips
spaces, and ``document.write``s a stylesheet link whose URL embeds the
result.  A fetch of that URL tells the server two things:

* the client *executed JavaScript* (membership in ``S_JS``), and
* what the client's JavaScript engine says the User-Agent is — compared
  against the User-Agent *header* to expose forgery ("browser type
  mismatch", 0.7% of sessions in Table 1).

:func:`interpret_ua_probe` is the client-side reading used by the
JavaScript-capable agent models: given the inline script text, it
reconstructs the URL a real engine would fetch for a given true UA.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.ids import random_numeric_key
from repro.util.rng import RngStream

_PROBE_RE = re.compile(
    r"href=(https?://[^\s\"'+]+)\"\s*\+\s*getuseragnt\(\)\s*\+\s*\"([^\">]*)"
)

_UA_SAFE_RE = re.compile(r"[^a-z0-9.;:()_+,-]")


def sanitize_user_agent(user_agent: str) -> str:
    """Mimic the paper's ``getuseragnt()``: lowercase, no spaces.

    Additionally maps path-hostile characters (``/`` from product tokens
    like ``Firefox/1.5``) to ``_`` so the echoed UA stays a single path
    segment.
    """
    lowered = user_agent.lower().replace(" ", "")
    return _UA_SAFE_RE.sub("_", lowered)


@dataclass(frozen=True)
class UaProbe:
    """A minted UA probe: registered prefix and the inline script."""

    prefix_path: str

    def script_source(self, host: str) -> str:
        """The inline JavaScript injected into the page."""
        return (
            "function getuseragnt()\n"
            "{ var agt = navigator.userAgent.toLowerCase();\n"
            '  agt = agt.replace(/ /g, "");\n'
            "  return agt;\n"
            "}\n"
            'document.write("<link rel=\'stylesheet\' type=\'text/css\' "\n'
            f'  + "href={self.url_prefix(host)}" + getuseragnt() + ".css>");\n'
        )

    def url_prefix(self, host: str) -> str:
        """Absolute URL prefix the echoed UA is appended to."""
        return f"http://{host}{self.prefix_path}"


@dataclass(frozen=True)
class UaProbeTemplate:
    """Client-side view of a probe: how to build the echo URL."""

    url_prefix: str
    suffix: str

    def fetch_url(self, true_user_agent: str) -> str:
        """The URL a JavaScript engine with this UA would fetch."""
        return f"{self.url_prefix}{sanitize_user_agent(true_user_agent)}{self.suffix}"


def make_ua_probe_script(rng: RngStream) -> UaProbe:
    """Mint a fresh UA probe with a random directory token."""
    return UaProbe(prefix_path=f"/ua_{random_numeric_key(rng, 10)}/")


def interpret_ua_probe(script_source: str) -> UaProbeTemplate | None:
    """Recognise a UA probe inside inline script text.

    Returns the URL template, or None when the script is not a UA probe
    (agents call this on every inline script they encounter).
    """
    match = _PROBE_RE.search(script_source)
    if match is None:
        return None
    return UaProbeTemplate(url_prefix=match.group(1), suffix=match.group(2))
