"""Mouse-movement beacon JavaScript (§2.1, Figure 1 of the paper).

``build_beacon_script`` generates the external ``.js`` file the rewritten
page references: ``m + 1`` look-alike functions, each guarded by a
``do_once`` flag and fetching a fake image whose URL embeds a key.  Exactly
one function — the one wired to the page's ``onmousemove`` handler —
carries the real key ``k``; the other ``m`` are decoys with random wrong
keys, so a robot that blindly fetches a URL out of the script picks a
wrong key with probability ``m / (m + 1)``.

The module also provides the two *client-side* readings of that script:

* :func:`find_handler_fetch_url` — what a real JavaScript engine does:
  resolve the handler expression to its function and produce the single
  URL that function fetches (used by the browser agent models);
* :func:`extract_all_script_urls` — what a URL-scraping robot does: grep
  the source for anything fetchable (used by the blind-fetcher robot).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.ids import random_hex_key
from repro.util.rng import RngStream

_HANDLER_EXPR_RE = re.compile(r"return\s+([A-Za-z_$][\w$]*)\s*\(\s*\)")
_URL_RE = re.compile(r"['\"](https?://[^'\"]+)['\"]")
_FUNCTION_RE = re.compile(r"function\s+([A-Za-z_$][\w$]*)\s*\(\s*\)")


@dataclass(frozen=True)
class BeaconScript:
    """A generated beacon script and the bookkeeping the server records."""

    source: str
    handler_function: str
    handler_expression: str
    real_key: str
    real_image_path: str
    decoy_keys: tuple[str, ...]
    decoy_image_paths: tuple[str, ...]

    @property
    def all_image_paths(self) -> tuple[str, ...]:
        """Real plus decoy image paths (order: real first)."""
        return (self.real_image_path, *self.decoy_image_paths)

    @property
    def size(self) -> int:
        """Source size in bytes."""
        return len(self.source.encode("utf-8"))


def _identifier(rng: RngStream, prefix: str) -> str:
    return f"{prefix}_{random_hex_key(rng, 24)}"


def _beacon_function(name: str, guard: str, image_var: str, url: str) -> str:
    """One beacon function in the shape of the paper's Figure 1."""
    return (
        f"var {guard} = false;\n"
        f"function {name}()\n"
        "{\n"
        f"  if ({guard} == false) {{\n"
        f"    var {image_var} = new Image();\n"
        f"    {guard} = true;\n"
        f"    {image_var}.src = '{url}';\n"
        "    return true;\n"
        "  }\n"
        "  return false;\n"
        "}\n"
    )


def build_beacon_script(
    rng: RngStream,
    host: str,
    decoys: int = 4,
    key_bits: int = 128,
) -> BeaconScript:
    """Generate a beacon script for one page served to one client.

    Parameters
    ----------
    rng:
        Randomness source (keys, decoys, identifier names, ordering).
    host:
        The site host the fake image URLs live on.
    decoys:
        ``m`` — the number of wrong-key look-alike functions.
    key_bits:
        Size of the random key space (the paper uses 2^128).
    """
    if decoys < 0:
        raise ValueError(f"decoys must be non-negative, got {decoys}")

    real_key = random_hex_key(rng, key_bits)
    decoy_keys: list[str] = []
    seen = {real_key}
    while len(decoy_keys) < decoys:
        candidate = random_hex_key(rng, key_bits)
        if candidate not in seen:
            seen.add(candidate)
            decoy_keys.append(candidate)

    real_path = f"/{real_key}.jpg"
    decoy_paths = [f"/{k}.jpg" for k in decoy_keys]

    handler_function = _identifier(rng, "f")
    entries = [(handler_function, f"http://{host}{real_path}")]
    for path in decoy_paths:
        entries.append((_identifier(rng, "f"), f"http://{host}{path}"))
    entries = rng.shuffled(entries)

    parts = []
    for name, url in entries:
        guard = _identifier(rng, "g")
        image_var = _identifier(rng, "i")
        parts.append(_beacon_function(name, guard, image_var, url))

    return BeaconScript(
        source="".join(parts),
        handler_function=handler_function,
        handler_expression=f"return {handler_function}();",
        real_key=real_key,
        real_image_path=real_path,
        decoy_keys=tuple(decoy_keys),
        decoy_image_paths=tuple(decoy_paths),
    )


def find_handler_fetch_url(script_source: str, handler_expression: str) -> str | None:
    """Resolve a handler expression the way a JavaScript engine would.

    Finds the function named in ``handler_expression`` (``return f();``)
    inside ``script_source`` and returns the URL assigned to an ``Image``
    ``.src`` in its body — i.e. the URL a *real browser* fetches when the
    human moves the mouse.  Returns None when the handler does not resolve
    (wrong script, obfuscation damage), which the agent models treat as
    "the handler silently does nothing".
    """
    match = _HANDLER_EXPR_RE.search(handler_expression)
    if match is None:
        return None
    name = match.group(1)

    declaration = re.search(
        rf"function\s+{re.escape(name)}\s*\(\s*\)", script_source
    )
    if declaration is None:
        return None
    # The function body extends to the next top-level function declaration
    # (beacon scripts are flat lists of functions).
    next_function = _FUNCTION_RE.search(script_source, declaration.end())
    end = next_function.start() if next_function else len(script_source)
    body = script_source[declaration.end() : end]
    url_match = _URL_RE.search(body)
    if url_match is None:
        return None
    return url_match.group(1)


def extract_all_script_urls(script_source: str) -> list[str]:
    """All absolute URLs a scraping robot can pull out of a script."""
    return _URL_RE.findall(script_source)
