"""The per-IP probe table ("the server generates a random key k ... and
records the tuple <foo.html, k> in a table indexed by the client's IP
address. The table holds multiple entries per IP address.").

Every injected object — the beacon JavaScript file, each mouse-image URL
(real and decoy), the CSS beacon, the hidden-link trap and the UA-probe
directory — is a :class:`RegisteredProbe`.  The proxy consults
:meth:`InstrumentationRegistry.match` on every incoming request; a hit both
tells the proxy what to serve and constitutes a detection signal.

The table is bounded: entries expire after a TTL and each IP keeps at most
``per_ip_cap`` entries (oldest evicted first), so a hostile client cannot
grow server memory without bound — the DoS concern §4.2 raises against
heavier ML state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.http.message import Request


class BeaconKind(Enum):
    """What kind of injected object a registered path is."""

    BEACON_JS = "beacon_js"
    MOUSE_IMAGE = "mouse_image"
    CSS_BEACON = "css_beacon"
    TRAP_PAGE = "trap_page"
    TRAP_IMAGE = "trap_image"
    UA_PROBE = "ua_probe"


@dataclass(frozen=True)
class RegisteredProbe:
    """One outstanding injected object for one client IP.

    ``path`` is the exact URL path, except for ``UA_PROBE`` entries where
    it is a directory prefix (the echoed User-Agent completes the path).
    ``is_real_key`` distinguishes the genuine mouse-image key from decoys.
    """

    kind: BeaconKind
    client_ip: str
    host: str
    path: str
    page_path: str
    issued_at: float
    key: str | None = None
    is_real_key: bool = False
    payload: bytes = b""


@dataclass(frozen=True)
class BeaconHit:
    """A request matched a registered probe."""

    probe: RegisteredProbe
    echoed_user_agent: str | None = None


class InstrumentationRegistry:
    """Per-IP table of outstanding probes with TTL and size bounds."""

    def __init__(self, ttl: float = 3600.0, per_ip_cap: int = 512) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if per_ip_cap < 8:
            raise ValueError(f"per_ip_cap must be >= 8, got {per_ip_cap}")
        self._ttl = ttl
        self._per_ip_cap = per_ip_cap
        # client_ip -> path -> probe; OrderedDict gives FIFO eviction.
        self._by_ip: dict[str, OrderedDict[str, RegisteredProbe]] = {}
        # client_ip -> list of UA-probe directory prefixes (newest last).
        self._ua_prefixes: dict[str, OrderedDict[str, RegisteredProbe]] = {}
        # Observers notified of every registration (the trace recorder
        # journals them so replays can rebuild this table).
        self._listeners: list[Callable[[RegisteredProbe], None]] = []

    @property
    def ttl(self) -> float:
        """Probe lifetime in seconds."""
        return self._ttl

    @property
    def per_ip_cap(self) -> int:
        """Maximum outstanding probes per client IP."""
        return self._per_ip_cap

    # -- registration -----------------------------------------------------

    @property
    def listeners(self) -> tuple[Callable[[RegisteredProbe], None], ...]:
        """The attached registration observers (for state migration)."""
        return tuple(self._listeners)

    @property
    def has_listeners(self) -> bool:
        """Whether any registration observers are attached."""
        return bool(self._listeners)

    def add_listener(
        self, listener: Callable[[RegisteredProbe], None]
    ) -> None:
        """Subscribe to every future :meth:`register` call."""
        self._listeners.append(listener)

    def remove_listener(
        self, listener: Callable[[RegisteredProbe], None]
    ) -> None:
        """Unsubscribe a listener (no error if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def register(self, probe: RegisteredProbe) -> None:
        """Add a probe; evicts the oldest entries past the per-IP cap."""
        for listener in self._listeners:
            listener(probe)
        self.load(probe)

    def load(self, probe: RegisteredProbe) -> None:
        """Insert a probe without notifying listeners.

        Used when migrating entries between registry layouts (e.g.
        re-partitioning for sharded detection): the probes were already
        journaled when first registered, so re-firing listeners would
        duplicate them in the recording.
        """
        table = self._by_ip.setdefault(probe.client_ip, OrderedDict())
        table[probe.path] = probe
        table.move_to_end(probe.path)
        if probe.kind is BeaconKind.UA_PROBE:
            prefixes = self._ua_prefixes.setdefault(probe.client_ip, OrderedDict())
            prefixes[probe.path] = probe
            prefixes.move_to_end(probe.path)
        while len(table) > self._per_ip_cap:
            evicted_path, evicted = table.popitem(last=False)
            if evicted.kind is BeaconKind.UA_PROBE:
                self._ua_prefixes.get(probe.client_ip, OrderedDict()).pop(
                    evicted_path, None
                )

    # -- lookup -----------------------------------------------------------

    def match(self, request: Request, now: float | None = None) -> BeaconHit | None:
        """Return the probe ``request`` targets, if any (TTL-checked)."""
        now = request.timestamp if now is None else now
        table = self._by_ip.get(request.client_ip)
        if not table:
            return None
        path = request.url.path

        probe = table.get(path)
        if probe is not None and self._alive(probe, now):
            if request.url.host != probe.host:
                return None
            return BeaconHit(probe=probe)

        # UA probes register a directory prefix; the fetched path embeds
        # the client-echoed User-Agent string as its final segment.
        prefixes = self._ua_prefixes.get(request.client_ip)
        if prefixes:
            for prefix, ua_probe in reversed(prefixes.items()):
                if path.startswith(prefix) and self._alive(ua_probe, now):
                    if request.url.host != ua_probe.host:
                        continue
                    echoed = path[len(prefix) :]
                    if echoed.endswith(".css"):
                        echoed = echoed[: -len(".css")]
                    return BeaconHit(probe=ua_probe, echoed_user_agent=echoed)
        return None

    def outstanding(self, client_ip: str) -> list[RegisteredProbe]:
        """All live probes registered for an IP (oldest first)."""
        return list(self._by_ip.get(client_ip, OrderedDict()).values())

    def iter_probes(self):
        """Yield every live probe, per-IP FIFO order preserved.

        The order matters: :meth:`load`-ing the yielded sequence into a
        fresh registry reproduces the same eviction order per IP.
        """
        for table in self._by_ip.values():
            yield from table.values()

    def __len__(self) -> int:
        return sum(len(table) for table in self._by_ip.values())

    # -- maintenance --------------------------------------------------------

    def expire_before(self, now: float) -> int:
        """Drop probes older than the TTL; returns how many were removed."""
        removed = 0
        for ip in list(self._by_ip):
            table = self._by_ip[ip]
            stale = [p for p, probe in table.items() if not self._alive(probe, now)]
            for path in stale:
                probe = table.pop(path)
                if probe.kind is BeaconKind.UA_PROBE:
                    self._ua_prefixes.get(ip, OrderedDict()).pop(path, None)
                removed += 1
            if not table:
                del self._by_ip[ip]
                self._ua_prefixes.pop(ip, None)
        return removed

    def _alive(self, probe: RegisteredProbe, now: float) -> bool:
        return now - probe.issued_at <= self._ttl
