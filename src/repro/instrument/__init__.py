"""Server-side page instrumentation (§2 of the paper).

Every HTML page served to a client is dynamically rewritten to carry four
probes, each registered per client IP so the proxy can recognise (and
answer) the follow-up fetches they provoke:

* a **mouse-movement beacon**: an external JavaScript file with one real
  event-handler function that fetches a fake image URL carrying a random
  128-bit key ``k``, plus ``m`` look-alike decoy functions fetching wrong
  keys (:mod:`repro.instrument.js_beacon`, §2.1);
* an **empty CSS file** with a random name — standard browsers fetch
  stylesheets, goal-oriented robots don't (:mod:`repro.instrument.css_beacon`,
  §2.2);
* a **hidden link** wrapped around a transparent 1×1 image — invisible to
  humans, followed by blind crawlers (:mod:`repro.instrument.hidden_link`);
* a **User-Agent echo probe**: inline JavaScript that writes a stylesheet
  URL containing ``navigator.userAgent``, proving JavaScript execution and
  exposing forged User-Agent headers (:mod:`repro.instrument.ua_probe`).

:class:`~repro.instrument.rewriter.PageInstrumenter` applies all of them to
an HTML body; :class:`~repro.instrument.keys.InstrumentationRegistry` is
the per-IP table of outstanding probes ("the server ... records the tuple
<foo.html, k> in a table indexed by the client's IP address").
"""

from repro.instrument.css_beacon import make_css_beacon
from repro.instrument.hidden_link import TRAP_IMAGE_NAME, make_hidden_link
from repro.instrument.js_beacon import (
    BeaconScript,
    build_beacon_script,
    extract_all_script_urls,
    find_handler_fetch_url,
)
from repro.instrument.keys import (
    BeaconHit,
    BeaconKind,
    InstrumentationRegistry,
    RegisteredProbe,
)
from repro.instrument.obfuscator import obfuscate_script
from repro.instrument.rewriter import (
    InstrumentConfig,
    InstrumentedPage,
    PageInstrumenter,
    beacon_response,
)
from repro.instrument.ua_probe import (
    interpret_ua_probe,
    make_ua_probe_script,
    sanitize_user_agent,
)

__all__ = [
    "BeaconHit",
    "BeaconKind",
    "BeaconScript",
    "InstrumentConfig",
    "InstrumentationRegistry",
    "InstrumentedPage",
    "PageInstrumenter",
    "RegisteredProbe",
    "TRAP_IMAGE_NAME",
    "beacon_response",
    "build_beacon_script",
    "extract_all_script_urls",
    "find_handler_fetch_url",
    "interpret_ua_probe",
    "make_css_beacon",
    "make_hidden_link",
    "make_ua_probe_script",
    "obfuscate_script",
    "sanitize_user_agent",
]
