"""The hidden-link crawler trap (§2.2).

"Another related but inverse technique is to place a hidden link in the
HTML file that is not visible to human users, and see if the link is
fetched."  The anchor wraps a transparent 1×1 image; rendering browsers
fetch the *image* (normal embedded-object behaviour) but no human can see
or click the *link* — only link-following robots request the trap page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.html.document import Element
from repro.util.ids import random_numeric_key
from repro.util.rng import RngStream

TRAP_IMAGE_NAME = "transp_1x1.jpg"


@dataclass(frozen=True)
class HiddenLink:
    """A minted trap: the hidden page path and the transparent image path."""

    page_path: str
    image_path: str

    def anchor_element(self, host: str) -> Element:
        """The invisible ``<a><img></a>`` trap to append to the body."""
        img = Element(
            "img",
            {
                "src": f"http://{host}{self.image_path}",
                "width": "1",
                "height": "1",
                "border": "0",
                "alt": "",
            },
        )
        anchor = Element("a", {"href": f"http://{host}{self.page_path}"})
        anchor.append(img)
        return anchor


def make_hidden_link(rng: RngStream) -> HiddenLink:
    """Mint a fresh hidden-link trap with a random page name."""
    return HiddenLink(
        page_path=f"/hidden_{random_numeric_key(rng, 10)}.html",
        image_path=f"/{TRAP_IMAGE_NAME}",
    )
