"""Lexical obfuscation of beacon scripts (§2.1: "Adding lexical obfuscation
can further increase the difficulty in deciphering the script").

The goal is *not* cryptographic: it is to stop a robot from telling the
real handler function apart from the decoys by simple pattern matching.
Transformations applied:

* identifier renaming to hex-soup names (``_0x3fa2c1``);
* junk variable declarations and arithmetic interleaved between functions;
* misleading comments.

URLs are left literal — the scheme's security comes from the decoys, not
from hiding URLs, and leaving them findable is exactly what lets us model
the blind-fetching robot the paper analyses (caught with probability
``m/(m+1)``).
"""

from __future__ import annotations

import re

from repro.util.rng import RngStream

_IDENTIFIER_RE = re.compile(r"\b([fgi]_[0-9a-f]{6})\b")

_JUNK_COMMENTS = (
    "/* cache warm-up */",
    "/* layout metrics */",
    "/* preload hints */",
    "/* compat shim */",
)


def _hex_name(rng: RngStream) -> str:
    return f"_0x{rng.getrandbits(24):06x}"


def obfuscate_script(source: str, rng: RngStream, junk_statements: int = 6) -> str:
    """Return an obfuscated variant of ``source``.

    The transformation preserves the properties the rest of the system
    depends on: ``function <name>()`` declarations survive (with new
    names), each function still assigns its URL to an ``Image().src``, and
    :func:`repro.instrument.js_beacon.find_handler_fetch_url` still
    resolves handlers — a real JS engine is not confused by renaming, and
    neither is the simulated one.  Callers that also hold a page-side
    handler expression should use :func:`obfuscate_beacon` instead, which
    rewrites both with one consistent renaming.
    """
    if junk_statements < 0:
        raise ValueError("junk_statements must be non-negative")
    renamed, _ = _rename_identifiers(source, rng)
    return _inject_junk(renamed, rng, junk_statements)


def obfuscate_beacon(
    source: str,
    handler_expression: str,
    rng: RngStream,
    junk_statements: int = 6,
) -> tuple[str, str]:
    """Obfuscate a beacon script and its page-side handler expression.

    Returns ``(obfuscated_source, rewritten_handler_expression)`` with a
    consistent renaming, so the page's ``onmousemove`` attribute still
    calls the (renamed) real function.
    """
    renamed, mapping = _rename_identifiers(source, rng)
    new_expression = _IDENTIFIER_RE.sub(
        lambda m: mapping.get(m.group(1), m.group(1)), handler_expression
    )
    return _inject_junk(renamed, rng, junk_statements), new_expression


def _rename_identifiers(source: str, rng: RngStream) -> tuple[str, dict[str, str]]:
    mapping: dict[str, str] = {}

    def replace(match: re.Match[str]) -> str:
        name = match.group(1)
        if name not in mapping:
            mapping[name] = _hex_name(rng)
        return mapping[name]

    return _IDENTIFIER_RE.sub(replace, source), mapping


def _inject_junk(source: str, rng: RngStream, junk_statements: int) -> str:
    if junk_statements == 0:
        return source
    lines = source.split("\n")
    # Insertion points: only between top-level constructs (before a 'var'
    # or 'function' line) so function bodies stay intact.
    points = [
        i
        for i, line in enumerate(lines)
        if line.startswith("var ") or line.startswith("function ")
    ]
    if not points:
        return source
    for _ in range(junk_statements):
        at = rng.choice(points)
        junk_kind = rng.randint(0, 2)
        if junk_kind == 0:
            junk = f"var {_hex_name(rng)} = {rng.randint(0, 1 << 30)};"
        elif junk_kind == 1:
            junk = (
                f"var {_hex_name(rng)} = ({rng.randint(1, 999)} * "
                f"{rng.randint(1, 999)}) % {rng.randint(2, 97)};"
            )
        else:
            junk = rng.choice(_JUNK_COMMENTS)
        lines.insert(at, junk)
        points = [p if p < at else p + 1 for p in points]
    return "\n".join(lines)
