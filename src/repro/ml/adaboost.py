"""AdaBoost (Schapire) over decision stumps — the paper's §4.2 learner.

"We used AdaBoost with 200 rounds."  Discrete AdaBoost on ±1 labels:
each round trains the best stump under the current sample weights, gets a
vote ``alpha = ½ ln((1−ε)/ε)``, and re-weights samples toward the
mistakes.  The feature-column argsorts are computed once and reused by
every round, so 200 rounds over tens of thousands of sessions train in
well under a second.

Scoring is matrix-at-a-time: the ensemble compiles itself into packed
arrays so a 200-round model scores an (n, d) matrix in a few vectorized
passes instead of 200 per-stump Python iterations.  A stump votes
``polarity`` when ``x[feature] > threshold`` and ``-polarity``
otherwise, so with ``v_t = alpha_t * polarity_t``::

    margin = Σ_t v_t · (2·[x_ft > θ_t] − 1) = 2·Σ_{t: θ_t < x_ft} v_t − Σ_t v_t

The compiled form groups stumps by feature, sorts each group's
thresholds, and prefix-sums its votes, so ``Σ_{θ < x} v`` is one lookup
per sample per feature.  The lookup itself is a uniform grid over the
threshold range: every grid bucket that contains no threshold ("clean")
stores the exact prefix vote outright, and only samples landing in the
few buckets that do contain a threshold fall back to a ``searchsorted``
over that feature's thresholds.  The bucket map is monotone and is
applied identically to thresholds at compile time and samples at score
time, so the result is bit-exact with the stump-by-stump definition
while costing O(d · n) array work with no (n, rounds) intermediate —
an order of magnitude faster than the per-stump loop on a 10k × 200
workload.  :meth:`AdaBoostModel.score_loop` keeps the per-stump
reference path for equivalence tests and the before/after throughput
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.stump import DecisionStump, train_stump

_EPS = 1e-12

#: Grid resolution of the compiled per-feature lookup.  200 rounds over
#: 12 attributes put ~17 thresholds in a feature's grid, so typically
#: ≤ 2% of buckets are "dirty" (contain a threshold) and the
#: searchsorted fallback touches almost no samples.
_GRID_BUCKETS = 1024


@dataclass(frozen=True)
class FeatureTable:
    """One feature's compiled threshold structure.

    ``vote_prefix[k]`` is the summed vote of the ``k``
    smallest-threshold stumps on this feature (leading 0), so
    ``vote_prefix[searchsorted(thresholds, x, side="left")]`` is exactly
    ``Σ_{θ < x} v`` — ``side="left"`` keeps the stump comparison strict
    (``x > θ``; a tie votes negative).  The grid arrays cache that
    lookup per uniform bucket: ``grid_prefix[b]`` is the prefix vote for
    any sample in bucket ``b``, valid whenever ``grid_dirty[b]`` is
    False (no threshold maps into the bucket).  The bucket map — clip
    then truncate — is monotone and is applied identically to
    thresholds here and to samples in :meth:`AdaBoostModel.score`, so a
    clean-bucket hit is bit-exact.
    """

    feature: int
    thresholds: np.ndarray   #: (k,) float64, sorted
    vote_prefix: np.ndarray  #: (k + 1,) float64, leading 0
    grid_lo: float
    grid_scale: float
    grid_dirty: np.ndarray   #: (_GRID_BUCKETS,) bool
    grid_prefix: np.ndarray  #: (_GRID_BUCKETS,) float64

    def buckets(self, values: np.ndarray) -> np.ndarray:
        """Map sample values onto grid bucket indices (monotone)."""
        scaled = (values - self.grid_lo) * self.grid_scale
        np.clip(scaled, 0.0, _GRID_BUCKETS - 1, out=scaled)
        return scaled.astype(np.int64)

    def prefix_votes(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{θ < value} v`` for every value, via the grid."""
        buckets = self.buckets(values)
        votes = self.grid_prefix[buckets]
        dirty = np.flatnonzero(self.grid_dirty[buckets])
        if dirty.size:
            votes[dirty] = self.vote_prefix[
                np.searchsorted(
                    self.thresholds, values[dirty], side="left"
                )
            ]
        return votes


def _compile_feature(
    feature: int, thresholds: np.ndarray, votes: np.ndarray
) -> FeatureTable:
    """Build one feature's sorted-prefix + grid lookup tables.

    ``thresholds`` must already be sorted with ``votes`` in matching
    order.  A degenerate threshold range (all equal) gets scale 0, which
    maps every sample to bucket 0 — dirty by construction — so scoring
    transparently degrades to pure searchsorted rather than misreading
    the grid.
    """
    vote_prefix = np.concatenate(([0.0], np.cumsum(votes)))
    lo = float(thresholds[0])
    span = float(thresholds[-1]) - lo
    scale = _GRID_BUCKETS / span if span > 0.0 else 0.0
    scaled = (thresholds - lo) * scale
    np.clip(scaled, 0.0, _GRID_BUCKETS - 1, out=scaled)
    threshold_buckets = scaled.astype(np.int64)
    grid_dirty = np.zeros(_GRID_BUCKETS, dtype=bool)
    grid_dirty[threshold_buckets] = True
    # grid_prefix[b] = summed vote of thresholds in buckets < b; exact
    # for clean buckets because the bucket map is monotone.
    per_bucket = np.bincount(threshold_buckets, minlength=_GRID_BUCKETS)
    below_counts = np.concatenate(([0], np.cumsum(per_bucket)))[
        :_GRID_BUCKETS
    ]
    return FeatureTable(
        feature=feature,
        thresholds=thresholds,
        vote_prefix=vote_prefix,
        grid_lo=lo,
        grid_scale=scale,
        grid_dirty=grid_dirty,
        grid_prefix=vote_prefix[below_counts],
    )


@dataclass(frozen=True)
class PackedEnsemble:
    """An ensemble compiled to parallel arrays for vectorized scoring."""

    features: np.ndarray    #: (rounds,) intp — stump feature indices
    thresholds: np.ndarray  #: (rounds,) float64 — stump thresholds
    polarities: np.ndarray  #: (rounds,) float64 — ±1 stump polarities
    alphas: np.ndarray      #: (rounds,) float64 — boosting votes
    votes: np.ndarray       #: (rounds,) float64 — alpha * polarity
    vote_sum: float         #: Σ alpha * polarity
    groups: tuple[FeatureTable, ...]

    @property
    def rounds(self) -> int:
        """Number of boosting rounds in the compiled ensemble."""
        return self.features.shape[0]


@dataclass
class AdaBoostModel:
    """A trained ensemble: stumps with their votes."""

    stumps: list[DecisionStump] = field(default_factory=list)
    alphas: list[float] = field(default_factory=list)
    n_features: int = 0
    _packed: PackedEnsemble | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def compile(self) -> PackedEnsemble:
        """The packed-array form of the ensemble (cached per round count).

        The cache keys off ``len(stumps)``, which covers the one
        mutation pattern in this codebase — :meth:`AdaBoostClassifier.fit`
        appending rounds — without hashing stump contents.
        """
        packed = self._packed
        if packed is not None and packed.rounds == len(self.stumps):
            return packed
        alphas = np.asarray(self.alphas, dtype=np.float64)
        polarities = np.array(
            [stump.polarity for stump in self.stumps], dtype=np.float64
        )
        votes = alphas * polarities
        features = np.array(
            [stump.feature for stump in self.stumps], dtype=np.intp
        )
        thresholds = np.array(
            [stump.threshold for stump in self.stumps], dtype=np.float64
        )
        groups = []
        for feature in np.unique(features):
            mask = features == feature
            order = np.argsort(thresholds[mask], kind="stable")
            groups.append(
                _compile_feature(
                    int(feature),
                    thresholds[mask][order],
                    votes[mask][order],
                )
            )
        packed = PackedEnsemble(
            features=features,
            thresholds=thresholds,
            polarities=polarities,
            alphas=alphas,
            votes=votes,
            vote_sum=float(votes.sum()),
            groups=tuple(groups),
        )
        self._packed = packed
        return packed

    def _validate(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_features}) matrix, got {x.shape}"
            )
        return x

    def score(self, x: np.ndarray) -> np.ndarray:
        """Real-valued margin: positive means human (+1)."""
        self._validate(x)
        packed = self.compile()
        if packed.rounds == 0:
            return np.zeros(x.shape[0])
        below_votes = np.zeros(x.shape[0])
        for table in packed.groups:
            below_votes += table.prefix_votes(x[:, table.feature])
        return 2.0 * below_votes - packed.vote_sum

    def score_loop(self, x: np.ndarray) -> np.ndarray:
        """Per-stump reference scorer (the pre-vectorization path)."""
        self._validate(x)
        total = np.zeros(x.shape[0])
        for stump, alpha in zip(self.stumps, self.alphas):
            total += alpha * stump.predict(x)
        return total

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions (ties break to robot, the safe default)."""
        margins = self.score(x)
        return np.where(margins > 0.0, 1, -1).astype(np.int8)

    def staged_scores(self, x: np.ndarray) -> np.ndarray:
        """(rounds, n) margins after each boosting round."""
        self._validate(x)
        packed = self.compile()
        if packed.rounds == 0:
            return np.zeros((0, x.shape[0]))
        above = x[:, packed.features] > packed.thresholds
        contributions = np.where(above, packed.votes, -packed.votes)
        return np.cumsum(contributions, axis=1).T

    @property
    def rounds(self) -> int:
        """Number of boosting rounds actually performed."""
        return len(self.stumps)


def demo_ensemble(
    rounds: int, seed: int = 2006, n_features: int | None = None
) -> AdaBoostModel:
    """A seeded random ensemble over the Table 2 feature space.

    Exercises the full micro-batch scoring path (feature accumulation,
    matrix assembly, vectorised voting) with deterministic structure and
    no training data — its verdicts carry no classification meaning.
    Use a :class:`AdaBoostClassifier`-fitted model for real scoring.
    """
    from repro.ml.features import N_ATTRIBUTES

    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    rng = np.random.default_rng(seed)
    model = AdaBoostModel(n_features=n_features or N_ATTRIBUTES)
    for _ in range(rounds):
        model.stumps.append(
            DecisionStump(
                feature=int(rng.integers(model.n_features)),
                threshold=float(rng.uniform(0.0, 100.0)),
                polarity=int(rng.choice((-1, 1))),
            )
        )
        model.alphas.append(float(rng.uniform(0.05, 1.0)))
    model.compile()
    return model


class AdaBoostClassifier:
    """Trainer: fit(X, y) -> AdaBoostModel."""

    def __init__(self, n_rounds: int = 200) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self.n_rounds = n_rounds

    def fit(self, x: np.ndarray, y: np.ndarray) -> AdaBoostModel:
        """Train on a sample matrix (n, d) and ±1 labels (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n, d = x.shape
        if y.shape != (n,):
            raise ValueError("y length must match x rows")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        if n < 2 or len(np.unique(y)) < 2:
            raise ValueError("need at least one sample of each class")

        sort_indices = np.argsort(x, axis=0).T
        weights = np.full(n, 1.0 / n)
        model = AdaBoostModel(n_features=d)

        for _ in range(self.n_rounds):
            stump, error = train_stump(x, y, weights, sort_indices)
            error = min(max(error, _EPS), 1.0 - _EPS)
            if error >= 0.5:
                # The weak-learner guarantee failed; boosting is done.
                break
            alpha = 0.5 * np.log((1.0 - error) / error)
            predictions = stump.predict(x)
            weights = weights * np.exp(-alpha * y * predictions)
            weights /= weights.sum()
            model.stumps.append(stump)
            model.alphas.append(float(alpha))
            if error <= _EPS * 10:
                # Perfect separation: further rounds only repeat it.
                break
        return model
