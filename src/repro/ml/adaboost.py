"""AdaBoost (Schapire) over decision stumps — the paper's §4.2 learner.

"We used AdaBoost with 200 rounds."  Discrete AdaBoost on ±1 labels:
each round trains the best stump under the current sample weights, gets a
vote ``alpha = ½ ln((1−ε)/ε)``, and re-weights samples toward the
mistakes.  The feature-column argsorts are computed once and reused by
every round, so 200 rounds over tens of thousands of sessions train in
well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.stump import DecisionStump, train_stump

_EPS = 1e-12


@dataclass
class AdaBoostModel:
    """A trained ensemble: stumps with their votes."""

    stumps: list[DecisionStump] = field(default_factory=list)
    alphas: list[float] = field(default_factory=list)
    n_features: int = 0

    def score(self, x: np.ndarray) -> np.ndarray:
        """Real-valued margin: positive means human (+1)."""
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_features}) matrix, got {x.shape}"
            )
        total = np.zeros(x.shape[0])
        for stump, alpha in zip(self.stumps, self.alphas):
            total += alpha * stump.predict(x)
        return total

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions (ties break to robot, the safe default)."""
        margins = self.score(x)
        return np.where(margins > 0.0, 1, -1).astype(np.int8)

    def staged_scores(self, x: np.ndarray) -> np.ndarray:
        """(rounds, n) margins after each boosting round."""
        out = np.zeros((len(self.stumps), x.shape[0]))
        running = np.zeros(x.shape[0])
        for t, (stump, alpha) in enumerate(zip(self.stumps, self.alphas)):
            running = running + alpha * stump.predict(x)
            out[t] = running
        return out

    @property
    def rounds(self) -> int:
        """Number of boosting rounds actually performed."""
        return len(self.stumps)


class AdaBoostClassifier:
    """Trainer: fit(X, y) -> AdaBoostModel."""

    def __init__(self, n_rounds: int = 200) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self.n_rounds = n_rounds

    def fit(self, x: np.ndarray, y: np.ndarray) -> AdaBoostModel:
        """Train on a sample matrix (n, d) and ±1 labels (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n, d = x.shape
        if y.shape != (n,):
            raise ValueError("y length must match x rows")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        if n < 2 or len(np.unique(y)) < 2:
            raise ValueError("need at least one sample of each class")

        sort_indices = np.argsort(x, axis=0).T
        weights = np.full(n, 1.0 / n)
        model = AdaBoostModel(n_features=d)

        for _ in range(self.n_rounds):
            stump, error = train_stump(x, y, weights, sort_indices)
            error = min(max(error, _EPS), 1.0 - _EPS)
            if error >= 0.5:
                # The weak-learner guarantee failed; boosting is done.
                break
            alpha = 0.5 * np.log((1.0 - error) / error)
            predictions = stump.predict(x)
            weights = weights * np.exp(-alpha * y * predictions)
            weights /= weights.sum()
            model.stumps.append(stump)
            model.alphas.append(float(alpha))
            if error <= _EPS * 10:
                # Perfect separation: further rounds only repeat it.
                break
        return model
