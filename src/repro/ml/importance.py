"""Attribute contribution analysis.

§4.2: "RESPCODE_3XX%, REFERRER% and UNSEEN_REFERRER% turned out to be the
most contributing attributes."  With a stump ensemble the contribution of
an attribute is exact: the sum of |alpha| over the rounds that chose it.
"""

from __future__ import annotations

from repro.ml.adaboost import AdaBoostModel
from repro.ml.features import ATTRIBUTE_NAMES


def attribute_contributions(model: AdaBoostModel) -> list[tuple[str, float]]:
    """Per-attribute total |alpha|, normalised to sum 1, sorted descending."""
    totals = [0.0] * len(ATTRIBUTE_NAMES)
    for stump, alpha in zip(model.stumps, model.alphas):
        totals[stump.feature] += abs(alpha)
    grand = sum(totals)
    if grand > 0:
        totals = [t / grand for t in totals]
    ranked = sorted(
        zip(ATTRIBUTE_NAMES, totals), key=lambda pair: pair[1], reverse=True
    )
    return ranked


def top_attributes(model: AdaBoostModel, k: int = 3) -> list[str]:
    """Names of the ``k`` most contributing attributes."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return [name for name, _ in attribute_contributions(model)[:k]]
