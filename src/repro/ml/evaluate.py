"""Evaluation: splits, accuracy, confusion counts.

The paper "divided each set into a training set and a test set, using
equal numbers of sessions drawn at random" — a per-class 50/50 split,
implemented here deterministically from an :class:`RngStream`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.dataset import SessionExample
from repro.util.rng import RngStream


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one classifier on train and test sets."""

    checkpoint: int
    train_accuracy: float
    test_accuracy: float
    rounds: int

    def __str__(self) -> str:
        return (
            f"N={self.checkpoint:3d}: train={self.train_accuracy:6.2%} "
            f"test={self.test_accuracy:6.2%} ({self.rounds} rounds)"
        )


def train_test_split(
    examples: list[SessionExample], rng: RngStream
) -> tuple[list[SessionExample], list[SessionExample]]:
    """Per-class 50/50 split, shuffled deterministically."""
    train: list[SessionExample] = []
    test: list[SessionExample] = []
    for label in (1, -1):
        members = [e for e in examples if e.label == label]
        members = rng.shuffled(members)
        half = len(members) // 2
        train.extend(members[:half])
        test.extend(members[half:])
    return rng.shuffled(train), rng.shuffled(test)


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching ±1 predictions."""
    if predictions.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts with +1 = human as the positive class."""

    true_human: int
    false_human: int
    true_robot: int
    false_robot: int

    @property
    def accuracy(self) -> float:
        """Overall accuracy."""
        total = (
            self.true_human + self.false_human
            + self.true_robot + self.false_robot
        )
        if total == 0:
            return 0.0
        return (self.true_human + self.true_robot) / total

    @property
    def false_positive_rate(self) -> float:
        """Robots classified human / all robots (the paper's FPR sense)."""
        robots = self.false_human + self.true_robot
        return self.false_human / robots if robots else 0.0

    @property
    def false_negative_rate(self) -> float:
        """Humans classified robot / all humans."""
        humans = self.true_human + self.false_robot
        return self.false_robot / humans if humans else 0.0


def confusion(predictions: np.ndarray, labels: np.ndarray) -> Confusion:
    """Confusion counts for ±1 predictions vs ±1 labels."""
    if predictions.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    pred_human = predictions == 1
    is_human = labels == 1
    return Confusion(
        true_human=int(np.sum(pred_human & is_human)),
        false_human=int(np.sum(pred_human & ~is_human)),
        true_robot=int(np.sum(~pred_human & ~is_human)),
        false_robot=int(np.sum(~pred_human & is_human)),
    )
