"""Machine-learning detection (§4.2): Table 2 features + AdaBoost.

The paper's follow-up study: label sessions with CAPTCHA outcomes,
describe each session by 12 request-stream attributes computed over its
first N requests, and train AdaBoost (200 rounds of decision stumps) at
N = 20, 40, ..., 160.  scikit-learn is unavailable offline, so the
booster is implemented directly on numpy — which also makes the
per-attribute contribution analysis (the paper's "most contributing
attributes") exact rather than estimated.
"""

from repro.ml.adaboost import AdaBoostClassifier, AdaBoostModel, PackedEnsemble
from repro.ml.batch import BatchScorer, BatchVerdict
from repro.ml.dataset import Dataset, SessionExample, build_matrix
from repro.ml.evaluate import (
    EvaluationResult,
    accuracy,
    confusion,
    train_test_split,
)
from repro.ml.features import (
    ATTRIBUTE_NAMES,
    FeatureAccumulator,
    FeatureVector,
)
from repro.ml.importance import attribute_contributions
from repro.ml.stump import DecisionStump

__all__ = [
    "ATTRIBUTE_NAMES",
    "AdaBoostClassifier",
    "AdaBoostModel",
    "BatchScorer",
    "BatchVerdict",
    "Dataset",
    "PackedEnsemble",
    "DecisionStump",
    "EvaluationResult",
    "FeatureAccumulator",
    "FeatureVector",
    "SessionExample",
    "accuracy",
    "attribute_contributions",
    "build_matrix",
    "confusion",
    "train_test_split",
]
