"""Table 2's 12 session attributes, computed incrementally.

| Attribute          | Explanation                                   |
|--------------------|-----------------------------------------------|
| HEAD %             | % of HEAD commands                            |
| HTML %             | % of HTML requests                            |
| IMAGE %            | % of image (content type = image/*) responses |
| CGI %              | % of CGI requests                             |
| REFERRER %         | % of requests carrying a Referer header       |
| UNSEEN REFERRER %  | % of requests whose Referer was never visited |
| EMBEDDED OBJ %     | % of requests for objects embedded in a       |
|                    | previously fetched page                       |
| LINK FOLLOWING %   | % of requests for links seen in a previously  |
|                    | fetched page                                  |
| RESPCODE 2XX %     | % of responses with a 2xx status              |
| RESPCODE 3XX %     | % of responses with a 3xx status              |
| RESPCODE 4XX %     | % of responses with a 4xx status              |
| FAVICON %          | % of favicon.ico requests                     |

The accumulator consumes (request, response) pairs in arrival order and
can be snapshotted at any request count, which is how the Figure 4
classifiers "built at multiples of 20 requests" get their inputs.  The
link/embedded-object attributes require remembering what each fetched
HTML page referenced — the memory cost §4.2 warns about — so the
reference sets are explicitly bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.html.links import extract_references
from repro.http.content import ContentKind
from repro.http.message import Method, Request, Response
from repro.http.status import StatusClass
from repro.http.uri import Url, resolve_url

ATTRIBUTE_NAMES: tuple[str, ...] = (
    "HEAD%",
    "HTML%",
    "IMAGE%",
    "CGI%",
    "REFERRER%",
    "UNSEEN_REFERRER%",
    "EMBEDDED_OBJ%",
    "LINK_FOLLOWING%",
    "RESPCODE_2XX%",
    "RESPCODE_3XX%",
    "RESPCODE_4XX%",
    "FAVICON%",
)

N_ATTRIBUTES = len(ATTRIBUTE_NAMES)

FeatureVector = np.ndarray


@dataclass
class FeatureAccumulator:
    """Streaming computation of the 12 attributes for one session."""

    max_tracked_urls: int = 20000

    total: int = 0
    head: int = 0
    html: int = 0
    image: int = 0
    cgi: int = 0
    with_referrer: int = 0
    unseen_referrer: int = 0
    embedded_obj: int = 0
    link_following: int = 0
    resp_2xx: int = 0
    resp_3xx: int = 0
    resp_4xx: int = 0
    favicon: int = 0

    _visited: set[str] = field(default_factory=set, repr=False)
    _known_embedded: set[str] = field(default_factory=set, repr=False)
    _known_links: set[str] = field(default_factory=set, repr=False)

    def observe(self, request: Request, response: Response) -> None:
        """Account one exchange (call in arrival order)."""
        self.total += 1
        url_text = str(request.url)
        kind = request.path_kind

        if request.method is Method.HEAD:
            self.head += 1
        if kind is ContentKind.HTML or kind is ContentKind.CGI:
            # The paper's HTML% counts page requests; CGI responses are
            # HTML too but are broken out separately below.
            if kind is ContentKind.HTML:
                self.html += 1
        if kind is ContentKind.CGI:
            self.cgi += 1
        if kind is ContentKind.FAVICON:
            self.favicon += 1
        if response.content_kind is ContentKind.IMAGE:
            self.image += 1

        referer = request.referer
        if referer:
            self.with_referrer += 1
            if _normalize(referer) not in self._visited:
                self.unseen_referrer += 1

        normalized = _normalize(url_text)
        if normalized in self._known_embedded:
            self.embedded_obj += 1
        if normalized in self._known_links:
            self.link_following += 1

        klass = response.status_class
        if klass is StatusClass.SUCCESS:
            self.resp_2xx += 1
        elif klass is StatusClass.REDIRECT:
            self.resp_3xx += 1
        elif klass is StatusClass.CLIENT_ERROR:
            self.resp_4xx += 1

        self._remember(self._visited, normalized)

        if (
            response.status == 200
            and response.content_kind is ContentKind.HTML
            and response.body
        ):
            self._index_page(request.url, response)

    def vector(self) -> FeatureVector:
        """The 12 attributes as percentages (zeros before any request)."""
        if self.total == 0:
            return np.zeros(N_ATTRIBUTES)
        scale = 100.0 / self.total
        return np.array(
            [
                self.head * scale,
                self.html * scale,
                self.image * scale,
                self.cgi * scale,
                self.with_referrer * scale,
                self.unseen_referrer * scale,
                self.embedded_obj * scale,
                self.link_following * scale,
                self.resp_2xx * scale,
                self.resp_3xx * scale,
                self.resp_4xx * scale,
                self.favicon * scale,
            ]
        )

    # -- internals ----------------------------------------------------------

    def _index_page(self, page_url: Url, response: Response) -> None:
        """Remember what a fetched page links to / embeds."""
        refs = extract_references(response.text)
        for reference in refs.embedded_objects:
            self._remember(
                self._known_embedded,
                _normalize(str(resolve_url(page_url, reference))),
            )
        for reference in refs.all_links:
            self._remember(
                self._known_links,
                _normalize(str(resolve_url(page_url, reference))),
            )

    def _remember(self, bucket: set[str], value: str) -> None:
        if len(bucket) < self.max_tracked_urls:
            bucket.add(value)


def _normalize(url_text: str) -> str:
    """Comparison form of a URL (scheme/host lowering, fragment removal)."""
    try:
        return str(Url.parse(url_text))
    except ValueError:
        return url_text.strip().lower()
