"""Matrix-at-a-time session scoring for the sharded pipeline.

The §4.2 classifier is cheap per stump but was applied one session at a
time; at replay rates that leaves almost all of numpy's throughput on
the table.  :class:`BatchScorer` buffers per-session feature vectors
(Table 2 attribute snapshots) and, on flush, stacks them into one
``(n, d)`` matrix scored by a single vectorized
:meth:`~repro.ml.adaboost.AdaBoostModel.score` pass — the pattern
BotGraph-style offline detectors use to keep per-session cost at
"matrix row" rather than "Python object" granularity.

Flushes are deterministic: verdicts come back in insertion order, and an
optional ``batch_size`` auto-flushes so steady-state memory stays
bounded during million-session replays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.ml.adaboost import AdaBoostModel
from repro.ml.features import FeatureAccumulator


@dataclass(frozen=True)
class BatchVerdict:
    """One session's scored outcome from a flushed batch."""

    session_id: str
    margin: float

    @property
    def label(self) -> int:
        """±1 prediction; a zero margin ties to robot (-1)."""
        return 1 if self.margin > 0.0 else -1

    @property
    def is_robot(self) -> bool:
        """True when the ensemble calls the session a robot."""
        return self.label < 0


class BatchScorer:
    """Buffers session feature vectors; scores them one matrix at a time.

    ``on_flush`` (if given) receives each flushed batch of
    :class:`BatchVerdict`s — the hook a policy layer or metrics exporter
    attaches to.  With ``keep_verdicts`` (the default) every verdict
    ever produced is also retained on :attr:`verdicts` in insertion
    order; million-session replays that stream results through
    ``on_flush`` should pass ``keep_verdicts=False`` so total memory —
    not just the pending buffer — stays bounded.
    """

    def __init__(
        self,
        model: AdaBoostModel,
        batch_size: int = 4096,
        on_flush: Callable[[list[BatchVerdict]], None] | None = None,
        keep_verdicts: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._model = model
        self._batch_size = batch_size
        self._on_flush = on_flush
        self._keep_verdicts = keep_verdicts
        self._ids: list[str] = []
        self._vectors: list[np.ndarray] = []
        self.verdicts: list[BatchVerdict] = []
        self.flushes = 0
        self._scored = 0
        self._score_seconds = None
        self._scored_total = None

    @property
    def model(self) -> AdaBoostModel:
        """The ensemble scoring every batch."""
        return self._model

    @property
    def pending(self) -> int:
        """Sessions buffered but not yet scored."""
        return len(self._ids)

    @property
    def scored(self) -> int:
        """Sessions scored across all flushes."""
        return self._scored

    def add(self, session_id: str, features: np.ndarray) -> None:
        """Buffer one session's feature vector (auto-flushes when full)."""
        vector = np.asarray(features, dtype=np.float64)
        if vector.shape != (self._model.n_features,):
            raise ValueError(
                f"expected ({self._model.n_features},) vector, "
                f"got {vector.shape}"
            )
        self._ids.append(session_id)
        self._vectors.append(vector)
        if len(self._ids) >= self._batch_size:
            self.flush()

    def add_accumulator(
        self, session_id: str, accumulator: FeatureAccumulator
    ) -> None:
        """Snapshot a live Table 2 accumulator into the batch."""
        self.add(session_id, accumulator.vector())

    def add_many(
        self, items: Iterable[tuple[str, np.ndarray]]
    ) -> None:
        """Buffer many (session_id, vector) pairs."""
        for session_id, features in items:
            self.add(session_id, features)

    def attach_metrics(self, registry, labels=None) -> None:
        """Record scoring wall time and scored-session counts.

        ``repro_batch_score_seconds`` (wall) times the vectorized score
        pass; ``repro_batch_sessions_scored_total`` (deterministic)
        counts rows, which depend only on the add/flush sequence.
        """
        from repro.obs.registry import WALL_SECONDS_BUCKETS

        self._score_seconds = registry.histogram(
            "repro_batch_score_seconds", WALL_SECONDS_BUCKETS,
            labels, wall=True,
        )
        self._scored_total = registry.counter(
            "repro_batch_sessions_scored_total", labels
        )

    def flush(self) -> list[BatchVerdict]:
        """Score everything buffered as one matrix; returns the batch."""
        if not self._ids:
            return []
        matrix = np.stack(self._vectors)
        started = time.perf_counter()
        margins = self._model.score(matrix)
        if self._score_seconds is not None:
            self._score_seconds.observe(time.perf_counter() - started)
        batch = [
            BatchVerdict(session_id=session_id, margin=float(margin))
            for session_id, margin in zip(self._ids, margins)
        ]
        self._ids = []
        self._vectors = []
        if self._keep_verdicts:
            self.verdicts.extend(batch)
        self._scored += len(batch)
        self.flushes += 1
        if self._scored_total is not None:
            self._scored_total.inc(len(batch))
        if self._on_flush is not None:
            self._on_flush(batch)
        return batch
