"""Decision stumps: the weak learners AdaBoost boosts.

A stump thresholds one attribute: ``predict(x) = polarity`` when
``x[feature] > threshold`` else ``-polarity`` (labels are ±1, +1 =
human).  Training finds the (feature, threshold, polarity) minimising
weighted error in one vectorised pass per feature using prefix sums over
weight-sorted samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DecisionStump:
    """One trained threshold rule."""

    feature: int
    threshold: float
    polarity: int

    def __post_init__(self) -> None:
        if self.polarity not in (-1, 1):
            raise ValueError("polarity must be -1 or +1")

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions for a sample matrix (n, d)."""
        above = x[:, self.feature] > self.threshold
        out = np.where(above, self.polarity, -self.polarity)
        return out.astype(np.int8)


def train_stump(
    x: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    sort_indices: np.ndarray | None = None,
) -> tuple[DecisionStump, float]:
    """Best stump under ``weights``; returns (stump, weighted_error).

    ``sort_indices`` (d, n) — argsort of each feature column — can be
    precomputed once per dataset and reused across boosting rounds.
    """
    n, d = x.shape
    if y.shape != (n,) or weights.shape != (n,):
        raise ValueError("x, y, weights shapes disagree")
    if sort_indices is None:
        sort_indices = np.argsort(x, axis=0).T

    best_error = np.inf
    best_feature = 0
    best_threshold = 0.0
    best_polarity = 1

    signed = weights * y  # w_i * y_i
    total_positive = float(np.sum(weights[y > 0]))

    for feature in range(d):
        order = sort_indices[feature]
        values = x[order, feature]
        # cumulative sum of w*y over samples with value <= candidate
        prefix = np.cumsum(signed[order])

        # Threshold between position j and j+1 is only valid where the
        # value actually changes; also allow "before everything".
        # Error for polarity +1 (predict +1 when value > thr):
        #   err(j) = sum_{i<=j, y=+1} w + sum_{i>j, y=-1} w
        #          = P(j) + (N_total - N(j))
        # With prefix = cumsum(w*y) = P(j) - N(j) and
        # cumw = cumsum(w) = P(j) + N(j):
        #   P(j) = (cumw + prefix) / 2, N(j) = (cumw - prefix) / 2
        cumw = np.cumsum(weights[order])
        total_w = cumw[-1]
        total_negative = total_w - total_positive

        p_j = (cumw + prefix) / 2.0
        n_j = (cumw - prefix) / 2.0
        err_pos = p_j + (total_negative - n_j)  # polarity +1
        err_neg = total_w - err_pos  # polarity -1 flips every prediction

        distinct = np.empty(n, dtype=bool)
        distinct[:-1] = values[:-1] < values[1:]
        distinct[-1] = False  # threshold above the max never splits

        # "Everything is above the threshold" baseline:
        base_pos = total_negative  # predict +1 for all
        base_neg = total_positive  # predict -1 for all
        if base_pos < best_error:
            best_error = base_pos
            best_feature = feature
            best_threshold = float(values[0]) - 1.0
            best_polarity = 1
        if base_neg < best_error:
            best_error = base_neg
            best_feature = feature
            best_threshold = float(values[0]) - 1.0
            best_polarity = -1

        if distinct.any():
            idx = np.flatnonzero(distinct)
            pos_errors = err_pos[idx]
            neg_errors = err_neg[idx]
            j_pos = idx[int(np.argmin(pos_errors))]
            j_neg = idx[int(np.argmin(neg_errors))]
            if err_pos[j_pos] < best_error:
                best_error = float(err_pos[j_pos])
                best_feature = feature
                best_threshold = float(
                    (values[j_pos] + values[j_pos + 1]) / 2.0
                )
                best_polarity = 1
            if err_neg[j_neg] < best_error:
                best_error = float(err_neg[j_neg])
                best_feature = feature
                best_threshold = float(
                    (values[j_neg] + values[j_neg + 1]) / 2.0
                )
                best_polarity = -1

    stump = DecisionStump(
        feature=best_feature,
        threshold=best_threshold,
        polarity=best_polarity,
    )
    return stump, float(best_error)
