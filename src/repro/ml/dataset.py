"""ML dataset assembly: per-session feature snapshots at request counts.

The paper builds "eight classifiers at multiples of 20 requests ...
calculating the attributes of the first 20 requests", over CAPTCHA-
labelled sessions.  :class:`SessionExample` carries one session's label
and its attribute snapshots at each checkpoint; sessions shorter than a
checkpoint contribute their whole-session attributes (the stream simply
ran out — the online deployment would face exactly the same truncation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.features import N_ATTRIBUTES

HUMAN = 1
ROBOT = -1

DEFAULT_CHECKPOINTS: tuple[int, ...] = (20, 40, 60, 80, 100, 120, 140, 160)


@dataclass
class SessionExample:
    """One labelled session with snapshots at the standard checkpoints."""

    session_id: str
    label: int
    kind: str = ""
    snapshots: dict[int, np.ndarray] = field(default_factory=dict)
    final: np.ndarray | None = None
    request_count: int = 0

    def __post_init__(self) -> None:
        if self.label not in (HUMAN, ROBOT):
            raise ValueError("label must be +1 (human) or -1 (robot)")

    def at(self, checkpoint: int) -> np.ndarray:
        """Features over the first ``checkpoint`` requests (or all)."""
        vector = self.snapshots.get(checkpoint)
        if vector is not None:
            return vector
        if self.final is not None:
            return self.final
        raise KeyError(
            f"session {self.session_id} has no snapshot at {checkpoint} "
            "and no final vector"
        )


@dataclass
class Dataset:
    """A bag of labelled session examples."""

    examples: list[SessionExample] = field(default_factory=list)
    checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def humans(self) -> list[SessionExample]:
        """Human-labelled examples."""
        return [e for e in self.examples if e.label == HUMAN]

    @property
    def robots(self) -> list[SessionExample]:
        """Robot-labelled examples."""
        return [e for e in self.examples if e.label == ROBOT]

    def class_balance(self) -> tuple[int, int]:
        """(humans, robots) counts."""
        return len(self.humans), len(self.robots)


def build_matrix(
    examples: list[SessionExample], checkpoint: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack examples into (X, y) at one checkpoint."""
    if not examples:
        return np.zeros((0, N_ATTRIBUTES)), np.zeros(0)
    x = np.stack([example.at(checkpoint) for example in examples])
    y = np.array([example.label for example in examples], dtype=np.float64)
    return x, y
