"""Workload generation and experiment drivers.

:class:`~repro.workload.session_run.SessionRunner` drives one agent
against a proxy handler on a virtual clock
(:class:`~repro.workload.session_run.SessionCursor` exposes the same
session one fetch at a time for the interleaved scheduler);
:class:`~repro.workload.engine.WorkloadEngine` replays a whole population
mix through a proxy network — sequentially or interleaved by global
event time — labelling sessions with ground truth and
running the optional CAPTCHA funnel; :mod:`repro.workload.mixes` holds the
calibrated populations (most importantly ``CODEEN_WEEK``, the Table 1
census); :mod:`repro.workload.codeen` and
:mod:`repro.workload.complaints` are the §3 experiment drivers.
"""

from repro.workload.codeen import CodeenWeekExperiment, CodeenWeekResult
from repro.workload.complaints import (
    ComplaintConfig,
    ComplaintTimeline,
    MonthlyComplaints,
)
from repro.workload.engine import WorkloadConfig, WorkloadEngine, WorkloadResult
from repro.workload.mixes import (
    CODEEN_WEEK,
    ML_STUDY,
    SMOKE,
    mix_by_name,
)
from repro.workload.results import SessionCensus
from repro.workload.session_run import (
    SessionCursor,
    SessionRecord,
    SessionRunner,
)

__all__ = [
    "CODEEN_WEEK",
    "CodeenWeekExperiment",
    "CodeenWeekResult",
    "ComplaintConfig",
    "ComplaintTimeline",
    "ML_STUDY",
    "MonthlyComplaints",
    "SMOKE",
    "SessionCensus",
    "SessionCursor",
    "SessionRecord",
    "SessionRunner",
    "WorkloadConfig",
    "WorkloadEngine",
    "WorkloadResult",
    "mix_by_name",
]
