"""Named population mixes.

``CODEEN_WEEK`` is the calibrated census behind Table 1 (weights are
session-share percentages; DESIGN.md §6 explains the calibration: the
fractions were chosen so the *measured* detector outputs land near the
paper's, but every number is produced by running the real pipeline).

The derivation from Table 1's targets:

* mouse movement 22.3%      -> ~23.6% JS-enabled human browsers (a
  fraction never move the mouse within an observed session);
* executed JavaScript 27.1% -> the JS humans plus ~4.6% headless-engine
  bots (of which 0.7% forge their UA header -> "browser type mismatch");
* downloaded CSS 28.9%      -> everyone above plus ~1.0% JS-disabled
  humans and ~0.6% off-line browsers (the bound-gap population);
* hidden links 1.0%         -> blind crawlers;
* the remaining ~70% are HTML-only robots (crawlers, harvesters,
  referrer spammers, click fraud, vulnerability scanners, zombies).
"""

from __future__ import annotations

from repro.agents.base import Agent
from repro.agents.behavior import (
    BehaviorProfile,
    JS_DISABLED_BROWSER,
    PASSIVE_READER,
    STANDARD_BROWSER,
)
from repro.agents.browser import BrowserAgent, BrowserConfig
from repro.agents.population import AgentSpec, PopulationMix
from repro.agents.robots import (
    BlindFetcherBot,
    ClickFraudBot,
    CrawlerBot,
    DdosZombie,
    EmailHarvesterBot,
    EngineBot,
    HotlinkLeechBot,
    OfflineBrowserBot,
    ReferrerSpammerBot,
    VulnScannerBot,
)
from repro.http.useragent import known_browser_agents, known_robot_agents
from repro.util.rng import RngStream

_BROWSER_UAS = tuple(ua.string for ua in known_browser_agents())
_ROBOT_UAS = tuple(ua.string for ua in known_robot_agents())
_OFFLINE_UAS = ("WebZIP/6.0", "Wget/1.10.2")


def _draw_mouse_profile(rng: RngStream) -> BehaviorProfile:
    """Per-user mouse activity: most users move immediately, a middle
    group sometimes, and a small passive-reader tail (Figure 2's tail)."""
    roll = rng.random()
    if roll < 0.84:
        return BehaviorProfile(mouse_move_probability=0.95)
    if roll < 0.94:
        return BehaviorProfile(mouse_move_probability=0.55)
    return PASSIVE_READER


def _human_factory(profile_name: str):
    """Factory for human browsers; the profile is drawn per agent so the
    mouse-activity distribution has the heavy tail Figure 2 shows."""

    def build(
        client_ip: str, user_agent: str, rng: RngStream, entry_url: str
    ) -> Agent:
        if profile_name == "js":
            profile = _draw_mouse_profile(rng)
        else:
            profile = JS_DISABLED_BROWSER
        return BrowserAgent(
            client_ip, user_agent, rng, entry_url, profile=profile
        )

    return build


def _bot_factory(cls, **kwargs):
    def build(
        client_ip: str, user_agent: str, rng: RngStream, entry_url: str
    ) -> Agent:
        return cls(client_ip, user_agent, rng, entry_url, **kwargs)

    return build


def _engine_factory(forge_header: bool):
    def build(
        client_ip: str, user_agent: str, rng: RngStream, entry_url: str
    ) -> Agent:
        return EngineBot(
            client_ip, user_agent, rng, entry_url, forge_header=forge_header
        )

    return build


CODEEN_WEEK = PopulationMix(
    "codeen_week",
    [
        AgentSpec("human_js", 23.6, _human_factory("js"), _BROWSER_UAS),
        AgentSpec("human_nojs", 1.0, _human_factory("nojs"), _BROWSER_UAS),
        AgentSpec(
            "offline_browser", 0.6,
            _bot_factory(OfflineBrowserBot), _OFFLINE_UAS,
        ),
        AgentSpec(
            "engine_bot", 3.9, _engine_factory(forge_header=False),
            _BROWSER_UAS,
        ),
        AgentSpec(
            "engine_bot_forged", 0.7, _engine_factory(forge_header=True),
            _BROWSER_UAS,
        ),
        AgentSpec(
            "crawler_hidden", 1.0,
            _bot_factory(CrawlerBot, polite=False, follow_hidden=True),
            _ROBOT_UAS,
        ),
        AgentSpec(
            "crawler", 19.0, _bot_factory(CrawlerBot), _ROBOT_UAS
        ),
        AgentSpec(
            "email_harvester", 12.0,
            _bot_factory(EmailHarvesterBot), _ROBOT_UAS,
        ),
        AgentSpec(
            "referrer_spammer", 18.5,
            _bot_factory(ReferrerSpammerBot), _BROWSER_UAS,
        ),
        AgentSpec(
            "click_fraud", 10.0, _bot_factory(ClickFraudBot), _BROWSER_UAS
        ),
        AgentSpec(
            "vuln_scanner", 6.0, _bot_factory(VulnScannerBot), _BROWSER_UAS
        ),
        AgentSpec(
            "ddos_zombie", 3.3,
            _bot_factory(DdosZombie, max_requests=120), _BROWSER_UAS,
        ),
    ],
)

# A fast mix for smoke tests: one of each interesting behaviour.
SMOKE = PopulationMix(
    "smoke",
    [
        AgentSpec("human_js", 4.0, _human_factory("js"), _BROWSER_UAS),
        AgentSpec("human_nojs", 1.0, _human_factory("nojs"), _BROWSER_UAS),
        AgentSpec("crawler", 2.0, _bot_factory(CrawlerBot), _ROBOT_UAS),
        AgentSpec(
            "crawler_hidden", 1.0,
            _bot_factory(CrawlerBot, polite=False, follow_hidden=True),
            _ROBOT_UAS,
        ),
        AgentSpec(
            "engine_bot", 1.0, _engine_factory(forge_header=True),
            _BROWSER_UAS,
        ),
        AgentSpec(
            "blind_fetcher", 1.0, _bot_factory(BlindFetcherBot), _BROWSER_UAS
        ),
        AgentSpec(
            "referrer_spammer", 2.0,
            _bot_factory(ReferrerSpammerBot), _BROWSER_UAS,
        ),
    ],
)

# The §4.2 study population: CAPTCHA-labelled humans vs the robot soup,
# at the paper's ~26/74 class balance.  Human sessions are longer here
# (the study needs up to 160 requests per session).
_LONG_BROWSE = BrowserConfig(
    min_pages=4,
    max_pages=18,
    warmup_probability=0.7,
    warmup_max=14,
    long_warmup_probability=0.12,
)


def _long_human_factory():
    def build(
        client_ip: str, user_agent: str, rng: RngStream, entry_url: str
    ) -> Agent:
        return BrowserAgent(
            client_ip, user_agent, rng, entry_url,
            profile=_draw_mouse_profile(rng), config=_LONG_BROWSE,
        )

    return build


ML_STUDY = PopulationMix(
    "ml_study",
    [
        AgentSpec("human_js", 24.4, _long_human_factory(), _BROWSER_UAS),
        AgentSpec("human_nojs", 1.3, _human_factory("nojs"), _BROWSER_UAS),
        AgentSpec(
            "crawler", 11.0,
            _bot_factory(CrawlerBot, max_requests=180), _ROBOT_UAS,
        ),
        AgentSpec(
            "image_crawler", 7.0,
            _bot_factory(CrawlerBot, max_requests=180, fetch_images=True),
            _ROBOT_UAS,
        ),
        AgentSpec(
            "hotlink_leech", 6.0,
            _bot_factory(HotlinkLeechBot, max_requests=120), _BROWSER_UAS,
        ),
        AgentSpec(
            "email_harvester", 10.0,
            _bot_factory(EmailHarvesterBot, max_requests=180), _ROBOT_UAS,
        ),
        AgentSpec(
            "referrer_spammer", 16.0,
            _bot_factory(ReferrerSpammerBot, max_requests=180), _BROWSER_UAS,
        ),
        AgentSpec(
            "click_fraud", 9.0,
            _bot_factory(ClickFraudBot, max_requests=180), _BROWSER_UAS,
        ),
        AgentSpec(
            "vuln_scanner", 6.0,
            _bot_factory(VulnScannerBot, max_requests=180), _BROWSER_UAS,
        ),
        AgentSpec(
            "offline_browser", 3.0,
            _bot_factory(OfflineBrowserBot, max_requests=200), _OFFLINE_UAS,
        ),
        AgentSpec(
            "engine_bot", 5.0, _engine_factory(forge_header=False),
            _BROWSER_UAS,
        ),
        AgentSpec(
            "ddos_zombie", 3.3,
            _bot_factory(DdosZombie, max_requests=200), _BROWSER_UAS,
        ),
    ],
)

_MIXES = {
    mix.name: mix for mix in (CODEEN_WEEK, SMOKE, ML_STUDY)
}


def mix_by_name(name: str) -> PopulationMix:
    """Look up a named mix."""
    try:
        return _MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown mix {name!r}; available: {sorted(_MIXES)}"
        ) from None
