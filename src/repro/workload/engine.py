"""The workload engine: replay a population through a proxy network.

Sessions are sampled from a mix and given start times by an
:class:`~repro.trace.arrival.ArrivalProfile`.  Two driving modes:

* ``"sequential"`` (the seed behaviour) runs sessions one at a time —
  per-session results are identical to a full interleave because the
  tracker keys state by <IP, User-Agent>, but the network never sees a
  realistic arrival order;
* ``"interleaved"`` coroutine-steps every live session by next-event
  time (:class:`~repro.trace.interleave.InterleavedScheduler`), so the
  proxy handles requests in true global timestamp order — required for
  burst/diurnal arrival profiles and honest rate-limit behaviour.

Both modes attach ground-truth labels to the tracker's session state —
evaluation metadata the detectors never read — run the optional CAPTCHA
funnel, and invoke :meth:`ProxyNetwork.housekeeping` periodically so
idle-session rotation and probe-table expiry actually happen during the
replay rather than only at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.base import SessionBudget
from repro.agents.population import PopulationMix
from repro.captcha.service import CaptchaConfig, CaptchaService
from repro.captcha.challenge import CaptchaOutcome
from repro.ml.dataset import Dataset, SessionExample
from repro.obs.spans import SpanConfig
from repro.proxy.network import ProxyNetwork
from repro.trace.arrival import ArrivalProfile, UniformArrival
from repro.util.rng import RngStream
from repro.util.timeutil import WEEK
from repro.workload.results import (
    SessionCensus,
    WorkloadResult,
    apply_session_identities,
    session_identities,
)
from repro.workload.session_run import SessionRecord, SessionRunner

__all__ = [
    "SessionCensus",
    "WorkloadConfig",
    "WorkloadEngine",
    "WorkloadResult",
]

_MODES = ("sequential", "interleaved", "pipelined")


@dataclass(frozen=True)
class WorkloadConfig:
    """Size and options of one workload replay.

    ``housekeeping_interval`` is the virtual-seconds period between
    :meth:`ProxyNetwork.housekeeping` sweeps (0 disables them);
    ``arrival`` shapes session start times, but non-uniform profiles only
    make sense with ``mode="interleaved"`` — the sequential driver cannot
    overlap sessions, so a flash crowd degenerates back into a queue.
    ``shards`` > 0 hash-partitions each node's detection state into that
    many shards before traffic starts (0 keeps the network as built);
    shard count never changes results, only the scaling architecture.

    ``mode="pipelined"`` admits sessions through the ingress subsystem:
    sessions are routed by their client IP's sticky node onto per-lane
    queues (``queue_depth`` bounds each, None = unbounded) and every
    lane drives its own sessions in event-time order on the configured
    ``executor`` — ``serial``, ``thread``, or a true-parallel
    ``process`` pool.  Census, summary and verdicts are identical to
    ``mode="interleaved"``; only within-node request order is defined,
    which is exactly the order that affects any state.
    """

    n_sessions: int = 1000
    duration: float = WEEK
    collect_features: bool = False
    captcha_enabled: bool = True
    captcha: CaptchaConfig = field(default_factory=CaptchaConfig)
    budget: SessionBudget = field(default_factory=SessionBudget)
    mode: str = "sequential"
    arrival: ArrivalProfile = field(default_factory=UniformArrival)
    housekeeping_interval: float = 600.0
    shards: int = 0
    shard_workers: int | None = None
    executor: str = "serial"
    queue_depth: int | None = None
    #: Pipelined mode only: shed (and count) whole sessions instead of
    #: blocking when a lane queue is full.  Needs a bounded queue.
    shed: bool = False
    #: Pipelined mode only: delay-budget admission with per-IP fairness
    #: (``ShedPolicy.ADAPTIVE``); an :class:`AdaptiveConfig` or None.
    adaptive: object | None = None
    #: Pipelined lane granularity: 1 = one lane per node; the detection
    #: shard count = one lane per :class:`~repro.proxy.node.NodeShard`.
    lanes_per_node: int = 1
    #: Virtual-time flight-recorder sampling interval (None = off).
    #: Works in every mode: sequential/interleaved runs tick per-node
    #: recorders per handled request; pipelined lanes record their own.
    flight_interval: float | None = None
    #: Tail-sampling budgets for causal span tracing (None = off).
    #: Pipelined mode only — the other drivers interleave all nodes'
    #: requests on one call stack, which a per-lane tracer cannot
    #: represent.
    spans: SpanConfig | None = None

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.housekeeping_interval < 0:
            raise ValueError("housekeeping_interval must be non-negative")
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1 when given")
        from repro.ingress.executors import EXECUTOR_KINDS

        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.executor!r}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(
                "queue_depth must be >= 1 (or None for unbounded)"
            )
        if self.lanes_per_node < 1:
            raise ValueError("lanes_per_node must be >= 1")
        if self.lanes_per_node > 1 and self.mode != "pipelined":
            raise ValueError(
                "lanes_per_node > 1 requires mode='pipelined'"
            )
        if self.flight_interval is not None and self.flight_interval <= 0:
            raise ValueError(
                "flight_interval must be positive (or None to disable)"
            )
        if self.spans is not None and self.mode != "pipelined":
            raise ValueError("span tracing requires mode='pipelined'")
        if self.shed or self.adaptive is not None:
            if self.mode != "pipelined":
                raise ValueError(
                    "load shedding requires mode='pipelined'"
                )
            if self.shed and self.adaptive is not None:
                raise ValueError(
                    "shed and adaptive are mutually exclusive shedding "
                    "policies"
                )
        if self.shed and self.queue_depth is None:
            raise ValueError(
                "shed with queue_depth=None can never shed (an "
                "unbounded queue never refuses): set a queue_depth"
            )
        if self.adaptive is not None and self.executor not in (
            "thread",
            "process",
        ):
            raise ValueError(
                "adaptive admission needs a queued executor "
                "(thread or process)"
            )


class WorkloadEngine:
    """Drives a mix through a network and collects every measurement."""

    def __init__(
        self,
        network: ProxyNetwork,
        mix: PopulationMix,
        entry_url: str,
        rng: RngStream,
        config: WorkloadConfig | None = None,
    ) -> None:
        self._network = network
        self._mix = mix
        self._entry_url = entry_url
        self._rng = rng
        self._config = config or WorkloadConfig()

    @property
    def network(self) -> ProxyNetwork:
        """The proxy network this engine drives (tap point for recording)."""
        return self._network

    @property
    def config(self) -> WorkloadConfig:
        """The replay parameters."""
        return self._config

    def run(self) -> WorkloadResult:
        """Replay the whole workload and reduce the results."""
        cfg = self._config
        if cfg.shards:
            self._network.shard_detection(
                cfg.shards, max_workers=cfg.shard_workers
            )
        try:
            return self._run()
        finally:
            # Release shard-executor threads the run may have spawned;
            # lazily recreated if the caller keeps using the network.
            if cfg.shard_workers:
                self._network.close_detection()

    def _run(self) -> WorkloadResult:
        cfg = self._config
        agents = self._mix.sample_many(
            self._rng.split("population"), self._entry_url, cfg.n_sessions
        )
        starts = cfg.arrival.sample(
            self._rng.split("starts"), len(agents), cfg.duration
        )

        if cfg.mode == "pipelined":
            return self._run_pipelined(agents, starts)

        captcha = CaptchaService(cfg.captcha)
        captcha_rng = self._rng.split("captcha")
        examples: list[SessionExample] = []

        def session_done(record: SessionRecord) -> None:
            self._annotate_session(record, captcha, captcha_rng)
            if record.example is not None:
                examples.append(record.example)

        recorders = self._flight_recorders()
        if cfg.mode == "interleaved":
            records = self._run_interleaved(agents, starts, session_done)
        else:
            records = self._run_sequential(agents, starts, session_done)

        sessions = self._network.finalize_sessions()
        # Backfill sessions that idle-rotated before their live
        # annotation pass could label them.
        apply_session_identities(sessions, session_identities(records))
        summary = self._network.session_sets().summary()
        flight = []
        if recorders is not None:
            from repro.obs.flight import merge_flight

            flight = merge_flight(
                [recorder.frames for recorder in recorders],
                [
                    node.metrics_snapshot()
                    for node in self._network.nodes
                ],
            )
            self._handler = None
        return WorkloadResult(
            records=records,
            sessions=sessions,
            summary=summary,
            stats=self._network.stats(),
            latencies=self._network.detection_latencies(),
            dataset=Dataset(examples=examples),
            captcha=captcha,
            metrics=self._metrics_snapshot(captcha),
            flight=flight,
        )

    def _flight_recorders(self):
        """Per-node flight recorders for the non-pipelined drivers.

        Installs a handler wrapper (``self._handler``) that ticks the
        owning node's recorder on each request's event timestamp before
        handling it — the same absolute sampling grid pipelined lanes
        record on.  Returns None (and leaves ``self._handler`` as the
        plain network handler) when no flight interval is configured.
        """
        from repro.obs.flight import FlightRecorder

        cfg = self._config
        self._handler = self._network.handle
        if not cfg.flight_interval:
            return None
        recorders = [
            FlightRecorder(
                cfg.flight_interval,
                node.metrics,
                snapshot=node.metrics_snapshot,
            )
            for node in self._network.nodes
        ]

        def handler(request):
            recorders[
                self._network.node_index_for(request.client_ip)
            ].tick(request.timestamp)
            return self._network.handle(request)

        self._handler = handler
        return recorders

    def _metrics_snapshot(self, captcha: CaptchaService):
        """Network metrics plus the engine-level CAPTCHA funnel.

        The pipelined mode exports the funnel inside each lane worker;
        the sequential/interleaved drivers own the funnel here, so its
        counters are collected into a side registry and merged in.
        """
        from repro.ingress.workers import export_captcha_stats
        from repro.obs.registry import MetricsRegistry, merge_snapshots

        funnel = MetricsRegistry()
        export_captcha_stats(funnel, captcha.stats)
        return merge_snapshots(
            [self._network.metrics_snapshot(), funnel.snapshot()]
        )

    # -- driving modes ------------------------------------------------------

    def _run_sequential(
        self, agents, starts, session_done
    ) -> list[SessionRecord]:
        cfg = self._config
        runner = SessionRunner(
            self._handler,
            budget=cfg.budget,
            collect_features=cfg.collect_features,
        )
        records: list[SessionRecord] = []
        # Session end times are not monotone (an early long session can
        # outlive many later ones), so sweeps key off the furthest point
        # the virtual clock has reached — a raw ended_at comparison
        # would let one long session starve housekeeping for the rest
        # of the run.
        last_sweep = 0.0
        clock = 0.0
        for agent, start in zip(agents, starts):
            record = runner.run(agent, start)
            records.append(record)
            session_done(record)
            clock = max(clock, record.ended_at)
            if (
                cfg.housekeeping_interval
                and clock - last_sweep >= cfg.housekeeping_interval
            ):
                self._network.housekeeping(clock)
                last_sweep = clock
        return records

    def _run_pipelined(self, agents, starts) -> WorkloadResult:
        """Admit sessions through the ingress; lanes drive their own.

        Ground-truth annotation and the CAPTCHA funnel run inside the
        lane workers (per-IP RNG splits make the outcomes identical to
        the other modes), so this path assembles the result purely from
        the merged lane outputs — which is what lets the ``process``
        executor run each node in a separate interpreter.
        """
        # Deferred import: the ingress package reaches back into
        # workload machinery (session records, the scheduler).
        from repro.ingress.pipeline import IngressConfig, IngressPipeline
        from repro.ingress.queues import ShedPolicy
        from repro.ingress.workers import SESSION_EVENT, WorkloadLaneWorker

        cfg = self._config
        captcha_rng = self._rng.split("captcha")
        workers = []
        for node in self._network.nodes:
            # Per-IP captcha splits make outcomes identical whichever
            # lane state (whole node or single shard) runs the session.
            for state in node.lane_states(cfg.lanes_per_node):
                workers.append(
                    WorkloadLaneWorker(
                        len(workers),
                        state,
                        budget=cfg.budget,
                        collect_features=cfg.collect_features,
                        housekeeping_interval=cfg.housekeeping_interval,
                        captcha_enabled=cfg.captcha_enabled,
                        captcha_config=cfg.captcha,
                        captcha_rng=captcha_rng,
                        taps=self._network.taps,
                        flight_interval=cfg.flight_interval,
                        spans=cfg.spans,
                    )
                )
        pipeline = IngressPipeline(
            self._network,
            workers,
            IngressConfig(
                executor=cfg.executor,
                queue_depth=cfg.queue_depth,
                policy=(
                    ShedPolicy.ADAPTIVE
                    if cfg.adaptive is not None
                    else (
                        ShedPolicy.SHED if cfg.shed else ShedPolicy.BLOCK
                    )
                ),
                adaptive=cfg.adaptive,
                housekeeping_interval=cfg.housekeeping_interval,
                lanes_per_node=cfg.lanes_per_node,
                flight_interval=cfg.flight_interval,
                spans=cfg.spans,
            ),
        )
        for index, (agent, start) in enumerate(zip(agents, starts)):
            pipeline.tick(start)
            pipeline.submit(
                (SESSION_EVENT, index, agent, start), agent.client_ip
            )
        ingress = pipeline.close()

        indexed_records = sorted(
            (pair for lane in ingress.lanes for pair in lane.records or ()),
            key=lambda pair: pair[0],
        )
        records = [record for _index, record in indexed_records]
        examples = [
            example
            for _index, example in sorted(
                (
                    pair
                    for lane in ingress.lanes
                    for pair in lane.examples or ()
                ),
                key=lambda pair: pair[0],
            )
        ]
        captcha = CaptchaService(cfg.captcha)
        for lane in ingress.lanes:
            if lane.captcha_stats is not None:
                captcha.stats.absorb(lane.captcha_stats)

        sessions = ingress.sessions
        apply_session_identities(sessions, session_identities(records))
        return WorkloadResult(
            records=records,
            sessions=sessions,
            summary=ingress.session_sets().summary(),
            stats=ingress.stats,
            latencies=ingress.latencies,
            dataset=Dataset(examples=examples),
            captcha=captcha,
            metrics=ingress.metrics,
            flight=ingress.flight,
            spans=ingress.spans,
            overload=ingress.overload,
        )

    def _run_interleaved(
        self, agents, starts, session_done
    ) -> list[SessionRecord]:
        # Imported here: repro.trace.interleave drives sessions via
        # repro.workload.session_run, so a module-level import would be
        # circular through the two packages' __init__ modules.
        from repro.trace.interleave import InterleavedScheduler

        cfg = self._config
        scheduler = InterleavedScheduler(
            self._handler,
            budget=cfg.budget,
            collect_features=cfg.collect_features,
            housekeeping=self._network.housekeeping,
            housekeeping_interval=cfg.housekeeping_interval,
        )
        return scheduler.run(agents, starts, on_session_end=session_done)

    # -- annotation ---------------------------------------------------------

    def _annotate_session(
        self,
        record: SessionRecord,
        captcha: CaptchaService,
        captcha_rng: RngStream,
    ) -> None:
        """Attach ground truth and run the CAPTCHA funnel for one session.

        Runs the moment a session ends — its tracker state is still live
        then, in either driving mode.  The CAPTCHA stream is split per
        client IP, so outcomes are independent of session ordering.
        """
        node = self._network.node_for(record.client_ip)
        state = node.detection.tracker.get(
            record.client_ip, record.user_agent
        )
        if state is None:
            return
        state.true_label = record.true_label
        state.agent_kind = record.agent_kind

        if self._config.captcha_enabled:
            outcome = captcha.run_for_session(
                captcha_rng.split(f"captcha-{record.client_ip}"),
                is_human=record.true_label == "human",
            )
            if outcome is CaptchaOutcome.PASSED:
                node.detection.note_captcha(state, True, record.ended_at)
            elif outcome is CaptchaOutcome.FAILED:
                node.detection.note_captcha(state, False, record.ended_at)
