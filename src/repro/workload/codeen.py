"""The CoDeeN-week experiment: Table 1 and the §3.1 headline numbers.

One call builds the whole deployment — synthetic site, origin server,
multi-node proxy network with instrumentation and detection — replays a
scaled week of the ``CODEEN_WEEK`` population through it, and reduces the
result to the Table 1 census, the human-fraction bounds, the CAPTCHA
cross-check (what fraction of CAPTCHA passers ran JavaScript / fetched
CSS) and the Figure 2 latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.population import PopulationMix
from repro.detection.online import DetectionLatency
from repro.detection.session import SessionState
from repro.detection.set_algebra import SetAlgebraSummary
from repro.instrument.rewriter import InstrumentConfig
from repro.proxy.network import NetworkStats, ProxyNetwork
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.util.timeutil import WEEK
from repro.workload.engine import WorkloadConfig, WorkloadEngine, WorkloadResult
from repro.workload.mixes import CODEEN_WEEK

#: The paper observed 929,922 sessions in one week; full scale is slow in
#: a simulator, so experiments default to a fraction and report both.
PAPER_TOTAL_SESSIONS = 929_922


@dataclass(frozen=True)
class CodeenWeekConfig:
    """Experiment parameters."""

    n_sessions: int = 3000
    n_nodes: int = 4
    seed: int = 2006
    duration: float = WEEK
    site: SiteConfig = field(default_factory=SiteConfig)
    instrument: InstrumentConfig = field(default_factory=InstrumentConfig)
    collect_features: bool = False
    #: Virtual-time flight-recorder sampling interval (None = off);
    #: forwarded to the workload engine so experiment CLI runs can
    #: archive overload timelines next to their metrics snapshot.
    flight_interval: float | None = None

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if self.flight_interval is not None and self.flight_interval <= 0:
            raise ValueError(
                "flight_interval must be positive (or None to disable)"
            )


@dataclass
class CaptchaCrossCheck:
    """§3.1: behaviour of CAPTCHA passers (95.8% ran JS, 99.2% got CSS)."""

    passers: int
    passers_with_js: int
    passers_with_css: int

    @property
    def js_fraction(self) -> float:
        """Fraction of passers that executed JavaScript."""
        return self.passers_with_js / self.passers if self.passers else 0.0

    @property
    def css_fraction(self) -> float:
        """Fraction of passers that fetched the beacon CSS."""
        return self.passers_with_css / self.passers if self.passers else 0.0

    @property
    def js_disabled_fraction(self) -> float:
        """The paper's 3.4%: passers who fetched CSS but never ran JS."""
        return max(0.0, self.css_fraction - self.js_fraction)


@dataclass
class CodeenWeekResult:
    """Everything the Table 1 experiment reports."""

    config: CodeenWeekConfig
    summary: SetAlgebraSummary
    stats: NetworkStats
    latencies: list[DetectionLatency]
    sessions: list[SessionState]
    captcha_check: CaptchaCrossCheck
    workload: WorkloadResult

    @property
    def scale(self) -> float:
        """Fraction of the paper's session count this run used."""
        return self.config.n_sessions / PAPER_TOTAL_SESSIONS


class CodeenWeekExperiment:
    """Builds and runs the full §3 deployment."""

    def __init__(
        self,
        config: CodeenWeekConfig | None = None,
        mix: PopulationMix | None = None,
    ) -> None:
        self._config = config or CodeenWeekConfig()
        self._mix = mix or CODEEN_WEEK

    @property
    def config(self) -> CodeenWeekConfig:
        """The experiment parameters."""
        return self._config

    def build_network(self, rng: RngStream) -> tuple[ProxyNetwork, str]:
        """Construct the site, origin and proxy network."""
        cfg = self._config
        website = SiteGenerator(cfg.site).generate(rng.split("site"))
        origin = OriginServer(website)
        network = ProxyNetwork(
            origins={website.host: origin},
            rng=rng.split("proxies"),
            n_nodes=cfg.n_nodes,
            instrument_config=cfg.instrument,
        )
        entry_url = f"http://{website.host}{website.home_path}"
        return network, entry_url

    def run(self) -> CodeenWeekResult:
        """Run the experiment end to end."""
        cfg = self._config
        rng = RngStream(cfg.seed, "codeen-week")
        network, entry_url = self.build_network(rng)
        engine = WorkloadEngine(
            network,
            self._mix,
            entry_url,
            rng.split("workload"),
            WorkloadConfig(
                n_sessions=cfg.n_sessions,
                duration=cfg.duration,
                collect_features=cfg.collect_features,
                flight_interval=cfg.flight_interval,
            ),
        )
        workload = engine.run()
        return CodeenWeekResult(
            config=cfg,
            summary=workload.summary,
            stats=workload.stats,
            latencies=workload.latencies,
            sessions=workload.sessions,
            captcha_check=_cross_check(workload.sessions),
            workload=workload,
        )


def _cross_check(sessions: list[SessionState]) -> CaptchaCrossCheck:
    passers = [s for s in sessions if s.passed_captcha]
    return CaptchaCrossCheck(
        passers=len(passers),
        passers_with_js=sum(1 for s in passers if s.in_js_set),
        passers_with_css=sum(1 for s in passers if s.in_css_set),
    )
