"""Drive one agent session against a proxy handler.

The runner owns the virtual clock: each yielded
:class:`~repro.agents.base.FetchAction` advances time by its think time,
becomes a concrete :class:`~repro.http.message.Request`, and the handler's
response is sent back into the agent generator.  When feature collection
is on, the runner maintains the Table 2 accumulator and snapshots it at
the standard checkpoints, producing a ready
:class:`~repro.ml.dataset.SessionExample`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.agents.base import Agent, FetchResult, SessionBudget
from repro.http.headers import Headers
from repro.http.message import Request, Response, error_response
from repro.http.uri import Url
from repro.ml.dataset import DEFAULT_CHECKPOINTS, HUMAN, ROBOT, SessionExample
from repro.ml.features import FeatureAccumulator

Handler = Callable[[Request], Response]


@dataclass
class SessionRecord:
    """Summary of one driven session."""

    client_ip: str
    user_agent: str
    agent_kind: str
    true_label: str
    started_at: float
    ended_at: float = 0.0
    requests: int = 0
    bytes_received: int = 0
    example: SessionExample | None = None

    @property
    def duration(self) -> float:
        """Virtual seconds from first to last request."""
        return max(0.0, self.ended_at - self.started_at)


class SessionRunner:
    """Runs agents to completion under a budget."""

    def __init__(
        self,
        handler: Handler,
        budget: SessionBudget | None = None,
        collect_features: bool = False,
        checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
    ) -> None:
        self._handler = handler
        self._budget = budget or SessionBudget()
        self._collect_features = collect_features
        self._checkpoints = checkpoints

    def run(self, agent: Agent, start_time: float = 0.0) -> SessionRecord:
        """Drive ``agent`` from ``start_time``; returns the session record."""
        record = SessionRecord(
            client_ip=agent.client_ip,
            user_agent=agent.user_agent,
            agent_kind=agent.kind,
            true_label=agent.true_label,
            started_at=start_time,
            ended_at=start_time,
        )
        accumulator = FeatureAccumulator() if self._collect_features else None
        example: SessionExample | None = None
        if accumulator is not None:
            example = SessionExample(
                session_id=f"{agent.client_ip}|{agent.kind}",
                label=HUMAN if agent.true_label == "human" else ROBOT,
                kind=agent.kind,
            )

        clock = start_time
        generator = agent.browse()
        try:
            action = next(generator)
        except StopIteration:
            record.example = example
            return record

        while True:
            clock += action.think_time
            request, response = self._perform(action, agent, clock)
            record.requests += 1
            record.bytes_received += response.size
            record.ended_at = clock

            if accumulator is not None and example is not None:
                accumulator.observe(request, response)
                if record.requests in self._checkpoints:
                    example.snapshots[record.requests] = accumulator.vector()

            if record.requests >= self._budget.max_requests:
                break
            if clock - start_time >= self._budget.max_duration:
                break
            try:
                action = generator.send(FetchResult(request, response))
            except StopIteration:
                break

        if example is not None and accumulator is not None:
            example.final = accumulator.vector()
            example.request_count = record.requests
        record.example = example
        return record

    def _perform(
        self, action, agent: Agent, timestamp: float
    ) -> tuple[Request, Response]:
        headers = Headers([("User-Agent", agent.user_agent)])
        if action.referer:
            headers.set("Referer", action.referer)
        for name, value in action.extra_headers:
            headers.set(name, value)
        try:
            url = Url.parse(action.url)
        except ValueError:
            # A malformed URL never leaves the client in reality; answer
            # locally so the agent's script can continue.
            fallback = Url.parse(agent.entry_url).with_path("/__bad_request__")
            request = Request(
                method=action.method,
                url=fallback,
                client_ip=agent.client_ip,
                headers=headers,
                timestamp=timestamp,
            )
            return request, error_response(400, "malformed URL")

        request = Request(
            method=action.method,
            url=url,
            client_ip=agent.client_ip,
            headers=headers,
            timestamp=timestamp,
        )
        return request, self._handler(request)
