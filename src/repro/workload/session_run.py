"""Drive agent sessions against a proxy handler.

The session machinery owns the virtual clock: each yielded
:class:`~repro.agents.base.FetchAction` advances time by its think time,
becomes a concrete :class:`~repro.http.message.Request`, and the handler's
response is sent back into the agent generator.  When feature collection
is on, the Table 2 accumulator is maintained and snapshotted at the
standard checkpoints, producing a ready
:class:`~repro.ml.dataset.SessionExample`.

Two drivers share one stepping core:

* :class:`SessionRunner` runs one agent to completion (the sequential
  engine and the unit tests);
* :class:`SessionCursor` exposes the same session one fetch at a time —
  ``next_time`` says when the pending fetch hits the proxy — so the
  interleaved scheduler (:mod:`repro.trace.interleave`) can heap-order
  many live sessions by their next event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.agents.base import Agent, FetchResult, SessionBudget
from repro.http.headers import Headers
from repro.http.message import Request, Response, error_response
from repro.http.uri import Url
from repro.ml.dataset import DEFAULT_CHECKPOINTS, HUMAN, ROBOT, SessionExample
from repro.ml.features import FeatureAccumulator

Handler = Callable[[Request], Response]


@dataclass
class SessionRecord:
    """Summary of one driven session."""

    client_ip: str
    user_agent: str
    agent_kind: str
    true_label: str
    started_at: float
    ended_at: float = 0.0
    requests: int = 0
    bytes_received: int = 0
    example: SessionExample | None = None

    @property
    def duration(self) -> float:
        """Virtual seconds from first to last request."""
        return max(0.0, self.ended_at - self.started_at)


class SessionCursor:
    """One live agent session, advanced one fetch at a time.

    Lifecycle: construct, :meth:`begin` (primes the agent; may finish it
    immediately), then :meth:`step` until it returns False.  At any point
    between steps, :attr:`next_time` is the virtual timestamp at which
    the pending fetch will reach the proxy.
    """

    def __init__(
        self,
        agent: Agent,
        start_time: float = 0.0,
        budget: SessionBudget | None = None,
        collect_features: bool = False,
        checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
    ) -> None:
        self.agent = agent
        self._budget = budget or SessionBudget()
        self._checkpoints = checkpoints
        self._start = start_time
        self._clock = start_time
        self._generator = agent.browse()
        self._action = None
        self._done = False
        self.record = SessionRecord(
            client_ip=agent.client_ip,
            user_agent=agent.user_agent,
            agent_kind=agent.kind,
            true_label=agent.true_label,
            started_at=start_time,
            ended_at=start_time,
        )
        self._accumulator = (
            FeatureAccumulator() if collect_features else None
        )
        self._example: SessionExample | None = None
        if self._accumulator is not None:
            self._example = SessionExample(
                session_id=f"{agent.client_ip}|{agent.kind}",
                label=HUMAN if agent.true_label == "human" else ROBOT,
                kind=agent.kind,
            )

    @property
    def done(self) -> bool:
        """True once the session has ended (record is final)."""
        return self._done

    @property
    def next_time(self) -> float:
        """Virtual time of the pending fetch (valid while not done)."""
        if self._action is None:
            return self._clock
        return self._clock + self._action.think_time

    def begin(self) -> bool:
        """Prime the agent generator; False when it makes no requests."""
        try:
            self._action = next(self._generator)
        except StopIteration:
            self._finish()
            return False
        return True

    def step(self, handler: Handler) -> bool:
        """Perform the pending fetch; returns False when the session ends."""
        if self._done or self._action is None:
            raise RuntimeError("step() on a finished or unprimed session")
        action = self._action
        record = self.record
        self._clock += action.think_time
        request, response = self._perform(action, handler)
        record.requests += 1
        record.bytes_received += response.size
        record.ended_at = self._clock

        if self._accumulator is not None and self._example is not None:
            self._accumulator.observe(request, response)
            if record.requests in self._checkpoints:
                self._example.snapshots[record.requests] = (
                    self._accumulator.vector()
                )

        if record.requests >= self._budget.max_requests:
            self._finish()
            return False
        if self._clock - self._start >= self._budget.max_duration:
            self._finish()
            return False
        try:
            self._action = self._generator.send(
                FetchResult(request, response)
            )
        except StopIteration:
            self._finish()
            return False
        return True

    def _finish(self) -> None:
        if self._example is not None and self._accumulator is not None:
            self._example.final = self._accumulator.vector()
            self._example.request_count = self.record.requests
        self.record.example = self._example
        self._action = None
        self._done = True

    def _perform(
        self, action, handler: Handler
    ) -> tuple[Request, Response]:
        agent = self.agent
        headers = Headers([("User-Agent", agent.user_agent)])
        if action.referer:
            headers.set("Referer", action.referer)
        for name, value in action.extra_headers:
            headers.set(name, value)
        try:
            url = Url.parse(action.url)
        except ValueError:
            # A malformed URL never leaves the client in reality; answer
            # locally so the agent's script can continue.
            fallback = Url.parse(agent.entry_url).with_path("/__bad_request__")
            request = Request(
                method=action.method,
                url=fallback,
                client_ip=agent.client_ip,
                headers=headers,
                timestamp=self._clock,
            )
            return request, error_response(400, "malformed URL")

        request = Request(
            method=action.method,
            url=url,
            client_ip=agent.client_ip,
            headers=headers,
            timestamp=self._clock,
        )
        return request, handler(request)


class SessionRunner:
    """Runs agents to completion under a budget."""

    def __init__(
        self,
        handler: Handler,
        budget: SessionBudget | None = None,
        collect_features: bool = False,
        checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
    ) -> None:
        self._handler = handler
        self._budget = budget or SessionBudget()
        self._collect_features = collect_features
        self._checkpoints = checkpoints

    def cursor(self, agent: Agent, start_time: float = 0.0) -> SessionCursor:
        """A steppable cursor configured like this runner."""
        return SessionCursor(
            agent,
            start_time=start_time,
            budget=self._budget,
            collect_features=self._collect_features,
            checkpoints=self._checkpoints,
        )

    def run(self, agent: Agent, start_time: float = 0.0) -> SessionRecord:
        """Drive ``agent`` from ``start_time``; returns the session record."""
        cursor = self.cursor(agent, start_time)
        if cursor.begin():
            while cursor.step(self._handler):
                pass
        return cursor.record
