"""Identifier generation: sequential ids and random hex keys.

The paper's human-activity beacon uses a random key ``k`` in
``[0, 2^128 - 1]`` per served page; :func:`random_hex_key` produces those
from a supplied :class:`~repro.util.rng.RngStream` so the whole experiment
stays deterministic.
"""

from __future__ import annotations

import itertools

from repro.util.rng import RngStream


def random_hex_key(rng: RngStream, bits: int = 128) -> str:
    """Return a random ``bits``-bit key as a zero-padded lowercase hex string."""
    if bits <= 0 or bits % 4 != 0:
        raise ValueError(f"bits must be a positive multiple of 4, got {bits}")
    width = bits // 4
    return format(rng.getrandbits(bits), f"0{width}x")


def random_numeric_key(rng: RngStream, digits: int = 10) -> str:
    """Return a random fixed-width decimal key (as used in the paper's example URLs)."""
    if digits <= 0:
        raise ValueError(f"digits must be positive, got {digits}")
    return format(rng.randrange(10**digits), f"0{digits}d")


class IdGenerator:
    """Sequential ids with a prefix: ``sess-000001``, ``sess-000002``, ..."""

    def __init__(self, prefix: str, width: int = 6) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self._prefix = prefix
        self._width = width
        self._counter = itertools.count(1)

    def next(self) -> str:
        """Return the next id in sequence."""
        return f"{self._prefix}-{next(self._counter):0{self._width}d}"
