"""Small statistics helpers: summaries, percentiles, empirical CDFs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} p99={self.p99:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    if not values:
        raise ValueError("summarize of empty sequence")
    mu = mean(values)
    if len(values) > 1:
        var = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    else:
        var = 0.0
    return SummaryStats(
        count=len(values),
        mean=mu,
        std=math.sqrt(var),
        minimum=float(min(values)),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=float(max(values)),
    )


class Ecdf:
    """Empirical cumulative distribution function of a sample.

    Used for Figure 2 ("CDF of # of requests needed to detect humans"):
    ``Ecdf(samples).fraction_at_or_below(20)`` answers "what fraction of
    sessions were detected within 20 requests".
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted = sorted(float(s) for s in samples)
        if not self._sorted:
            raise ValueError("Ecdf needs at least one sample")

    @property
    def n(self) -> int:
        """Number of samples."""
        return len(self._sorted)

    @property
    def values(self) -> list[float]:
        """Sorted sample values."""
        return list(self._sorted)

    def fraction_at_or_below(self, x: float) -> float:
        """F(x): fraction of samples <= x."""
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Smallest sample value v such that F(v) >= q, for q in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        index = max(0, math.ceil(q * len(self._sorted)) - 1)
        return self._sorted[index]

    def points(self) -> list[tuple[float, float]]:
        """The (x, F(x)) step points, one per distinct sample value."""
        out: list[tuple[float, float]] = []
        n = len(self._sorted)
        for i, v in enumerate(self._sorted):
            if i + 1 < n and self._sorted[i + 1] == v:
                continue
            out.append((v, (i + 1) / n))
        return out
