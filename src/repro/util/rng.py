"""Deterministic, splittable random number streams.

The simulation is made of many independently stochastic components (site
generation, each agent's behaviour, the instrumenter's key draws, CAPTCHA
outcomes, ...).  If they all shared one generator, adding a single draw in
one component would shift every number downstream, making experiments
fragile.  Instead each component receives its own :class:`RngStream`,
derived from a parent stream and a string label; the derivation is a stable
hash, so streams are independent of the order in which they are created.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def _derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and ``label`` via BLAKE2b."""
    digest = hashlib.blake2b(
        label.encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(16, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class RngStream:
    """A labelled, splittable wrapper around :class:`random.Random`.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  Streams with equal ``(seed, label)``
        produce identical sequences.
    label:
        Human-readable provenance of the stream (for repr/debugging).
    """

    __slots__ = ("_label", "_random", "_seed")

    def __init__(self, seed: int, label: str = "root") -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = seed & ((1 << 128) - 1)
        self._label = label
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    @property
    def label(self) -> str:
        """The provenance label of this stream."""
        return self._label

    def split(self, label: str) -> "RngStream":
        """Return a child stream derived from this stream's seed + ``label``.

        Splitting does not consume randomness from the parent and does not
        depend on how many draws the parent has made.
        """
        return RngStream(_derive_seed(self._seed, label), f"{self._label}/{label}")

    # -- scalar draws ----------------------------------------------------

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._random.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with ``bits`` random bits."""
        return self._random.getrandbits(bits)

    def randrange(self, stop: int) -> int:
        """Uniform integer in ``[0, stop)``."""
        return self._random.randrange(stop)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p`` (clamped to [0, 1])."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._random.random() < p

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (mean must be > 0)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal(self, median: float, sigma: float) -> float:
        """Log-normal variate parameterised by its *median* and shape sigma."""
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return self._random.lognormvariate(math.log(median), sigma)

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Pareto variate with shape ``alpha``, scaled so the minimum is as given."""
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        return minimum * (1.0 + self._random.paretovariate(alpha) - 1.0)

    def poisson(self, lam: float) -> int:
        """Poisson variate (Knuth for small lambda, normal approx for large)."""
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if lam == 0:
            return 0
        if lam > 60.0:
            value = int(round(self._random.gauss(lam, math.sqrt(lam))))
            return max(0, value)
        threshold = math.exp(-lam)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def geometric(self, p: float) -> int:
        """Geometric variate: number of trials until first success (>= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        if p == 1.0:
            return 1
        u = self._random.random()
        return 1 + int(math.log1p(-u) / math.log1p(-p))

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mu, sigma)

    # -- collection draws ------------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice from ``items`` with the given non-negative weights."""
        if len(items) != len(weights):
            raise ValueError(
                f"items ({len(items)}) and weights ({len(weights)}) differ in length"
            )
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(items, weights=weights, k=1)[0]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items without replacement."""
        return self._random.sample(items, k)

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new shuffled list of ``items`` (input is not modified)."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngStream(seed={self._seed & _MASK_64:#x}..., label={self._label!r})"
