"""Shared utilities: deterministic randomness, statistics, time, ids.

Every stochastic component in the reproduction draws from a labelled
:class:`~repro.util.rng.RngStream` so that experiments are reproducible
bit-for-bit from a single seed.
"""

from repro.util.ids import IdGenerator, random_hex_key
from repro.util.rng import RngStream
from repro.util.stats import (
    Ecdf,
    SummaryStats,
    mean,
    percentile,
    summarize,
)
from repro.util.timeutil import (
    HOUR,
    MINUTE,
    SECOND,
    format_duration,
    parse_duration,
)

__all__ = [
    "Ecdf",
    "HOUR",
    "IdGenerator",
    "MINUTE",
    "RngStream",
    "SECOND",
    "SummaryStats",
    "format_duration",
    "mean",
    "parse_duration",
    "percentile",
    "random_hex_key",
    "summarize",
]
