"""Simulated-time helpers.

The workload engine uses a float "seconds since experiment start" clock;
these constants and parsers keep durations readable at call sites.
"""

from __future__ import annotations

import re

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h|d|w)\s*$")

_UNIT_SECONDS = {
    "ms": 0.001,
    "s": SECOND,
    "m": MINUTE,
    "h": HOUR,
    "d": DAY,
    "w": WEEK,
}


def parse_duration(text: str) -> float:
    """Parse a duration like ``"90s"``, ``"1.5h"`` or ``"2d"`` into seconds."""
    match = _DURATION_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable duration: {text!r}")
    value, unit = match.groups()
    return float(value) * _UNIT_SECONDS[unit]


def format_duration(seconds: float) -> str:
    """Render seconds as a compact human-readable duration."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}m"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    return f"{seconds / DAY:.1f}d"
