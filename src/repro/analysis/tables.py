"""Text-table rendering, including the Table 1 layout."""

from __future__ import annotations

from repro.detection.set_algebra import SetAlgebraSummary


def format_table(
    headers: list[str], rows: list[list[str]], align_right: set[int] | None = None
) -> str:
    """Render a simple aligned text table."""
    align_right = align_right or set()
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width disagrees with headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: list[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i in align_right:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [render_row(headers)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def render_table1(summary: SetAlgebraSummary) -> str:
    """Render the census in the paper's Table 1 layout."""
    total = summary.total_sessions

    def row(description: str, count: int) -> list[str]:
        pct = 100.0 * count / total if total else 0.0
        return [description, f"{count:,}", f"{pct:.1f}"]

    rows = [
        row("Downloaded CSS", summary.css_downloads),
        row("Executed JavaScript", summary.js_executions),
        row("Mouse movement detected", summary.mouse_movements),
        row("Passed CAPTCHA test", summary.captcha_passes),
        row("Followed hidden links", summary.hidden_link_follows),
        row("Browser type mismatch", summary.ua_mismatches),
        row("Total sessions", total),
    ]
    table = format_table(
        ["Description", "# of Sessions", "Percentage(%)"],
        rows,
        align_right={1, 2},
    )
    derived = (
        f"\nS_H (human upper bound): {summary.human_upper_count:,} "
        f"({summary.upper_bound:.1%})"
        f"\nlower bound (mouse movement): {summary.lower_bound:.1%}"
        f"\nbound gap: {summary.bound_gap:.1%}"
        f"\nmax false positive rate: {summary.max_false_positive_rate:.1%}"
    )
    return table + derived
