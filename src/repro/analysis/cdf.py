"""Figure 2 reductions: CDFs of requests-needed-to-detect.

Each detected session contributes the 1-based request index at which a
signal first fired; the CDF over those indices answers the paper's
claims: "80% of the mouse event generating clients could be detected
within 20 requests, and 95% of them could be detected within 57 requests.
Of clients that downloaded the embedded CSS file, 95% could be classified
within 19 requests and 99% in 48 requests."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.online import DetectionLatency
from repro.util.stats import Ecdf


@dataclass
class DetectionCdfs:
    """The three Figure 2 curves (None when no session produced a signal)."""

    css: Ecdf | None
    beacon_js: Ecdf | None
    mouse: Ecdf | None

    def series(
        self, max_requests: int = 100, step: int = 1
    ) -> dict[str, list[tuple[int, float]]]:
        """(x, F(x)) points per curve for plotting, like the paper's axes."""
        out: dict[str, list[tuple[int, float]]] = {}
        for name, ecdf in (
            ("CSS files", self.css),
            ("Javascript files", self.beacon_js),
            ("Mouse events", self.mouse),
        ):
            if ecdf is None:
                continue
            out[name] = [
                (x, ecdf.fraction_at_or_below(x))
                for x in range(0, max_requests + 1, step)
            ]
        return out


def detection_cdfs(latencies: list[DetectionLatency]) -> DetectionCdfs:
    """Build the three CDFs from per-session latency samples."""
    css = [s.css_at for s in latencies if s.css_at is not None]
    js = [s.beacon_js_at for s in latencies if s.beacon_js_at is not None]
    mouse = [s.mouse_at for s in latencies if s.mouse_at is not None]
    return DetectionCdfs(
        css=Ecdf(css) if css else None,
        beacon_js=Ecdf(js) if js else None,
        mouse=Ecdf(mouse) if mouse else None,
    )
