"""Result reduction and rendering: CDFs, tables, ASCII plots, reports."""

from repro.analysis.cdf import DetectionCdfs, detection_cdfs
from repro.analysis.report import EvaluationReport, generate_report
from repro.analysis.tables import format_table, render_table1
from repro.analysis.ascii_plot import bar_chart, line_chart

__all__ = [
    "DetectionCdfs",
    "EvaluationReport",
    "bar_chart",
    "detection_cdfs",
    "format_table",
    "generate_report",
    "line_chart",
    "render_table1",
]
