"""Terminal plotting: enough to eyeball the paper's figures.

``line_chart`` draws multiple (x, y) series on one axis grid (Figures 2
and 4); ``bar_chart`` draws labelled stacked bars (Figure 3).
"""

from __future__ import annotations

from typing import Sequence

Series = Sequence[tuple[float, float]]

_MARKERS = "*+x@o#"


def line_chart(
    series: dict[str, Series],
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot named series as an ASCII scatter/line chart."""
    if not series:
        raise ValueError("need at least one series")
    points = [p for s in series.values() for p in s]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, data) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in data:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:8.2f} |"
        elif i == height - 1:
            prefix = f"{y_min:8.2f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row_cells))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_min:<12.1f}{x_label:^{max(0, width - 24)}}{x_max:>12.1f}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    if y_label:
        lines.insert(0, y_label)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    stacks: dict[str, Sequence[float]],
    width: int = 40,
) -> str:
    """Horizontal stacked bars, one row per label (Figure 3 layout)."""
    if not stacks:
        raise ValueError("need at least one stack")
    n = len(labels)
    for name, values in stacks.items():
        if len(values) != n:
            raise ValueError(f"stack {name!r} length disagrees with labels")
    totals = [
        sum(stacks[name][i] for name in stacks) for i in range(n)
    ]
    peak = max(totals) if totals else 1.0
    peak = peak or 1.0

    chars = _MARKERS
    lines = []
    label_width = max(len(label) for label in labels)
    for i, label in enumerate(labels):
        bar = ""
        for j, (name, values) in enumerate(stacks.items()):
            segment = int(round(values[i] / peak * width))
            bar += chars[j % len(chars)] * segment
        lines.append(f"{label:>{label_width}} |{bar} {totals[i]:.0f}")
    legend = "   ".join(
        f"{chars[j % len(chars)]} {name}" for j, name in enumerate(stacks)
    )
    lines.append(f"{'':>{label_width}} {legend}")
    return "\n".join(lines)
