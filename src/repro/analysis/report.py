"""Full-report generation: every experiment's rendered output in one text.

Used by ``python -m repro`` and handy for regression-diffing whole
evaluation runs between code changes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class ReportSection:
    """One experiment's rendered output and its wall-clock cost."""

    name: str
    text: str
    seconds: float


@dataclass
class EvaluationReport:
    """All experiment outputs, in the paper's presentation order."""

    sections: list[ReportSection] = field(default_factory=list)

    def render(self) -> str:
        """The full report as display text."""
        parts = []
        for section in self.sections:
            header = f"{'=' * 72}\n{section.name}  ({section.seconds:.1f}s)\n{'=' * 72}"
            parts.append(f"{header}\n{section.text}")
        return "\n\n".join(parts)

    @property
    def total_seconds(self) -> float:
        """Wall-clock for the whole evaluation."""
        return sum(s.seconds for s in self.sections)


_ORDER = ("table1", "figure2", "figure3", "table2", "figure4", "overhead")


def generate_report(
    n_sessions: int = 1000,
    ml_sessions: int = 800,
    seed: int = 2006,
    ml_seed: int = 4242,
    experiments: tuple[str, ...] = _ORDER,
) -> EvaluationReport:
    """Run the selected experiments and collect their reports.

    The workload-backed experiments share one cached deployment run; the
    ML-backed experiments share one dataset, so the report costs roughly
    one CoDeeN-week replay plus one ML-study replay.
    """
    # Imported here: repro.experiments.registry imports the experiment
    # modules, which import repro.analysis for rendering — a module-level
    # import would make this package's initialization order-dependent
    # (repro.experiments first works, repro.analysis first breaks).
    from repro.experiments.registry import EXPERIMENTS

    report = EvaluationReport()
    for name in experiments:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            raise KeyError(
                f"unknown experiment {name!r}; available: "
                f"{sorted(EXPERIMENTS)}"
            )
        kwargs: dict = {}
        if name in ("table1", "figure2", "figure3", "overhead"):
            kwargs = {"n_sessions": n_sessions, "seed": seed}
        elif name in ("table2", "figure4"):
            kwargs = {"n_sessions": ml_sessions, "seed": ml_seed}
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        report.sections.append(
            ReportSection(name=name, text=result.render(), seconds=elapsed)
        )
    return report
