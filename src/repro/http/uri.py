"""Tiny URL model: parse, join and resolve http URLs.

The instrumenter mints beacon URLs on the site's own host, agents resolve
relative links found in HTML, and the detector matches request paths against
registered beacons — all through this module, so URL normalisation rules
live in exactly one place.
"""

from __future__ import annotations

import posixpath
import re
from dataclasses import dataclass, field

_URL_RE = re.compile(
    r"^(?P<scheme>[a-zA-Z][a-zA-Z0-9+.-]*)://"
    r"(?P<host>[^/:?#]+)"
    r"(?::(?P<port>\d+))?"
    r"(?P<path>/[^?#]*)?"
    r"(?:\?(?P<query>[^#]*))?"
    r"(?:#(?P<fragment>.*))?$"
)

# A reference is absolute only when it *starts* with "scheme://".  A bare
# substring test would also fire on relative references whose query embeds
# an absolute URL ("/redirect?to=http://evil.example/").
_SCHEME_PREFIX_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*://")


@dataclass(frozen=True)
class Url:
    """An absolute http(s) URL, normalised."""

    scheme: str
    host: str
    path: str = "/"
    query: str = ""
    port: int | None = None

    def __post_init__(self) -> None:
        if self.scheme not in ("http", "https"):
            raise ValueError(f"unsupported scheme: {self.scheme!r}")
        if not self.host:
            raise ValueError("host must be non-empty")
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/', got {self.path!r}")
        if self.port is not None and not 1 <= self.port <= 65535:
            raise ValueError(f"port out of range 1..65535: {self.port}")

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse an absolute URL; raises ValueError on anything else."""
        match = _URL_RE.match(text.strip())
        if match is None:
            raise ValueError(f"unparseable absolute URL: {text!r}")
        parts = match.groupdict()
        port = int(parts["port"]) if parts["port"] else None
        return cls(
            scheme=parts["scheme"].lower(),
            host=parts["host"].lower(),
            path=_normalize_path(parts["path"] or "/"),
            query=parts["query"] or "",
            port=port,
        )

    @property
    def origin(self) -> str:
        """``scheme://host[:port]`` with no trailing slash."""
        if self.port is None:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def path_and_query(self) -> str:
        """Path plus ``?query`` when a query is present."""
        if self.query:
            return f"{self.path}?{self.query}"
        return self.path

    @property
    def filename(self) -> str:
        """Last path segment (may be empty for directory URLs)."""
        return self.path.rsplit("/", 1)[-1]

    @property
    def extension(self) -> str:
        """Lowercased filename extension without the dot, or ``""``."""
        name = self.filename
        if "." not in name:
            return ""
        return name.rsplit(".", 1)[-1].lower()

    def sibling(self, filename: str) -> "Url":
        """URL of ``filename`` in the same directory as this URL."""
        directory = self.path.rsplit("/", 1)[0]
        return Url(self.scheme, self.host, f"{directory}/{filename}", "", self.port)

    def with_path(self, path: str, query: str = "") -> "Url":
        """Same origin, different path/query."""
        return Url(self.scheme, self.host, _normalize_path(path), query, self.port)

    def __str__(self) -> str:
        return f"{self.origin}{self.path_and_query}"


def _normalize_path(path: str) -> str:
    """Collapse ``.``/``..`` segments and duplicate slashes, keep leading slash."""
    if not path.startswith("/"):
        path = "/" + path
    normalized = posixpath.normpath(path)
    # normpath strips a trailing slash that is meaningful for directories;
    # the site model never relies on trailing slashes, so this is fine.
    if normalized == ".":
        return "/"
    return normalized


def resolve_url(base: Url, reference: str) -> Url:
    """Resolve an HTML link ``reference`` against the page URL ``base``.

    Handles absolute URLs, host-relative (``/a/b``), and document-relative
    (``img/x.jpg``, ``../y.css``) references.  Fragments are dropped because
    they never reach the server.
    """
    reference = reference.strip()
    if not reference:
        return base
    reference = reference.split("#", 1)[0]
    if not reference:
        return base
    if _SCHEME_PREFIX_RE.match(reference):
        return Url.parse(reference)
    if reference.startswith("//"):
        return Url.parse(f"{base.scheme}:{reference}")
    query = ""
    if "?" in reference:
        reference, query = reference.split("?", 1)
    if reference.startswith("/"):
        return Url(base.scheme, base.host, _normalize_path(reference), query, base.port)
    directory = base.path.rsplit("/", 1)[0]
    combined = _normalize_path(f"{directory}/{reference}") if reference else base.path
    return Url(base.scheme, base.host, combined, query, base.port)
