"""HTTP status codes and status-class helpers.

The AdaBoost attributes in Table 2 include the fraction of responses in the
2xx, 3xx and 4xx classes, so status classification is part of the feature
pipeline, not just cosmetics.
"""

from __future__ import annotations

from enum import Enum

_REASONS: dict[int, str] = {
    200: "OK",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


class StatusClass(Enum):
    """Coarse status classes as used by the paper's feature set."""

    INFORMATIONAL = "1xx"
    SUCCESS = "2xx"
    REDIRECT = "3xx"
    CLIENT_ERROR = "4xx"
    SERVER_ERROR = "5xx"


def status_class(code: int) -> StatusClass:
    """Map a status code to its class; raises on out-of-range codes."""
    if 100 <= code <= 199:
        return StatusClass.INFORMATIONAL
    if 200 <= code <= 299:
        return StatusClass.SUCCESS
    if 300 <= code <= 399:
        return StatusClass.REDIRECT
    if 400 <= code <= 499:
        return StatusClass.CLIENT_ERROR
    if 500 <= code <= 599:
        return StatusClass.SERVER_ERROR
    raise ValueError(f"invalid HTTP status code: {code}")


def is_success(code: int) -> bool:
    """True for 2xx responses."""
    return 200 <= code <= 299


def is_redirect(code: int) -> bool:
    """True for 3xx responses."""
    return 300 <= code <= 399


def is_client_error(code: int) -> bool:
    """True for 4xx responses."""
    return 400 <= code <= 499


def is_server_error(code: int) -> bool:
    """True for 5xx responses."""
    return 500 <= code <= 599


def describe_status(code: int) -> str:
    """Return ``"404 Not Found"``-style text (generic reason if unknown)."""
    reason = _REASONS.get(code)
    if reason is None:
        reason = status_class(code).value.upper()
    return f"{code} {reason}"
