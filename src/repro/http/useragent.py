"""User-Agent strings: catalogue, parsing, and forgery modelling.

The paper explicitly *distrusts* the User-Agent header ("easily forged, and
we find that it is commonly forged in practice") — sessions are keyed by
<IP, User-Agent>, and the browser-mismatch detector compares the claimed UA
against the UA echoed back by JavaScript running in the real client.  This
module provides realistic UA strings circa 2006 for both browsers and
well-behaved robots, plus a light parser good enough for family detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class BrowserFamily(Enum):
    """Browser families the paper lists as "standard browsers" (§2.2)."""

    IE = "ie"
    FIREFOX = "firefox"
    MOZILLA = "mozilla"
    SAFARI = "safari"
    NETSCAPE = "netscape"
    OPERA = "opera"
    ROBOT = "robot"
    UNKNOWN = "unknown"

    @property
    def is_standard_browser(self) -> bool:
        """True for the families §2.2 treats as typical browsers."""
        return self not in (BrowserFamily.ROBOT, BrowserFamily.UNKNOWN)


@dataclass(frozen=True)
class UserAgent:
    """A User-Agent string and its parsed family."""

    string: str
    family: BrowserFamily

    def __str__(self) -> str:
        return self.string


_BROWSER_STRINGS: dict[BrowserFamily, tuple[str, ...]] = {
    BrowserFamily.IE: (
        "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)",
        "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.0)",
        "Mozilla/4.0 (compatible; MSIE 5.5; Windows 98)",
    ),
    BrowserFamily.FIREFOX: (
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) "
        "Gecko/20060111 Firefox/1.5.0.1",
        "Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.7.12) "
        "Gecko/20051010 Firefox/1.0.7",
    ),
    BrowserFamily.MOZILLA: (
        "Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.7.12) Gecko/20050922",
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.7.8) Gecko/20050511",
    ),
    BrowserFamily.SAFARI: (
        "Mozilla/5.0 (Macintosh; U; PPC Mac OS X; en) AppleWebKit/418 "
        "(KHTML, like Gecko) Safari/417.9.3",
    ),
    BrowserFamily.NETSCAPE: (
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.7.5) "
        "Gecko/20050519 Netscape/8.0.1",
    ),
    BrowserFamily.OPERA: (
        "Opera/8.51 (Windows NT 5.1; U; en)",
        "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; en) Opera 8.50",
    ),
}

_ROBOT_STRINGS: tuple[str, ...] = (
    "Googlebot/2.1 (+http://www.google.com/bot.html)",
    "msnbot/1.0 (+http://search.msn.com/msnbot.htm)",
    "Mozilla/5.0 (compatible; Yahoo! Slurp; http://help.yahoo.com/help/us/ysearch/slurp)",
    "ia_archiver",
    "Wget/1.10.2",
    "libwww-perl/5.805",
    "Python-urllib/2.4",
    "WebZIP/6.0",
    "EmailCollector/1.1",
    "LinkWalker/2.0",
)

_ROBOT_MARKERS: tuple[str, ...] = (
    "bot",
    "crawler",
    "spider",
    "slurp",
    "archiver",
    "wget",
    "libwww",
    "urllib",
    "curl",
    "collector",
    "walker",
    "webzip",
    "fetch",
)


def known_browser_agents(family: BrowserFamily | None = None) -> list[UserAgent]:
    """Catalogue of real browser UA strings (optionally one family)."""
    out: list[UserAgent] = []
    for fam, strings in _BROWSER_STRINGS.items():
        if family is not None and fam is not family:
            continue
        out.extend(UserAgent(s, fam) for s in strings)
    return out


def known_robot_agents() -> list[UserAgent]:
    """Catalogue of honest (self-identifying) robot UA strings."""
    return [UserAgent(s, BrowserFamily.ROBOT) for s in _ROBOT_STRINGS]


def parse_user_agent(string: str | None) -> UserAgent:
    """Best-effort family detection from a raw UA string.

    Order matters: Opera can masquerade as MSIE, Netscape and Firefox both
    carry "Gecko", and anything with a robot marker is classified as a robot
    regardless of other tokens (matching how operators read UA strings).
    """
    if string is None or not string.strip():
        return UserAgent(string or "", BrowserFamily.UNKNOWN)
    lowered = string.lower()
    if any(marker in lowered for marker in _ROBOT_MARKERS):
        return UserAgent(string, BrowserFamily.ROBOT)
    if "opera" in lowered:
        return UserAgent(string, BrowserFamily.OPERA)
    if "netscape" in lowered:
        return UserAgent(string, BrowserFamily.NETSCAPE)
    if "firefox" in lowered:
        return UserAgent(string, BrowserFamily.FIREFOX)
    if "safari" in lowered or "applewebkit" in lowered:
        return UserAgent(string, BrowserFamily.SAFARI)
    if "msie" in lowered:
        return UserAgent(string, BrowserFamily.IE)
    if "gecko" in lowered or "mozilla" in lowered:
        return UserAgent(string, BrowserFamily.MOZILLA)
    return UserAgent(string, BrowserFamily.UNKNOWN)
