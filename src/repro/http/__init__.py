"""Minimal HTTP model: requests, responses, headers, URLs, user agents.

This is the wire-level vocabulary shared by the origin server, the proxy
network, the agents and the detector.  It models exactly what the paper's
techniques observe: method, URL, selected request headers (User-Agent,
Referer), response status and Content-Type.
"""

from repro.http.content import (
    ContentKind,
    classify_content_type,
    classify_path,
    content_type_for_path,
)
from repro.http.headers import Headers
from repro.http.message import (
    Exchange,
    Method,
    Request,
    Response,
    error_response,
    html_response,
)
from repro.http.status import (
    StatusClass,
    describe_status,
    is_client_error,
    is_redirect,
    is_success,
    status_class,
)
from repro.http.uri import Url, resolve_url
from repro.http.useragent import (
    BrowserFamily,
    UserAgent,
    known_browser_agents,
    known_robot_agents,
    parse_user_agent,
)

__all__ = [
    "BrowserFamily",
    "ContentKind",
    "Exchange",
    "Headers",
    "Method",
    "Request",
    "Response",
    "error_response",
    "html_response",
    "StatusClass",
    "Url",
    "UserAgent",
    "classify_content_type",
    "classify_path",
    "content_type_for_path",
    "describe_status",
    "is_client_error",
    "is_redirect",
    "is_success",
    "known_browser_agents",
    "known_robot_agents",
    "parse_user_agent",
    "resolve_url",
    "status_class",
]
