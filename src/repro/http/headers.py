"""Case-insensitive, order-preserving HTTP headers.

Only the handful of headers the paper's mechanisms care about get dedicated
accessors (User-Agent, Referer, Cache-Control, Content-Type), but arbitrary
headers round-trip so agent models can attach realistic request metadata.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Headers:
    """A multimap of header name -> values with case-insensitive names."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[tuple[str, str]] | None = None) -> None:
        self._entries: list[tuple[str, str]] = []
        if entries is not None:
            for name, value in entries:
                self.add(name, value)

    # -- mutation ---------------------------------------------------------

    def add(self, name: str, value: str) -> None:
        """Append a header, preserving any existing values for the name."""
        if not name or not name.strip():
            raise ValueError("header name must be non-empty")
        self._entries.append((name, str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all values for ``name`` with a single value."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        """Drop every value for ``name`` (no error if absent)."""
        folded = name.lower()
        self._entries = [(n, v) for n, v in self._entries if n.lower() != folded]

    # -- lookup -----------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """First value for ``name``, or ``default``."""
        folded = name.lower()
        for n, v in self._entries:
            if n.lower() == folded:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        """All values for ``name`` in insertion order."""
        folded = name.lower()
        return [v for n, v in self._entries if n.lower() == folded]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        normalize = lambda entries: [(n.lower(), v) for n, v in entries]
        return normalize(self._entries) == normalize(other._entries)

    def copy(self) -> "Headers":
        """Shallow copy."""
        return Headers(self._entries)

    # -- convenience accessors for the fields the detectors read ----------

    @property
    def user_agent(self) -> str | None:
        """The User-Agent value, if present."""
        return self.get("User-Agent")

    @property
    def referer(self) -> str | None:
        """The Referer value, if present."""
        return self.get("Referer")

    @property
    def content_type(self) -> str | None:
        """The Content-Type value, if present."""
        return self.get("Content-Type")

    @property
    def cache_control(self) -> str | None:
        """The Cache-Control value, if present."""
        return self.get("Cache-Control")

    def is_uncacheable(self) -> bool:
        """True when Cache-Control forbids storing (as beacon responses must)."""
        value = self.cache_control
        if value is None:
            return False
        directives = {part.strip().lower() for part in value.split(",")}
        return "no-cache" in directives or "no-store" in directives

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{n}: {v}" for n, v in self._entries)
        return f"Headers({inner})"
