"""Content-type vocabulary and request classification.

Table 2's attributes need every request bucketed as HTML / image / CGI /
embedded object, and the browser-test detector needs to recognise CSS,
JavaScript and favicon fetches.  Classification works both from the response
Content-Type (authoritative) and from the URL path (what the client *asked*
for, available before any response).
"""

from __future__ import annotations

from enum import Enum

from repro.http.uri import Url


class ContentKind(Enum):
    """Coarse object kinds meaningful to the detectors."""

    HTML = "html"
    CSS = "css"
    JAVASCRIPT = "javascript"
    IMAGE = "image"
    AUDIO = "audio"
    CGI = "cgi"
    FAVICON = "favicon"
    ROBOTS_TXT = "robots_txt"
    OTHER = "other"

    @property
    def is_embedded_object(self) -> bool:
        """Objects a browser fetches as part of rendering a page."""
        return self in (
            ContentKind.CSS,
            ContentKind.JAVASCRIPT,
            ContentKind.IMAGE,
            ContentKind.AUDIO,
            ContentKind.FAVICON,
        )

    @property
    def is_presentation(self) -> bool:
        """Presentation-only objects that goal-oriented robots skip (§2.2)."""
        return self in (ContentKind.CSS, ContentKind.IMAGE, ContentKind.AUDIO)


_EXTENSION_KINDS: dict[str, ContentKind] = {
    "html": ContentKind.HTML,
    "htm": ContentKind.HTML,
    "php": ContentKind.HTML,
    "asp": ContentKind.HTML,
    "css": ContentKind.CSS,
    "js": ContentKind.JAVASCRIPT,
    "jpg": ContentKind.IMAGE,
    "jpeg": ContentKind.IMAGE,
    "png": ContentKind.IMAGE,
    "gif": ContentKind.IMAGE,
    "bmp": ContentKind.IMAGE,
    "ico": ContentKind.IMAGE,
    "wav": ContentKind.AUDIO,
    "mp3": ContentKind.AUDIO,
    "cgi": ContentKind.CGI,
    "pl": ContentKind.CGI,
    "py": ContentKind.CGI,
}

_MIME_KINDS: dict[str, ContentKind] = {
    "text/html": ContentKind.HTML,
    "application/xhtml+xml": ContentKind.HTML,
    "text/css": ContentKind.CSS,
    "text/javascript": ContentKind.JAVASCRIPT,
    "application/javascript": ContentKind.JAVASCRIPT,
    "application/x-javascript": ContentKind.JAVASCRIPT,
    "audio/wav": ContentKind.AUDIO,
    "audio/mpeg": ContentKind.AUDIO,
    "text/plain": ContentKind.OTHER,
}

_CONTENT_TYPES: dict[ContentKind, str] = {
    ContentKind.HTML: "text/html",
    ContentKind.CSS: "text/css",
    ContentKind.JAVASCRIPT: "application/javascript",
    ContentKind.IMAGE: "image/jpeg",
    ContentKind.AUDIO: "audio/wav",
    ContentKind.CGI: "text/html",
    ContentKind.FAVICON: "image/x-icon",
    ContentKind.ROBOTS_TXT: "text/plain",
    ContentKind.OTHER: "application/octet-stream",
}


def classify_path(url: Url) -> ContentKind:
    """Classify a request by URL alone (used before/without a response).

    CGI is recognised both by extension (.cgi/.pl) and by the conventional
    ``/cgi-bin/`` prefix or a query string on a script path, matching how
    the paper's operators counted "CGI request rate".
    """
    path = url.path.lower()
    if path == "/favicon.ico":
        return ContentKind.FAVICON
    if path == "/robots.txt":
        return ContentKind.ROBOTS_TXT
    if "/cgi-bin/" in path:
        return ContentKind.CGI
    ext = url.extension
    kind = _EXTENSION_KINDS.get(ext)
    if kind is ContentKind.HTML and url.query:
        return ContentKind.CGI
    if kind is not None:
        return kind
    if ext == "" and url.query:
        return ContentKind.CGI
    if ext == "":
        # Directory-style URL: servers answer with HTML indexes.
        return ContentKind.HTML
    return ContentKind.OTHER


def classify_content_type(content_type: str | None) -> ContentKind:
    """Classify a response Content-Type header value."""
    if content_type is None:
        return ContentKind.OTHER
    mime = content_type.split(";", 1)[0].strip().lower()
    if mime.startswith("image/"):
        return ContentKind.IMAGE
    if mime.startswith("audio/"):
        return ContentKind.AUDIO
    return _MIME_KINDS.get(mime, ContentKind.OTHER)


def content_type_for_path(url: Url) -> str:
    """The Content-Type an origin should attach when serving ``url``."""
    kind = classify_path(url)
    if kind is ContentKind.IMAGE and url.extension in ("png", "gif"):
        return f"image/{url.extension}"
    if kind is ContentKind.FAVICON:
        return "image/x-icon"
    return _CONTENT_TYPES[kind]
