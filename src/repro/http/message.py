"""HTTP request and response messages.

``Request``/``Response`` are deliberately small immutable records: the
detector must scale to hundreds of thousands of sessions, so messages carry
only the fields the paper's techniques observe, plus a payload size for
bandwidth accounting (the §3.2 overhead numbers).
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from enum import Enum

from repro.http.content import (
    ContentKind,
    classify_content_type,
    classify_path,
)
from repro.http.headers import Headers
from repro.http.status import StatusClass, describe_status, status_class
from repro.http.uri import Url


class Method(Enum):
    """Request methods the paper's feature set distinguishes (HEAD% vs GET)."""

    GET = "GET"
    HEAD = "HEAD"
    POST = "POST"


@dataclass(frozen=True)
class Request:
    """One HTTP request as seen by the proxy.

    ``client_ip`` identifies the TCP source; sessions are keyed by
    ``(client_ip, User-Agent header)`` per §3.
    """

    method: Method
    url: Url
    client_ip: str
    headers: Headers = field(default_factory=Headers)
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.client_ip:
            raise ValueError("client_ip must be non-empty")

    @property
    def user_agent(self) -> str:
        """The User-Agent header, empty string when absent."""
        return self.headers.user_agent or ""

    @property
    def referer(self) -> str | None:
        """The Referer header if present."""
        return self.headers.referer

    @property
    def path_kind(self) -> ContentKind:
        """What kind of object the URL *requests* (pre-response)."""
        return classify_path(self.url)

    def describe(self) -> str:
        """One-line log form: ``GET http://host/path``."""
        return f"{self.method.value} {self.url}"


@dataclass(frozen=True)
class Response:
    """One HTTP response paired with its request."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    served_from_cache: bool = False

    def __post_init__(self) -> None:
        status_class(self.status)  # validates the code range

    @property
    def status_class(self) -> StatusClass:
        """The response's 1xx..5xx class."""
        return status_class(self.status)

    @property
    def content_type(self) -> str | None:
        """Content-Type header value, if any."""
        return self.headers.content_type

    @property
    def content_kind(self) -> ContentKind:
        """Object kind per the Content-Type header."""
        return classify_content_type(self.content_type)

    @property
    def size(self) -> int:
        """Body size in bytes (for bandwidth accounting)."""
        return len(self.body)

    @property
    def text(self) -> str:
        """Body decoded as UTF-8 (replacement on errors)."""
        return self.body.decode("utf-8", errors="replace")

    def describe(self) -> str:
        """One-line log form: ``200 OK text/html (1234 bytes)``."""
        ctype = self.content_type or "-"
        return f"{describe_status(self.status)} {ctype} ({self.size} bytes)"


@dataclass(frozen=True)
class Exchange:
    """A request/response pair with the time it completed.

    This is the unit the detectors and the ML feature extractor consume.
    """

    request: Request
    response: Response

    @property
    def timestamp(self) -> float:
        """Completion time (the request's timestamp; latency is not modelled
        at the message level)."""
        return self.request.timestamp


def html_response(body: str, *, status: int = 200, uncacheable: bool = False) -> Response:
    """Convenience constructor for an HTML response."""
    headers = Headers([("Content-Type", "text/html")])
    if uncacheable:
        headers.set("Cache-Control", "no-cache, no-store")
    return Response(status=status, headers=headers, body=body.encode("utf-8"))


def error_response(status: int, message: str | None = None) -> Response:
    """An error response with a small HTML body.

    ``message`` may carry request-derived text (URLs, header values), so both
    interpolations are entity-encoded before they reach an HTML body.
    """
    text = html.escape(message or describe_status(status))
    heading = html.escape(describe_status(status))
    body = f"<html><body><h1>{heading}</h1><p>{text}</p></body></html>"
    return Response(
        status=status,
        headers=Headers([("Content-Type", "text/html")]),
        body=body.encode("utf-8"),
    )
