"""Observable capability profiles.

A :class:`BehaviorProfile` captures the client-side properties the paper's
detectors key on — which object types get fetched, whether JavaScript
runs, whether a human produces mouse activity — so browser-like agents
(the human models and the §4.1 engine bots) can share one implementation
and differ only in profile.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BehaviorProfile:
    """What this client fetches and does, observably.

    ``mouse_move_probability`` is per *page view*: the chance the user
    moves the mouse over the page (firing the beacon handler) before
    navigating away.  Passive readers — who scroll with keys, or park the
    pointer — are modelled with low values; they are the long tail of
    Figure 2's mouse-event CDF.
    """

    js_enabled: bool = True
    fetches_stylesheets: bool = True
    fetches_images: bool = True
    fetches_scripts: bool = True
    image_fetch_fraction: float = 1.0
    favicon_probability: float = 0.45
    mouse_user: bool = True
    mouse_move_probability: float = 0.85
    engine_user_agent: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.mouse_move_probability <= 1.0:
            raise ValueError("mouse_move_probability must be in [0, 1]")
        if not 0.0 <= self.image_fetch_fraction <= 1.0:
            raise ValueError("image_fetch_fraction must be in [0, 1]")
        if not 0.0 <= self.favicon_probability <= 1.0:
            raise ValueError("favicon_probability must be in [0, 1]")
        if not self.js_enabled and self.mouse_user:
            # Mouse activity is only *observable* through the JavaScript
            # beacon; a JS-disabled human moves the mouse invisibly.
            object.__setattr__(self, "mouse_user", False)


STANDARD_BROWSER = BehaviorProfile()
"""A JS-enabled browser with an active mouse user."""

JS_DISABLED_BROWSER = BehaviorProfile(
    js_enabled=False,
    fetches_scripts=False,
    mouse_user=False,
)
"""A privacy-conscious user: CSS and images, but no JavaScript (§2.2's
4-6% of users)."""

PASSIVE_READER = BehaviorProfile(mouse_move_probability=0.25)
"""A human who rarely moves the mouse while reading."""

HEADLESS_ENGINE = BehaviorProfile(
    mouse_user=False,
    favicon_probability=0.42,
)
"""A real browser engine driven by automation: fetches everything,
executes JavaScript, but no human input ever arrives (§3.1: sessions that
executed JavaScript but show no mouse movement 'definitely belong to
robots')."""
