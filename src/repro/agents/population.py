"""Population mixes: weighted agent factories.

A :class:`PopulationMix` is the calibrated census of who visits the proxy
network — the knob DESIGN.md's §6 describes.  Each draw samples an agent
family by weight and instantiates it with a fresh IP, User-Agent and RNG
stream, so a workload is fully described by (mix, size, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.agents.base import Agent
from repro.util.rng import RngStream


class AgentFactory(Protocol):
    """Builds an agent given identity, randomness and entry point."""

    def __call__(
        self, client_ip: str, user_agent: str, rng: RngStream, entry_url: str
    ) -> Agent: ...


@dataclass(frozen=True)
class AgentSpec:
    """One population component."""

    name: str
    weight: float
    factory: AgentFactory
    user_agent_pool: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be non-negative: {self.name}")
        if not self.user_agent_pool:
            raise ValueError(f"user_agent_pool must be non-empty: {self.name}")


class IpAllocator:
    """Hands out unique, deterministic client IPs."""

    def __init__(self, rng: RngStream) -> None:
        self._rng = rng
        self._counter = 0

    def next(self) -> str:
        """A fresh IP; uniqueness guarantees one session per agent."""
        self._counter += 1
        n = self._counter
        return (
            f"{10 + (n >> 24) % 200}.{(n >> 16) & 0xFF}."
            f"{(n >> 8) & 0xFF}.{n & 0xFF}"
        )


class PopulationMix:
    """A weighted collection of agent specs."""

    def __init__(self, name: str, specs: list[AgentSpec]) -> None:
        if not specs:
            raise ValueError("a mix needs at least one spec")
        total = sum(spec.weight for spec in specs)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.name = name
        self.specs = specs
        self._total_weight = total

    def fraction(self, spec_name: str) -> float:
        """Design fraction of one component."""
        for spec in self.specs:
            if spec.name == spec_name:
                return spec.weight / self._total_weight
        raise KeyError(spec_name)

    def sample(
        self,
        rng: RngStream,
        ips: IpAllocator,
        entry_url: str,
        index: int,
    ) -> Agent:
        """Draw one agent from the mix."""
        spec = rng.weighted_choice(
            self.specs, [s.weight for s in self.specs]
        )
        agent_rng = rng.split(f"agent-{index}-{spec.name}")
        user_agent = agent_rng.choice(spec.user_agent_pool)
        agent = spec.factory(
            client_ip=ips.next(),
            user_agent=user_agent,
            rng=agent_rng,
            entry_url=entry_url,
        )
        # Census and ground-truth labels use the mix component name, which
        # is more specific than the class-level kind (e.g. distinguishes
        # human_js from human_nojs, both BrowserAgent).
        agent.kind = spec.name
        return agent

    def sample_many(
        self, rng: RngStream, entry_url: str, count: int
    ) -> list[Agent]:
        """Draw ``count`` agents with unique IPs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        ips = IpAllocator(rng.split("ips"))
        return [
            self.sample(rng, ips, entry_url, index) for index in range(count)
        ]
