"""Traffic-source models: human browsers and the robot bestiary.

Every agent is a generator that yields :class:`~repro.agents.base.FetchAction`
and receives the resulting request/response pair — exactly the observable
channel the paper's detectors watch.  Agents never see server-side state;
JavaScript-capable agents "execute" served scripts by interpreting the
page bytes (resolving the mouse-handler URL, filling in the UA-echo
template), and robots implement the abuse behaviours §1 catalogues:
crawling, e-mail harvesting, referrer spam, click fraud, vulnerability
scanning, DDoS flooding, plus the §4.1 counter-measure bots.
"""

from repro.agents.base import Agent, FetchAction, FetchResult
from repro.agents.behavior import BehaviorProfile
from repro.agents.browser import BrowserAgent, BrowserConfig
from repro.agents.population import AgentSpec, PopulationMix
from repro.agents.robots import (
    BlindFetcherBot,
    ClickFraudBot,
    CrawlerBot,
    DdosZombie,
    EmailHarvesterBot,
    EngineBot,
    MouseForgerBot,
    OfflineBrowserBot,
    ReferrerSpammerBot,
    VulnScannerBot,
)

__all__ = [
    "Agent",
    "AgentSpec",
    "BehaviorProfile",
    "BlindFetcherBot",
    "BrowserAgent",
    "BrowserConfig",
    "ClickFraudBot",
    "CrawlerBot",
    "DdosZombie",
    "EmailHarvesterBot",
    "EngineBot",
    "FetchAction",
    "FetchResult",
    "MouseForgerBot",
    "OfflineBrowserBot",
    "PopulationMix",
    "ReferrerSpammerBot",
    "VulnScannerBot",
]
