"""Off-line browser (site downloader).

§2.2's acknowledged exception: "there are some exceptions like off-line
browsers that download all the possible files for future display."  It
fetches every embedded object — including the beacon CSS and the beacon
JavaScript *file* — but executes nothing, so it lands in S_CSS without
ever appearing in S_JS or S_MM.  These sessions are the robot component
of the gap between the paper's lower and upper human bounds.
"""

from __future__ import annotations

from collections import deque

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.html.links import extract_references
from repro.util.rng import RngStream


class OfflineBrowserBot(Agent):
    """Downloads pages and all their objects for later viewing."""

    kind = "offline_browser"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 120,
        follow_hidden: bool = False,
        delay_low: float = 0.05,
        delay_high: float = 0.5,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.follow_hidden = follow_hidden
        self.delay_low = delay_low
        self.delay_high = delay_high

    def browse(self) -> BrowseGenerator:
        entry = Url.parse(self.entry_url)
        frontier: deque[str] = deque([self.entry_url])
        seen: set[str] = {self.entry_url}
        budget = self.max_requests

        while frontier and budget > 0:
            page_text = frontier.popleft()
            result = yield FetchAction(
                page_text,
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
            budget -= 1
            if (
                result.response.status != 200
                or result.response.content_kind is not ContentKind.HTML
            ):
                continue
            base = Url.parse(result.final_url)
            refs = extract_references(result.response.text)

            # Mirror every embedded object of the page.
            for reference in refs.embedded_objects:
                if budget <= 0:
                    return
                target = str(resolve_url(base, reference))
                if target in seen:
                    continue
                seen.add(target)
                budget -= 1
                yield FetchAction(
                    target,
                    referer=page_text,
                    think_time=self._jitter(self.delay_low, self.delay_high),
                )

            links = (
                refs.all_links if self.follow_hidden else refs.visible_links
            )
            for reference in links:
                target = resolve_url(base, reference)
                if target.host != entry.host:
                    continue
                text = str(target)
                if text not in seen:
                    seen.add(text)
                    frontier.append(text)
