"""The §4.1 counter-measure ladder: bots that fight the detectors.

* :class:`EngineBot` — drives a real browser engine headlessly: fetches
  CSS/images/scripts and executes JavaScript (so it appears in S_JS and
  S_CSS) but no human ever moves a mouse.  The set algebra catches it:
  S_JS − S_MM ⇒ robot.  With ``forge_header=True`` the HTTP User-Agent
  header disagrees with what the engine's ``navigator.userAgent`` echoes —
  Table 1's "browser type mismatch".
* :class:`BlindFetcherBot` — cannot run JavaScript but scrapes served
  scripts for URLs and fetches them hoping to look browser-like.  Against
  ``m`` decoys it picks a wrong key with probability ``m/(m+1)`` per
  fetch, the paper's §2.1 guarantee.
* :class:`MouseForgerBot` — the hypothetical "serious hacker" of §4.1 who
  "could implement a bot that could generate mouse or keystroke events":
  it resolves the real handler like a browser and fires it, defeating
  human-activity detection (which is why the paper points at trusted
  hardware input paths as future work).
"""

from __future__ import annotations

from repro.agents.base import BrowseGenerator, FetchAction
from repro.agents.behavior import BehaviorProfile, HEADLESS_ENGINE
from repro.agents.browser import BrowserAgent, BrowserConfig
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.html.links import extract_references
from repro.instrument.js_beacon import extract_all_script_urls
from repro.util.rng import RngStream

_ENGINE_UA = (
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1; embedded)"
)


class EngineBot(BrowserAgent):
    """A headless real-browser engine under robot control."""

    kind = "engine_bot"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        forge_header: bool = False,
        config: BrowserConfig | None = None,
    ) -> None:
        engine_ua = _ENGINE_UA
        header_ua = user_agent if forge_header else engine_ua
        profile = BehaviorProfile(
            js_enabled=True,
            fetches_stylesheets=True,
            fetches_images=True,
            fetches_scripts=True,
            favicon_probability=HEADLESS_ENGINE.favicon_probability,
            mouse_user=False,
            engine_user_agent=engine_ua,
        )
        super().__init__(
            client_ip, header_ua, rng, entry_url,
            profile=profile, config=config,
        )
        self.forge_header = forge_header
        if forge_header:
            self.kind = "engine_bot_forged"


class BlindFetcherBot(BrowserAgent):
    """Scrapes script sources for URLs and fetches them blindly."""

    kind = "blind_fetcher"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        fetch_per_page: int = 1,
        max_pages: int = 6,
        config: BrowserConfig | None = None,
    ) -> None:
        profile = BehaviorProfile(
            js_enabled=False,
            fetches_stylesheets=True,
            fetches_images=True,
            fetches_scripts=True,
            favicon_probability=0.0,
            mouse_user=False,
        )
        # js_enabled=False keeps BrowserAgent from executing inline
        # scripts; fetches_scripts=True still downloads .js files, which
        # is all this bot needs to scrape them.
        super().__init__(
            client_ip, user_agent, rng, entry_url,
            profile=profile, config=config,
        )
        if fetch_per_page < 1:
            raise ValueError("fetch_per_page must be >= 1")
        self.fetch_per_page = fetch_per_page
        self.max_pages = max_pages

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        entry = Url.parse(self.entry_url)
        current = self.entry_url
        for _ in range(self.max_pages):
            result = yield FetchAction(
                current, think_time=self._jitter(0.2, 1.5)
            )
            if (
                result.response.status != 200
                or result.response.content_kind is not ContentKind.HTML
            ):
                return
            base = Url.parse(result.final_url)
            refs = extract_references(result.response.text)

            # Look like a browser: grab stylesheets and scripts.
            script_sources: list[str] = []
            for reference in [*refs.stylesheets, *refs.scripts]:
                target = str(resolve_url(base, reference))
                obj = yield FetchAction(
                    target, referer=current, think_time=self._jitter(0.05, 0.3)
                )
                if obj.response.content_kind is ContentKind.JAVASCRIPT:
                    script_sources.append(obj.response.text)

            # The "smart" move: fetch URLs scraped out of the scripts —
            # which is exactly what the decoy keys punish.
            scraped: list[str] = []
            for source in script_sources:
                scraped.extend(extract_all_script_urls(source))
            if scraped:
                picks = rng.sample(
                    scraped, min(self.fetch_per_page, len(scraped))
                )
                for url in picks:
                    yield FetchAction(
                        url, referer=current, think_time=self._jitter(0.05, 0.4)
                    )

            links = [
                str(resolve_url(base, ref))
                for ref in refs.visible_links
            ]
            links = [u for u in links if Url.parse(u).host == entry.host]
            if not links:
                return
            current = rng.choice(links)


class MouseForgerBot(EngineBot):
    """Synthesises mouse events: the adversary that wins (§4.1)."""

    kind = "mouse_forger"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        config: BrowserConfig | None = None,
    ) -> None:
        super().__init__(
            client_ip, user_agent, rng, entry_url,
            forge_header=False, config=config,
        )
        # Re-enable the mouse path: the bot calls the handler itself.
        self.profile = BehaviorProfile(
            js_enabled=True,
            fetches_stylesheets=True,
            fetches_images=True,
            fetches_scripts=True,
            favicon_probability=self.profile.favicon_probability,
            mouse_user=True,
            mouse_move_probability=1.0,
            engine_user_agent=self.profile.engine_user_agent,
        )
        self.kind = "mouse_forger"
