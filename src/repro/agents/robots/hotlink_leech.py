"""Hotlink image leech.

A 2000s bandwidth parasite: it embeds another site's images in its own
pages, so its traffic is a stream of direct image fetches with Referer
headers pointing at pages the origin has never served — every referrer
"unseen".  Its request profile (all images, full referrers, no HTML) is
exactly what a *human* session looks like while it is still finishing
object fetches from previous browsing, which is why the §4.2 classifiers
need more requests to separate the two — the early-N accuracy dip of
Figure 4.
"""

from __future__ import annotations

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.uri import Url
from repro.util.rng import RngStream

_LEECH_REFERERS = (
    "http://forum.example-leech.net/thread{i}.html",
    "http://blog.example-leech.org/post{i}.html",
    "http://board.example-leech.com/view{i}.php",
)


class HotlinkLeechBot(Agent):
    """Serves another site's images through its own pages."""

    kind = "hotlink_leech"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 80,
        delay_low: float = 0.2,
        delay_high: float = 2.0,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.delay_low = delay_low
        self.delay_high = delay_high

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        host = Url.parse(self.entry_url).host
        template = rng.choice(_LEECH_REFERERS)
        for i in range(self.max_requests):
            # The home page's images are the stable hotlink targets; the
            # cache-busting query models per-viewer variation.
            referer = template.replace("{i}", str(rng.randint(1, 400)))
            yield FetchAction(
                f"http://{host}/img/p000_{i % 3}.jpg?v={rng.randint(1, 10**6)}",
                referer=referer,
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
