"""Web crawler: breadth-first link spider.

Crawlers request HTML and skip presentation objects — exactly the
behaviour the CSS-beacon test keys on (§2.2: "Some Web crawlers request
only HTML files").  A ``follow_hidden`` crawler queues every anchor it
sees, visible or not, and therefore walks into the hidden-link trap.
Polite crawlers fetch robots.txt first and respect its Disallow rules
(§5: the protocol "is entirely advisory").
"""

from __future__ import annotations

from collections import deque

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.html.links import extract_references
from repro.site.robots_txt import RobotsTxt, parse_robots_txt
from repro.util.rng import RngStream


class CrawlerBot(Agent):
    """A search-engine-style spider."""

    kind = "crawler"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 80,
        polite: bool = True,
        follow_hidden: bool = False,
        fetch_images: bool = False,
        delay_low: float = 0.4,
        delay_high: float = 2.5,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.polite = polite
        self.follow_hidden = follow_hidden
        # Image-search crawlers mirror page images (but still skip CSS
        # and scripts — they index content, they don't render).
        self.fetch_images = fetch_images
        self.delay_low = delay_low
        self.delay_high = delay_high
        if follow_hidden:
            self.kind = "crawler_hidden"
        elif fetch_images:
            self.kind = "image_crawler"

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        entry = Url.parse(self.entry_url)
        budget = self.max_requests
        robots: RobotsTxt | None = None

        if self.polite:
            result = yield FetchAction(
                f"http://{entry.host}/robots.txt",
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
            budget -= 1
            if result.response.status == 200:
                robots = parse_robots_txt(result.response.text)

        if rng.bernoulli(0.35):
            # Search engines fetch site favicons for their result pages.
            yield FetchAction(
                f"http://{entry.host}/favicon.ico",
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
            budget -= 1

        frontier: deque[str] = deque([self.entry_url])
        seen: set[str] = {self.entry_url}

        while frontier and budget > 0:
            url_text = frontier.popleft()
            url = Url.parse(url_text)
            if robots is not None and not robots.allows(
                self.user_agent, url.path
            ):
                continue
            result = yield FetchAction(
                url_text,
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
            budget -= 1
            if (
                result.response.status != 200
                or result.response.content_kind is not ContentKind.HTML
            ):
                continue
            refs = extract_references(result.response.text)
            if self.fetch_images:
                for reference in refs.images:
                    if budget <= 0:
                        return
                    target = str(resolve_url(url, reference))
                    if target in seen:
                        continue
                    seen.add(target)
                    budget -= 1
                    yield FetchAction(
                        target,
                        referer=url_text,
                        think_time=self._jitter(
                            self.delay_low, self.delay_high
                        ),
                    )
            links = (
                refs.all_links if self.follow_hidden else refs.visible_links
            )
            for reference in links:
                target = resolve_url(url, reference)
                if target.host != entry.host:
                    continue
                text = str(target)
                if text not in seen:
                    seen.add(text)
                    frontier.append(text)
            # Crawl order: mostly FIFO, with occasional shuffling the way
            # real schedulers interleave per-host queues.
            if len(frontier) > 4 and rng.bernoulli(0.2):
                frontier = deque(rng.shuffled(frontier))
