"""E-mail address harvester.

"Some Web crawlers request only HTML files, as do email address
collectors" (§2.2).  The harvester greedily scans page text for
addresses; it never fetches embedded objects, never executes JavaScript,
and rarely bothers with robots.txt.
"""

from __future__ import annotations

import re
from collections import deque

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.html.links import extract_references
from repro.util.rng import RngStream

_EMAIL_RE = re.compile(r"[\w.+-]+@[\w-]+\.[\w.]+")


class EmailHarvesterBot(Agent):
    """Scrapes pages hunting for mailto text."""

    kind = "email_harvester"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 60,
        delay_low: float = 0.15,
        delay_high: float = 1.0,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.delay_low = delay_low
        self.delay_high = delay_high
        self.harvested: set[str] = set()

    def browse(self) -> BrowseGenerator:
        entry = Url.parse(self.entry_url)
        frontier: deque[str] = deque([self.entry_url])
        seen: set[str] = {self.entry_url}
        budget = self.max_requests

        while frontier and budget > 0:
            url_text = frontier.popleft()
            result = yield FetchAction(
                url_text,
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
            budget -= 1
            if (
                result.response.status != 200
                or result.response.content_kind is not ContentKind.HTML
            ):
                continue
            text = result.response.text
            self.harvested.update(_EMAIL_RE.findall(text))
            base = Url.parse(result.final_url)
            refs = extract_references(text)
            for reference in refs.visible_links:
                target = resolve_url(base, reference)
                if target.host != entry.host:
                    continue
                candidate = str(target)
                if candidate not in seen:
                    seen.add(candidate)
                    frontier.append(candidate)
