"""Referrer spammer.

§1's abuse item (2): "sending requests with forged referrer headers to
automatically create trackback links that inflate a site's search engine
rankings."  Every request carries a fabricated Referer naming the spam
site being promoted — a URL this session has never visited, which is
precisely the behaviour behind the ``UNSEEN_REFERRER%`` attribute ("referrer
spam bots frequently trip the unseen referrer trigger", §4.2).
"""

from __future__ import annotations

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.html.links import extract_references
from repro.util.rng import RngStream

_SPAM_DOMAINS = (
    "pills-discount",
    "casino-jackpot",
    "replica-watches",
    "cheap-loans",
    "miracle-diet",
)


class ReferrerSpammerBot(Agent):
    """Hits site pages with forged referrers pointing at spam sites."""

    kind = "referrer_spammer"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 40,
        delay_low: float = 0.3,
        delay_high: float = 2.0,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.delay_low = delay_low
        self.delay_high = delay_high

    def _forged_referer(self) -> str:
        domain = self.rng.choice(_SPAM_DOMAINS)
        return (
            f"http://www.{domain}{self.rng.randint(1, 99)}.example-spam.com/"
            f"page{self.rng.randint(1, 30)}.html"
        )

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        entry = Url.parse(self.entry_url)
        budget = self.max_requests

        # Discover a handful of target pages first (spammers hit pages
        # likely to display trackbacks, not the whole site).
        result = yield FetchAction(
            self.entry_url,
            referer=self._forged_referer(),
            think_time=self._jitter(self.delay_low, self.delay_high),
        )
        budget -= 1
        targets = [self.entry_url]
        if (
            result.response.status == 200
            and result.response.content_kind is ContentKind.HTML
        ):
            refs = extract_references(result.response.text)
            on_site = [
                str(resolve_url(entry, ref))
                for ref in refs.visible_links
            ]
            on_site = [u for u in on_site if Url.parse(u).host == entry.host]
            if on_site:
                targets.extend(
                    rng.sample(on_site, min(4, len(on_site)))
                )

        while budget > 0:
            budget -= 1
            yield FetchAction(
                rng.choice(targets),
                referer=self._forged_referer(),
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
