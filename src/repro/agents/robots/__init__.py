"""The robot bestiary: the abuse catalogue of §1 plus §4.1 adversaries.

* :class:`CrawlerBot` — link-graph spider (optionally robots.txt-polite,
  optionally blind to link visibility, which is what trips hidden traps);
* :class:`EmailHarvesterBot` — HTML-only page scraper hunting addresses;
* :class:`ReferrerSpammerBot` — forged-Referer trackback inflation;
* :class:`ClickFraudBot` — automated ad click-through generation;
* :class:`VulnScannerBot` — probes exploit paths, piles up 404s;
* :class:`DdosZombie` — floods one URL from a compromised host;
* :class:`OfflineBrowserBot` — downloads *everything* for later display
  (the CSS-fetching robot that makes S_H an upper bound);
* :class:`EngineBot` / :class:`BlindFetcherBot` / :class:`MouseForgerBot`
  — the §4.1 counter-measure ladder: run a real engine without a human,
  scrape-and-fetch beacon URLs (caught with probability m/(m+1)), and
  forge mouse events (defeats the scheme, motivating trusted input paths).
"""

from repro.agents.robots.click_fraud import ClickFraudBot
from repro.agents.robots.crawler import CrawlerBot
from repro.agents.robots.ddos import DdosZombie
from repro.agents.robots.email_harvester import EmailHarvesterBot
from repro.agents.robots.hotlink_leech import HotlinkLeechBot
from repro.agents.robots.offline_browser import OfflineBrowserBot
from repro.agents.robots.referrer_spammer import ReferrerSpammerBot
from repro.agents.robots.smart_bot import BlindFetcherBot, EngineBot, MouseForgerBot
from repro.agents.robots.vuln_scanner import VulnScannerBot

__all__ = [
    "BlindFetcherBot",
    "ClickFraudBot",
    "CrawlerBot",
    "DdosZombie",
    "EmailHarvesterBot",
    "EngineBot",
    "HotlinkLeechBot",
    "MouseForgerBot",
    "OfflineBrowserBot",
    "ReferrerSpammerBot",
    "VulnScannerBot",
]
