"""Vulnerability scanner.

§1's abuse item (5): "testing vulnerabilities in servers, CGI scripts,
etc."  The scanner walks a dictionary of known-exploitable paths (2006
vintage: formmail, awstats, phpBB, PHP/SQL admin consoles — the §3.2
complaint log explicitly mentions "new PHP or SQL vulnerabilities").
Nearly every probe 404s, which is what loads the ``RESPCODE_4XX%``
attribute and trips the policy's error threshold.
"""

from __future__ import annotations

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.message import Method
from repro.http.uri import Url
from repro.util.rng import RngStream

EXPLOIT_PATHS = (
    # Scanners hit favicon.ico to fingerprint server software.
    "/favicon.ico",
    "/admin.php",
    "/admin/login.php",
    "/phpmyadmin/index.php",
    "/phpMyAdmin/main.php",
    "/mysql/admin.php",
    "/db/main.php",
    "/cgi-bin/formmail.pl",
    "/cgi-bin/FormMail.cgi",
    "/cgi-bin/awstats.pl",
    "/awstats/awstats.pl",
    "/cgi-bin/php.cgi",
    "/cgi-bin/test-cgi",
    "/cgi-bin/count.cgi",
    "/cgi-bin/guestbook.pl",
    "/xmlrpc.php",
    "/blog/xmlrpc.php",
    "/wp-login.php",
    "/phpbb/viewtopic.php",
    "/forum/viewtopic.php",
    "/scripts/root.exe",
    "/MSADC/root.exe",
    "/c/winnt/system32/cmd.exe",
    "/_vti_bin/owssvr.dll",
    "/iisadmpwd/aexp2.htr",
    "/default.ida",
    "/horde/README",
    "/mail/src/read_body.php",
    "/cacti/graph_image.php",
    "/zboard/zboard.php",
    "/board/write.php",
    "/include/config.inc.php",
    "/shop/index.php",
    "/search.php",
    "/gb/index.php",
    "/pivot/modules/module_db.php",
)


class VulnScannerBot(Agent):
    """Probes exploit paths, mixing GET and HEAD requests."""

    kind = "vuln_scanner"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 60,
        head_fraction: float = 0.3,
        delay_low: float = 0.1,
        delay_high: float = 0.8,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if not 0.0 <= head_fraction <= 1.0:
            raise ValueError("head_fraction must be in [0, 1]")
        self.max_requests = max_requests
        self.head_fraction = head_fraction
        self.delay_low = delay_low
        self.delay_high = delay_high

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        entry = Url.parse(self.entry_url)
        probes = rng.shuffled(EXPLOIT_PATHS)
        budget = min(self.max_requests, len(probes) * 3)

        # Scanners usually grab the front page once to fingerprint the
        # server before probing.
        yield FetchAction(
            self.entry_url,
            think_time=self._jitter(self.delay_low, self.delay_high),
        )
        budget -= 1

        attempt = 0
        while budget > 0:
            path = probes[attempt % len(probes)]
            attempt += 1
            suffix = "" if attempt <= len(probes) else f"?try={attempt}"
            method = (
                Method.HEAD
                if rng.bernoulli(self.head_fraction)
                else Method.GET
            )
            budget -= 1
            yield FetchAction(
                f"http://{entry.host}{path}{suffix}",
                method=method,
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
