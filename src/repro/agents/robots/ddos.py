"""DDoS zombie.

§1's abuse item (1): "harnessing hundreds or thousands of compromised
machines (zombies) to flood Web sites."  One zombie floods a small set of
URLs as fast as it can; it forges a browser User-Agent (flood kits did)
but fetches nothing else — no objects, no JavaScript — so every detector
reads it as a robot, and its GET rate trips the policy threshold almost
immediately.
"""

from __future__ import annotations

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.uri import Url
from repro.util.rng import RngStream


class DdosZombie(Agent):
    """Floods the target with rapid-fire GETs."""

    kind = "ddos_zombie"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 200,
        delay_low: float = 0.02,
        delay_high: float = 0.25,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.delay_low = delay_low
        self.delay_high = delay_high

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        entry = Url.parse(self.entry_url)
        # A couple of path variants so the flood isn't a single cache key.
        targets = [
            self.entry_url,
            f"http://{entry.host}/",
            f"http://{entry.host}{entry.path}?x={rng.randint(1, 9)}",
        ]
        for _ in range(self.max_requests):
            yield FetchAction(
                rng.choice(targets),
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
