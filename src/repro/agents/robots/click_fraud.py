"""Click-fraud bot.

§1's abuse item (3): "generating automated click-throughs on online ads
to boost affiliate revenue."  The bot loads a landing page, finds its CGI
(ad) links, then hammers them with varied query parameters and forged
referrers.  It never renders anything: no CSS, no images, no JavaScript
(§2.2: "Referrer spammers and click fraud generators do not even need to
care about the content of the requested pages").
"""

from __future__ import annotations

from repro.agents.base import Agent, BrowseGenerator, FetchAction
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.html.links import extract_references
from repro.util.rng import RngStream


class ClickFraudBot(Agent):
    """Automated ad click-through generator."""

    kind = "click_fraud"
    true_label = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        max_requests: int = 50,
        delay_low: float = 0.4,
        delay_high: float = 3.0,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.delay_low = delay_low
        self.delay_high = delay_high

    def browse(self) -> BrowseGenerator:
        rng = self.rng
        entry = Url.parse(self.entry_url)
        budget = self.max_requests
        cgi_targets: list[str] = []
        page_pool = [self.entry_url]

        while budget > 0:
            if cgi_targets and rng.bernoulli(0.75):
                # "Click" an ad: same endpoint, fresh parameters so the
                # click looks unique to the affiliate network.
                base = rng.choice(cgi_targets)
                url = Url.parse(base)
                clicked = url.with_path(
                    url.path, f"q=ad{rng.randint(1, 9999)}"
                )
                budget -= 1
                yield FetchAction(
                    str(clicked),
                    referer=rng.choice(page_pool),
                    think_time=self._jitter(self.delay_low, self.delay_high),
                )
                continue

            # Revisit a landing page to discover more ad endpoints.
            target = rng.choice(page_pool)
            result = yield FetchAction(
                target,
                think_time=self._jitter(self.delay_low, self.delay_high),
            )
            budget -= 1
            if (
                result.response.status != 200
                or result.response.content_kind is not ContentKind.HTML
            ):
                continue
            base_url = Url.parse(result.final_url)
            refs = extract_references(result.response.text)
            for reference in refs.visible_links:
                resolved = resolve_url(base_url, reference)
                if resolved.host != entry.host:
                    continue
                text = str(resolved)
                if resolved.query or "/cgi-bin/" in resolved.path:
                    if text not in cgi_targets:
                        cgi_targets.append(text)
                elif text not in page_pool and len(page_pool) < 8:
                    page_pool.append(text)
