"""The human browser model.

``BrowserAgent`` walks the site's link graph the way a person behind a
2006 browser does: fetch a page, burst-fetch its embedded objects, run
inline JavaScript (the UA echo), maybe fetch the favicon, move the mouse
over the page (firing the beacon handler for *this* page's key), think,
click a visible link.  JavaScript execution is simulated faithfully from
the served bytes: the mouse handler URL is resolved out of the fetched
beacon script exactly as a JS engine would
(:func:`repro.instrument.js_beacon.find_handler_fetch_url`), so the agent
can only ever fetch the correct key if it received and "ran" the script.

Two timing details matter for Figure 2's CDFs:

* sessions often *begin mid-browse* — the <IP, User-Agent> window opens
  while the client is still pulling objects for whatever it was doing
  before (hotlinked images, a half-loaded previous page).  The model
  prepends a short warm-up of direct image fetches, which shifts every
  detection curve right the way the paper's curves are shifted;
* the mouse moves *while the page loads*, not after: once the beacon
  script has arrived, each further object fetch gives the user a chance
  to have produced the event, with a fallback after the burst.

The same class models the §4.1 headless-engine bots via
:class:`~repro.agents.behavior.BehaviorProfile`: a profile with
``mouse_user=False`` fetches everything and executes JavaScript but never
produces mouse evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import Agent, BrowseGenerator, FetchAction, FetchResult
from repro.agents.behavior import BehaviorProfile, STANDARD_BROWSER
from repro.html.links import PageReferences, extract_references
from repro.http.content import ContentKind
from repro.http.uri import Url, resolve_url
from repro.instrument.js_beacon import find_handler_fetch_url
from repro.instrument.ua_probe import interpret_ua_probe
from repro.util.rng import RngStream

_EXTERNAL_REFERERS = (
    "http://search.example.net/search?q=codeen",
    "http://links.example.org/daily.html",
    "http://mail.example.net/inbox",
)


@dataclass(frozen=True)
class BrowserConfig:
    """Pacing and navigation knobs for the browser model."""

    min_pages: int = 2
    max_pages: int = 12
    think_median: float = 9.0
    think_sigma: float = 0.7
    object_delay_low: float = 0.04
    object_delay_high: float = 0.35
    mouse_delay_low: float = 0.3
    mouse_delay_high: float = 5.0
    mouse_hazard: float = 0.6
    early_abort_probability: float = 0.08
    abort_keep_probability: float = 0.3
    back_probability: float = 0.12
    external_referer_probability: float = 0.45
    warmup_probability: float = 0.65
    warmup_max: int = 10
    long_warmup_probability: float = 0.05
    long_warmup_min: int = 20
    long_warmup_max: int = 45
    max_redirects: int = 3

    def __post_init__(self) -> None:
        if self.min_pages < 1 or self.max_pages < self.min_pages:
            raise ValueError("need 1 <= min_pages <= max_pages")
        if self.max_redirects < 0:
            raise ValueError("max_redirects must be non-negative")
        if not 0.0 <= self.mouse_hazard <= 1.0:
            raise ValueError("mouse_hazard must be in [0, 1]")
        if self.warmup_max < 0:
            raise ValueError("warmup_max must be non-negative")


class BrowserAgent(Agent):
    """A human (or a headless engine) behind a standard browser."""

    kind = "browser"
    true_label = "human"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
        profile: BehaviorProfile = STANDARD_BROWSER,
        config: BrowserConfig | None = None,
    ) -> None:
        super().__init__(client_ip, user_agent, rng, entry_url)
        self.profile = profile
        self.config = config or BrowserConfig()

    # -- the session script -------------------------------------------------

    def browse(self) -> BrowseGenerator:
        cfg = self.config
        rng = self.rng
        n_pages = rng.randint(cfg.min_pages, cfg.max_pages)
        history: list[str] = []
        favicon_done = False

        yield from self._warmup()

        current_url = self.entry_url
        referer: str | None = None
        if rng.bernoulli(cfg.external_referer_probability):
            referer = rng.choice(_EXTERNAL_REFERERS)

        for page_index in range(n_pages):
            think = 0.8 if page_index == 0 else rng.lognormal(
                cfg.think_median, cfg.think_sigma
            )
            result = yield FetchAction(
                current_url, referer=referer, think_time=think
            )
            result = yield from self._follow_redirects(result, referer)
            if (
                result.response.status != 200
                or result.response.content_kind is not ContentKind.HTML
            ):
                choice = self._recover(history)
                if choice is None:
                    return
                current_url, referer = choice
                continue

            page_url = result.final_url
            history.append(page_url)
            base = Url.parse(page_url)
            refs = extract_references(result.response.text)

            will_move = (
                self.profile.js_enabled
                and self.profile.mouse_user
                and rng.bernoulli(self.profile.mouse_move_probability)
            )
            yield from self._render_page(base, refs, will_move)

            if self.profile.js_enabled:
                yield from self._execute_inline_scripts(page_url, refs)

            if not favicon_done and rng.bernoulli(
                self.profile.favicon_probability
            ):
                favicon_done = True
                yield FetchAction(
                    f"http://{base.host}/favicon.ico",
                    referer=page_url,
                    think_time=self._jitter(
                        cfg.object_delay_low, cfg.object_delay_high
                    ),
                )

            next_choice = self._pick_next(base, refs, history)
            if next_choice is None:
                return
            current_url, referer = next_choice

    # -- sub-behaviours -------------------------------------------------------

    def _warmup(self) -> BrowseGenerator:
        """Leftover object traffic from before this session window opened.

        The home page of every generated site carries at least three
        images with deterministic names, so direct (hotlink-style) image
        fetches need no prior page load; fresh query strings keep the
        proxy cache from collapsing them.
        """
        cfg = self.config
        rng = self.rng
        if rng.bernoulli(cfg.long_warmup_probability):
            # The user spent a while on object-heavy, uninstrumented
            # content before the first page: the paper's long CDF tails.
            count = rng.randint(cfg.long_warmup_min, cfg.long_warmup_max)
        elif cfg.warmup_max == 0 or not rng.bernoulli(
            cfg.warmup_probability
        ):
            return
        else:
            count = rng.randint(1, cfg.warmup_max)
        host = Url.parse(self.entry_url).host
        for i in range(count):
            yield FetchAction(
                f"http://{host}/img/p000_{i % 3}.jpg?r={rng.randint(1, 999999)}",
                referer=rng.choice(_EXTERNAL_REFERERS),
                think_time=self._jitter(
                    cfg.object_delay_low, cfg.object_delay_high
                ),
            )

    def _follow_redirects(
        self, result: FetchResult, referer: str | None
    ) -> BrowseGenerator:
        """Chase Location headers like a browser (bounded)."""
        cfg = self.config
        hops = 0
        while (
            300 <= result.response.status < 400
            and hops < cfg.max_redirects
        ):
            location = result.response.headers.get("Location")
            if not location:
                break
            hops += 1
            result = yield FetchAction(
                location, referer=referer, think_time=0.05
            )
        return result

    def _render_page(
        self, base: Url, refs: PageReferences, will_move: bool
    ) -> BrowseGenerator:
        """Fetch embedded objects, firing the mouse handler mid-load."""
        cfg = self.config
        rng = self.rng
        profile = self.profile
        page_url = str(base)

        head_objects: list[str] = []
        if profile.fetches_stylesheets:
            head_objects.extend(refs.stylesheets)
        if profile.fetches_scripts:
            head_objects.extend(refs.scripts)
        body_objects: list[str] = []
        if profile.fetches_images:
            images = refs.images
            if profile.image_fetch_fraction < 1.0 and images:
                keep = max(
                    1, round(len(images) * profile.image_fetch_fraction)
                )
                images = images[:keep]
            body_objects.extend(images)
        body_objects.extend(refs.audio)

        # 2006 browsers parse incrementally with a couple of parallel
        # connections: head resources lead, images interleave behind them.
        planned = rng.shuffled(head_objects) + rng.shuffled(body_objects)
        if planned and rng.bernoulli(cfg.early_abort_probability):
            # The user navigated away mid-load; a random subset arrives.
            planned = [
                ref
                for ref in planned
                if rng.bernoulli(cfg.abort_keep_probability)
            ]

        scripts_text: dict[str, str] = {}
        moved = False
        for reference in planned:
            url = str(resolve_url(base, reference))
            result = yield FetchAction(
                url,
                referer=page_url,
                think_time=self._jitter(
                    cfg.object_delay_low, cfg.object_delay_high
                ),
            )
            if (
                result.response.status == 200
                and result.response.content_kind is ContentKind.JAVASCRIPT
            ):
                scripts_text[url] = result.response.text
            if (
                will_move
                and not moved
                and scripts_text
                and rng.bernoulli(cfg.mouse_hazard)
            ):
                moved = yield from self._fire_handler(
                    page_url, refs, scripts_text, mid_burst=True
                )
        if will_move and not moved:
            # The user moved the mouse after the page finished loading.
            yield from self._fire_handler(
                page_url, refs, scripts_text, mid_burst=False
            )

    def _fire_handler(
        self,
        page_url: str,
        refs: PageReferences,
        scripts_text: dict[str, str],
        mid_burst: bool,
    ) -> BrowseGenerator:
        """Resolve and fetch the page's mouse-handler URL; True on fetch."""
        cfg = self.config
        handler = refs.body_event_handlers.get("onmousemove")
        if not handler:
            return False
        for source in scripts_text.values():
            url = find_handler_fetch_url(source, handler)
            if url is not None:
                if mid_burst:
                    think = self._jitter(0.05, 0.8)
                else:
                    think = self._jitter(
                        cfg.mouse_delay_low, cfg.mouse_delay_high
                    )
                yield FetchAction(url, referer=page_url, think_time=think)
                return True
        return False

    def _execute_inline_scripts(
        self, page_url: str, refs: PageReferences
    ) -> BrowseGenerator:
        """Run inline scripts: the UA echo probe document.writes a link."""
        cfg = self.config
        engine_ua = self.profile.engine_user_agent or self.user_agent
        for source in refs.inline_scripts:
            template = interpret_ua_probe(source)
            if template is None:
                continue
            yield FetchAction(
                template.fetch_url(engine_ua),
                referer=page_url,
                think_time=self._jitter(
                    cfg.object_delay_low, cfg.object_delay_high
                ),
            )

    # -- navigation helpers ---------------------------------------------------

    def _pick_next(
        self, base: Url, refs: PageReferences, history: list[str]
    ) -> tuple[str, str] | None:
        """Choose the next page: a visible on-site link, or back."""
        cfg = self.config
        rng = self.rng
        page_url = str(base)

        if len(history) > 1 and rng.bernoulli(cfg.back_probability):
            return history[-2], page_url

        candidates = []
        for reference in refs.visible_links:
            target = resolve_url(base, reference)
            if target.host == base.host:
                candidates.append(str(target))
        if not candidates:
            if len(history) > 1:
                return history[-2], page_url
            return None
        return rng.choice(candidates), page_url

    def _recover(self, history: list[str]) -> tuple[str, str | None] | None:
        """After an error page: go back if possible, else give up."""
        if history:
            return history[-1], None
        return None
