"""Agent protocol: generator-driven HTTP clients.

An agent's ``browse()`` method is a generator: it yields a
:class:`FetchAction` (what to fetch, with what referrer, after how much
think time) and receives back a :class:`FetchResult` carrying the actual
request and response.  The session runner owns the clock and the proxy;
the agent owns behaviour.  This keeps every agent a linear, readable
script of its real-world counterpart.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Generator

from repro.http.message import Method, Request, Response
from repro.util.rng import RngStream

BrowseGenerator = Generator["FetchAction", "FetchResult", None]


@dataclass(frozen=True)
class FetchAction:
    """One fetch the agent wants to perform."""

    url: str
    method: Method = Method.GET
    referer: str | None = None
    think_time: float = 0.0
    extra_headers: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")


@dataclass(frozen=True)
class FetchResult:
    """What came back for a FetchAction."""

    request: Request
    response: Response

    @property
    def final_url(self) -> str:
        """The fetched URL as a string."""
        return str(self.request.url)


class Agent(abc.ABC):
    """Base class for every traffic source.

    ``kind`` names the behavioural family (used for ground-truth labels
    and mix accounting); ``true_label`` is "human" or "robot" — attached
    to sessions by the workload engine for *evaluation only*, never read
    by detectors.
    """

    kind: str = "abstract"
    true_label: str = "robot"

    def __init__(
        self,
        client_ip: str,
        user_agent: str,
        rng: RngStream,
        entry_url: str,
    ) -> None:
        if not client_ip:
            raise ValueError("client_ip must be non-empty")
        self.client_ip = client_ip
        self.user_agent = user_agent
        self.rng = rng
        self.entry_url = entry_url

    @abc.abstractmethod
    def browse(self) -> BrowseGenerator:
        """Yield fetch actions; receive fetch results."""

    # -- helpers shared by concrete agents ---------------------------------

    def _jitter(self, low: float, high: float) -> float:
        """Uniform think-time helper."""
        return self.rng.uniform(low, high)


@dataclass
class SessionBudget:
    """Limits the runner enforces on one agent session."""

    max_requests: int = 500
    max_duration: float = 3000.0

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.max_duration <= 0:
            raise ValueError("max_duration must be positive")
