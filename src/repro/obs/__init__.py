"""``repro.obs`` — unified metrics, stage timing, and the flight recorder.

The paper's detector ran inline on live CoDeeN proxies, where operators
judged it by latency overhead and drop behaviour under real load.  This
package is the reproduction's equivalent instrument panel: one
process-wide metric model (:class:`MetricsRegistry` — counters, gauges,
fixed-bucket histograms keyed by ``(name, labels)``), lightweight
``span()``/``timer()`` stage-timing hooks, deterministic merging across
ingress lanes and detection shards (:func:`merge_snapshots`), Prometheus
and JSON exporters, and a virtual-time flight recorder
(:class:`FlightRecorder`) that makes overload episodes — shed bursts,
queue-depth spikes, batch-latency blowups — reconstructable after the
fact.

Two metric domains, one registry:

* **deterministic** metrics (the default) are pure functions of the
  admitted event stream — counts, event-time histograms, end-of-run
  gauges.  Snapshots of this domain are byte-identical across the
  ``serial``/``thread``/``process`` ingress executors and every queue
  depth, which the test suite pins (the same contract the result merge
  already honours).
* **wall** metrics (``wall=True``) measure real elapsed time or live
  backlog — stage timings, queue waits, depth gauges.  They are the
  numbers capacity planning wants and are excluded from deterministic
  snapshots (``include_wall=False``).
"""

from repro.obs.export import (
    render_table,
    snapshot_from_json,
    to_json,
    to_prometheus,
)
from repro.obs.flight import FlightFrame, FlightRecorder, merge_flight
from repro.obs.registry import (
    EVENT_SECONDS_BUCKETS,
    SIZE_BUCKETS,
    WALL_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricPoint,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "EVENT_SECONDS_BUCKETS",
    "FlightFrame",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricPoint",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SIZE_BUCKETS",
    "WALL_SECONDS_BUCKETS",
    "merge_flight",
    "merge_snapshots",
    "render_table",
    "snapshot_from_json",
    "to_json",
    "to_prometheus",
]
