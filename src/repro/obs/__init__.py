"""``repro.obs`` — unified metrics, stage timing, and the flight recorder.

The paper's detector ran inline on live CoDeeN proxies, where operators
judged it by latency overhead and drop behaviour under real load.  This
package is the reproduction's equivalent instrument panel: one
process-wide metric model (:class:`MetricsRegistry` — counters, gauges,
fixed-bucket histograms keyed by ``(name, labels)``), lightweight
``span()``/``timer()`` stage-timing hooks, deterministic merging across
ingress lanes and detection shards (:func:`merge_snapshots`), Prometheus
and JSON exporters, and a virtual-time flight recorder
(:class:`FlightRecorder`) that makes overload episodes — shed bursts,
queue-depth spikes, batch-latency blowups — reconstructable after the
fact.

:mod:`repro.obs.spans` adds the causal layer on top: per-request span
trees in both clock domains, tail-based exemplar sampling
(:class:`TailSampler`), a Chrome trace-event exporter
(:func:`to_trace_events`), critical-path profiling
(:func:`profile_stages`) and the live :class:`QueueDelayEstimator`.

Two metric domains, one registry:

* **deterministic** metrics (the default) are pure functions of the
  admitted event stream — counts, event-time histograms, end-of-run
  gauges.  Snapshots of this domain are byte-identical across the
  ``serial``/``thread``/``process`` ingress executors and every queue
  depth, which the test suite pins (the same contract the result merge
  already honours).
* **wall** metrics (``wall=True``) measure real elapsed time or live
  backlog — stage timings, queue waits, depth gauges.  They are the
  numbers capacity planning wants and are excluded from deterministic
  snapshots (``include_wall=False``).
"""

from repro.obs.export import (
    render_table,
    snapshot_from_json,
    to_json,
    to_prometheus,
)
from repro.obs.flight import FlightFrame, FlightRecorder, merge_flight
from repro.obs.registry import (
    EVENT_SECONDS_BUCKETS,
    SIZE_BUCKETS,
    WALL_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricPoint,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.spans import (
    NULL_SPAN,
    ProfileReport,
    QueueDelayEstimator,
    Span,
    SpanConfig,
    SpanTracer,
    SpanTree,
    StageStats,
    TailSampler,
    merge_traces,
    profile_stages,
    to_trace_events,
    trace_trees_from_json,
)

__all__ = [
    "Counter",
    "EVENT_SECONDS_BUCKETS",
    "FlightFrame",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricPoint",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "ProfileReport",
    "QueueDelayEstimator",
    "SIZE_BUCKETS",
    "Span",
    "SpanConfig",
    "SpanTracer",
    "SpanTree",
    "StageStats",
    "TailSampler",
    "WALL_SECONDS_BUCKETS",
    "merge_flight",
    "merge_snapshots",
    "merge_traces",
    "profile_stages",
    "render_table",
    "snapshot_from_json",
    "to_json",
    "to_prometheus",
    "to_trace_events",
    "trace_trees_from_json",
]
