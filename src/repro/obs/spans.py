"""Causal per-session tracing: span trees, tail sampling, profiling.

Where :mod:`repro.obs.registry` answers "how much / how often", this
module answers "where did *this* request's time go".  Every admitted
event can carry a trace: a tree of named spans covering the full path —
admission, lane-queue wait, node-shard dispatch, detection update,
micro-batch flush, vectorized scoring, verdict/CAPTCHA policy — in
**both clock domains**:

* **virtual** (event time): span boundaries derived purely from event
  timestamps and the admitted per-lane order.  The virtual view of a
  span tree is a pure function of the admitted event stream, so it is
  byte-identical across the ``serial``/``thread``/``process`` ingress
  executors and every queue depth — the same contract the metric
  snapshots honour.
* **wall** (``perf_counter``): real elapsed time per stage, the numbers
  capacity planning and the ``repro profile`` critical-path report
  want.  Wall clocks are lane-local (a process lane's clock lives in
  the child interpreter), so wall times are only comparable *within*
  a trace, never across lanes.

Recording every trace at replay scale would swamp memory, so retention
is **tail-based**: a :class:`TailSampler` keeps exemplar traces per
category under fixed per-lane budgets.  Categories split into the same
two domains as metrics:

* deterministic — ``head`` (the first N traces a lane admits),
  ``robot`` (the request ended under a robot verdict or policy block),
  ``error`` (5xx response), ``finish`` (the lane's end-of-run flush /
  finalize trace).  Which traces these budgets retain is a pure
  function of the admitted stream.
* wall — ``slow`` (the top K by wall duration) and ``shed`` (admission
  refused the event).  Inherently timing-dependent, so they are
  excluded from the deterministic export view.

Everything here is picklable: tracers ride lane workers into process
children, and retained trees ride :class:`~repro.ingress.workers.LaneResult`
back, merging in lane order like metric snapshots do.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

__all__ = [
    "DETERMINISTIC_CATEGORIES",
    "NULL_SPAN",
    "WALL_CATEGORIES",
    "ProfileReport",
    "QueueDelayEstimator",
    "Span",
    "SpanConfig",
    "SpanTracer",
    "SpanTree",
    "StageStats",
    "TailSampler",
    "merge_traces",
    "profile_stages",
    "to_trace_events",
    "trace_trees_from_json",
]

#: Retention categories that are pure functions of the admitted stream.
DETERMINISTIC_CATEGORIES: tuple[str, ...] = (
    "head", "robot", "error", "finish",
)

#: Retention categories that depend on wall-clock behaviour.
WALL_CATEGORIES: tuple[str, ...] = ("slow", "shed")

TRACE_EVENT_SCHEMA = "repro.spans/v1"


@dataclass(frozen=True)
class SpanConfig:
    """Per-lane tail-sampling budgets (traces retained per category).

    ``head`` keeps the first N traces the lane sees (deterministic
    exemplars of steady-state behaviour); ``robot``/``error`` keep the
    first N traces flagged by verdict/response; ``slow`` keeps the top
    K by root wall duration; ``shed`` keeps the first N admission
    refusals.  ``finish`` traces (one per lane) are always retained.
    A budget of 0 disables that category.
    """

    head: int = 16
    slow: int = 16
    robot: int = 32
    error: int = 16
    shed: int = 16

    def __post_init__(self) -> None:
        for name in ("head", "slow", "robot", "error", "shed"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} budget must be non-negative")

    @classmethod
    def uniform(cls, budget: int) -> "SpanConfig":
        """One budget for every category (the ``--trace-sample`` knob)."""
        return cls(
            head=budget, slow=budget, robot=2 * budget,
            error=budget, shed=budget,
        )


@dataclass(slots=True)
class Span:
    """One named stage of one trace, in both clock domains.

    ``span_id`` counts creation order within the trace (0 = root), so
    ids — like everything virtual — are deterministic.  Wall times are
    lane-local ``perf_counter`` readings.  Slotted: spans are built on
    the request path, where construction cost is tracer self-time.
    """

    name: str
    span_id: int
    parent_id: int | None
    virtual_start: float
    virtual_end: float
    wall_start: float = 0.0
    wall_end: float = 0.0

    @property
    def virtual_duration(self) -> float:
        """Event-time seconds this span covers (often 0)."""
        return max(0.0, self.virtual_end - self.virtual_start)

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds this span took."""
        return max(0.0, self.wall_end - self.wall_start)


@dataclass
class SpanTree:
    """One completed trace: a root span plus its descendants.

    ``spans`` is in creation order (``spans[0]`` is the root), which is
    also a valid topological order — parents precede children.
    ``categories`` is filled by the sampler with the tags the trace was
    retained under.
    """

    trace_id: str
    lane: int
    seq: int
    spans: list[Span] = field(default_factory=list)
    categories: tuple[str, ...] = ()

    @property
    def root(self) -> Span:
        """The trace's root span."""
        return self.spans[0]

    @property
    def order_key(self) -> tuple[int, int]:
        """Deterministic merge order: (lane, per-lane sequence)."""
        return (self.lane, self.seq)

    def deterministic_categories(self) -> tuple[str, ...]:
        """The retention tags that are pure functions of the stream."""
        return tuple(
            c for c in self.categories if c in DETERMINISTIC_CATEGORIES
        )


class TailSampler:
    """Bounded tail-based retention of completed traces.

    Every completed trace is *offered* with a set of flags; the sampler
    keeps it when any category it qualifies for still has budget.
    Deterministic categories admit in offer order (pure function of the
    lane's event stream); ``slow`` keeps the top-K by root wall
    duration via a min-heap and may evict earlier keeps.
    """

    def __init__(self, config: SpanConfig | None = None) -> None:
        self.config = config or SpanConfig()
        self._offered = 0
        self._counts = {"head": 0, "robot": 0, "error": 0, "shed": 0}
        #: Traces kept under >= 1 deterministic (or shed) category.
        self._kept: list[SpanTree] = []
        #: (wall_duration, -offer_index, tree) min-heap of slow keeps.
        self._slow: list[tuple[float, int, SpanTree]] = []
        self._slow_seq = 0

    @property
    def offered(self) -> int:
        """How many traces were offered (kept or not)."""
        return self._offered

    def offer(self, tree: SpanTree, flags: Iterable[str] = ()) -> bool:
        """Consider one completed trace for retention.

        ``flags`` name the categories the trace *qualifies* for beyond
        the implicit ``head``/``slow``; returns True when retained.
        """
        self._offered = self._offered + 1
        flagset = set(flags)
        cfg = self.config
        categories: list[str] = []
        if "finish" in flagset:
            categories.append("finish")
        for category in ("robot", "error", "shed"):
            if (
                category in flagset
                and self._counts[category] < getattr(cfg, category, 0)
            ):
                self._counts[category] += 1
                categories.append(category)
        if not flagset and self._counts["head"] < cfg.head:
            self._counts["head"] += 1
            categories.append("head")
        kept = False
        if categories:
            tree.categories = tuple(sorted(categories))
            self._kept.append(tree)
            kept = True
        # Slow ranking applies to every non-shed trace with a measured
        # root; a tree can be retained under both a deterministic tag
        # and ``slow`` (deduplicated at collection).
        if cfg.slow and "shed" not in flagset:
            duration = tree.root.wall_duration
            self._slow_seq += 1
            entry = (duration, -self._slow_seq, tree)
            if len(self._slow) < cfg.slow:
                heapq.heappush(self._slow, entry)
                kept = True
            elif duration > self._slow[0][0]:
                heapq.heapreplace(self._slow, entry)
                kept = True
        return kept

    def traces(self) -> list[SpanTree]:
        """Retained traces with final category tags, in (lane, seq) order."""
        slow_ids = {id(tree) for _, _, tree in self._slow}
        collected: dict[int, SpanTree] = {id(t): t for t in self._kept}
        for _, _, tree in self._slow:
            collected.setdefault(id(tree), tree)
        for tree in collected.values():
            tags = set(tree.categories)
            tags.discard("slow")
            if id(tree) in slow_ids:
                tags.add("slow")
            tree.categories = tuple(sorted(tags))
        return sorted(collected.values(), key=lambda t: t.order_key)

    def __len__(self) -> int:
        slow_only = sum(
            1
            for _, _, tree in self._slow
            if not any(t is tree for t in self._kept)
        )
        return len(self._kept) + slow_only


class _NullSpan:
    """No-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Shared no-op span for callers guarding on "is tracing attached?".
NULL_SPAN = _NULL_SPAN


class _SpanHandle:
    """Context manager closing one open span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close_span(self._span)


class SpanTracer:
    """Builds one lane's span trees; hands completed traces to a sampler.

    The tracer keeps a stack of open spans; :meth:`begin` opens a root,
    :meth:`span` nests under the innermost open span, :meth:`end`
    completes the trace and offers it to the sampler together with any
    flags accumulated via :meth:`flag` (how deep pipeline stages — the
    detection verdict, say — tag the trace without threading context
    objects through every call).

    Trace ids are ``"{lane}:{seq}"`` with ``seq`` counting begun traces
    per lane — deterministic, because each lane consumes its events in
    admission order under every executor.  Pickles with no active
    trace (workers ship to process children before their first event).
    """

    def __init__(
        self,
        lane: int = 0,
        sampler: TailSampler | None = None,
        wall_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.lane = lane
        # Explicit None check: an empty sampler is falsy (len() == 0)
        # and must NOT be swapped for a default-config one.
        self.sampler = TailSampler() if sampler is None else sampler
        self._wall_clock = wall_clock
        self._seq = 0
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._flags: set[str] = set()

    @property
    def active(self) -> bool:
        """Whether a trace is currently open."""
        return bool(self._stack)

    # -- building one trace -------------------------------------------------

    def begin(
        self,
        name: str,
        virtual_time: float,
        wall_start: float | None = None,
    ) -> Span:
        """Open a root span; ``wall_start`` may back-date it (queue wait)."""
        if self._stack:
            raise RuntimeError(
                f"begin({name!r}) with trace {self.lane}:{self._seq - 1} "
                "still open"
            )
        root = Span(
            name=name,
            span_id=0,
            parent_id=None,
            virtual_start=virtual_time,
            virtual_end=virtual_time,
            wall_start=(
                self._wall_clock() if wall_start is None else wall_start
            ),
        )
        self._spans = [root]
        self._stack = [root]
        self._flags.clear()
        self._seq += 1
        return root

    def span(
        self,
        name: str,
        virtual_time: float,
        virtual_end: float | None = None,
    ) -> _SpanHandle | _NullSpan:
        """Open a child span of the innermost open span (no-op if idle)."""
        if not self._stack:
            return _NULL_SPAN
        parent = self._stack[-1]
        child = Span(
            name=name,
            span_id=len(self._spans),
            parent_id=parent.span_id,
            virtual_start=virtual_time,
            virtual_end=(
                virtual_time if virtual_end is None else virtual_end
            ),
            wall_start=self._wall_clock(),
        )
        self._spans.append(child)
        self._stack.append(child)
        return _SpanHandle(self, child)

    def record(
        self,
        name: str,
        virtual_start: float,
        virtual_end: float,
        wall_duration: float = 0.0,
        wall_end: float | None = None,
    ) -> None:
        """Add an already-measured child span (queue waits, say).

        Passing ``wall_end`` (a reading the caller already took) skips
        the clock read — one less gap of unattributed root self-time.
        """
        if not self._stack:
            return
        parent = self._stack[-1]
        wall_now = self._wall_clock() if wall_end is None else wall_end
        self._spans.append(
            Span(
                name=name,
                span_id=len(self._spans),
                parent_id=parent.span_id,
                virtual_start=virtual_start,
                virtual_end=virtual_end,
                wall_start=wall_now - wall_duration,
                wall_end=wall_now,
            )
        )

    def flag(self, category: str) -> None:
        """Tag the open trace for a retention category (robot, error)."""
        if self._stack:
            self._flags.add(category)

    def _close_span(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order"
            )
        self._stack.pop()
        span.wall_end = self._wall_clock()

    def end(
        self,
        flags: Iterable[str] = (),
        virtual_end: float | None = None,
    ) -> SpanTree | None:
        """Complete the open trace and offer it to the sampler."""
        # Stamp the wall end before any bookkeeping: everything below
        # is post-measurement and costs no attributed time.
        wall_end = self._wall_clock()
        if not self._stack:
            return None
        if len(self._stack) != 1:
            raise RuntimeError(
                "end() with child spans still open: "
                + " > ".join(s.name for s in self._stack)
            )
        root = self._stack.pop()
        root.wall_end = wall_end
        if virtual_end is not None:
            root.virtual_end = virtual_end
        # The root covers its children in virtual time: a request's
        # queue wait ends at the lane clock, past the event stamp.
        for span in self._spans:
            if span.virtual_end > root.virtual_end:
                root.virtual_end = span.virtual_end
        seq = self._seq - 1
        tree = SpanTree(
            trace_id=f"{self.lane}:{seq}",
            lane=self.lane,
            seq=seq,
            spans=self._spans,
        )
        self._spans = []
        all_flags = self._flags | set(flags)
        self._flags.clear()
        self.sampler.offer(tree, all_flags)
        return tree

    def traces(self) -> list[SpanTree]:
        """The sampler's retained traces (finalized tags, sorted)."""
        return self.sampler.traces()

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        if self._stack:
            raise RuntimeError("cannot pickle a tracer mid-trace")
        return self.__dict__.copy()


def merge_traces(
    groups: Iterable[Sequence[SpanTree]],
) -> list[SpanTree]:
    """Merge per-lane retained traces into one deterministic list."""
    merged = [tree for group in groups for tree in group]
    merged.sort(key=lambda t: t.order_key)
    return merged


# -- queue-delay estimation -------------------------------------------------


class QueueDelayEstimator:
    """EWMA of one lane's queue delay, in both clock domains.

    ``observe_wall`` feeds measured wall-clock waits (how long an
    admitted event sat in the lane queue); ``observe_event`` feeds the
    virtual-time skew (how far behind its lane's event clock an event
    was when the worker reached it — a pure function of the admitted
    stream, so the event-domain estimate is deterministic).  This is
    the latency signal queue-delay-aware admission (the ROADMAP's
    graduated-response ladder) will read.
    """

    __slots__ = ("alpha", "wall_seconds", "event_seconds",
                 "wall_samples", "event_samples")

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.wall_seconds = 0.0
        self.event_seconds = 0.0
        self.wall_samples = 0
        self.event_samples = 0

    def observe_wall(self, seconds: float) -> None:
        """Fold one wall-clock queue-wait sample into the EWMA."""
        self.wall_samples += 1
        if self.wall_samples == 1:
            self.wall_seconds = seconds
        else:
            self.wall_seconds += self.alpha * (seconds - self.wall_seconds)

    def observe_event(self, seconds: float) -> None:
        """Fold one virtual-time queue-skew sample into the EWMA."""
        self.event_samples += 1
        if self.event_samples == 1:
            self.event_seconds = seconds
        else:
            self.event_seconds += self.alpha * (
                seconds - self.event_seconds
            )


# -- Chrome trace-event export ----------------------------------------------


def _virtual_micros(seconds: float) -> float:
    """Event-time seconds -> integer-friendly microseconds.

    Rounded to a tenth of a microsecond so the value is a stable
    decimal: byte-identity of the virtual export must not hinge on
    float repr noise from the ``* 1e6`` scaling.
    """
    return round(seconds * 1e6, 1)


def to_trace_events(
    traces: Sequence[SpanTree], clock: str = "wall"
) -> str:
    """Render retained traces as canonical Chrome trace-event JSON.

    ``clock="wall"`` exports every retained trace with lane-local wall
    timings (normalized so each lane starts at 0) — the view Perfetto
    and ``repro profile`` read.  ``clock="virtual"`` exports only
    deterministically-retained traces with event-time boundaries and
    **no wall data at all**: two runs that admitted the same stream
    produce byte-identical documents, whatever executor ran the lanes.
    """
    if clock not in ("wall", "virtual"):
        raise ValueError(f"clock must be wall or virtual, got {clock!r}")
    if clock == "virtual":
        chosen = [
            replace_categories(tree, tree.deterministic_categories())
            for tree in traces
            if tree.deterministic_categories()
        ]
    else:
        chosen = list(traces)
    chosen.sort(key=lambda t: t.order_key)

    # Per-lane origin: the earliest wall reading in the lane — spans,
    # not just roots, because recorded children (queue waits) may be
    # back-dated past their root's start.
    wall_origin: dict[int, float] = {}
    if clock == "wall":
        for tree in chosen:
            for span in tree.spans:
                origin = wall_origin.get(tree.lane)
                if origin is None or span.wall_start < origin:
                    wall_origin[tree.lane] = span.wall_start

    events: list[dict] = []
    lanes = sorted({tree.lane for tree in chosen})
    for lane in lanes:
        events.append(
            {
                "args": {"name": _lane_label(lane)},
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": lane,
            }
        )
    for tree in chosen:
        category = ",".join(tree.categories) or "trace"
        for span in tree.spans:
            if clock == "virtual":
                ts = _virtual_micros(span.virtual_start)
                dur = _virtual_micros(span.virtual_duration)
            else:
                origin = wall_origin[tree.lane]
                ts = (span.wall_start - origin) * 1e6
                dur = span.wall_duration * 1e6
            args: dict = {
                "trace": tree.trace_id,
                "span": span.span_id,
                "virtual_ts": _virtual_micros(span.virtual_start),
            }
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            events.append(
                {
                    "args": args,
                    "cat": category,
                    "dur": dur,
                    "name": span.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tree.lane,
                    "ts": ts,
                }
            )
    document = {
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "schema": TRACE_EVENT_SCHEMA},
        "traceEvents": events,
    }
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def replace_categories(
    tree: SpanTree, categories: tuple[str, ...]
) -> SpanTree:
    """A shallow copy of ``tree`` carrying only ``categories``."""
    return SpanTree(
        trace_id=tree.trace_id,
        lane=tree.lane,
        seq=tree.seq,
        spans=tree.spans,
        categories=categories,
    )


def _lane_label(lane: int) -> str:
    return "admission" if lane < 0 else f"lane {lane}"


def trace_trees_from_json(text: str) -> tuple[list[SpanTree], str]:
    """Parse a :func:`to_trace_events` document back into span trees.

    Returns ``(trees, clock)``; span wall/virtual fields are filled
    from whichever clock the document was exported with (``ts``/``dur``
    land in that domain; the other stays zero except for the virtual
    stamp every event carries in ``args``).
    """
    document = json.loads(text)
    other = document.get("otherData", {})
    if other.get("schema") != TRACE_EVENT_SCHEMA:
        raise ValueError(
            "not a repro span trace (missing/unknown otherData.schema)"
        )
    clock = other.get("clock", "wall")
    trees: dict[str, SpanTree] = {}
    for event in document.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = event["args"]
        trace_id = args["trace"]
        tree = trees.get(trace_id)
        if tree is None:
            lane_text, _, seq_text = trace_id.partition(":")
            tree = trees[trace_id] = SpanTree(
                trace_id=trace_id,
                lane=int(lane_text),
                seq=int(seq_text),
                categories=tuple(
                    c for c in event.get("cat", "").split(",") if c
                ),
            )
        start = event["ts"] / 1e6
        end = start + event["dur"] / 1e6
        virtual = args.get("virtual_ts", 0.0) / 1e6
        span = Span(
            name=event["name"],
            span_id=args["span"],
            parent_id=args.get("parent"),
            virtual_start=virtual,
            virtual_end=virtual,
            wall_start=0.0,
            wall_end=0.0,
        )
        if clock == "virtual":
            span.virtual_start, span.virtual_end = start, end
        else:
            span.wall_start, span.wall_end = start, end
        tree.spans.append(span)
    for tree in trees.values():
        tree.spans.sort(key=lambda s: s.span_id)
    return sorted(trees.values(), key=lambda t: t.order_key), clock


# -- critical-path profiling ------------------------------------------------


@dataclass
class StageStats:
    """Aggregate timing of one named stage across retained traces."""

    name: str
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    durations: list[float] = field(default_factory=list)

    def quantile(self, q: float) -> float:
        """Exact quantile over the per-span durations."""
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        index = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[index]


@dataclass
class ProfileReport:
    """Per-stage critical-path attribution over a set of traces."""

    clock: str
    stages: list[StageStats]
    traces: int
    root_total: float
    root_self_total: float

    @property
    def attributed_fraction(self) -> float:
        """Share of end-to-end root time covered by named child stages."""
        if self.root_total <= 0.0:
            return 1.0
        return 1.0 - self.root_self_total / self.root_total

    def render(self, limit: int | None = None) -> str:
        """The ``repro profile`` table."""
        unit = "s" if self.clock == "wall" else "vs"
        lines = [
            f"{self.traces} traces, {self.clock} clock; "
            f"end-to-end time {self.root_total:.6g}{unit}",
            f"{'stage':<22}{'count':>8}{'total':>12}{'self':>12}"
            f"{'p50':>10}{'p95':>10}{'p99':>10}{'share':>8}",
        ]
        shown = self.stages if limit is None else self.stages[:limit]
        for stage in shown:
            share = (
                stage.self_total / self.root_total
                if self.root_total > 0
                else 0.0
            )
            lines.append(
                f"{stage.name:<22}{stage.count:>8}"
                f"{stage.total:>12.6g}{stage.self_total:>12.6g}"
                f"{stage.quantile(0.5):>10.3g}"
                f"{stage.quantile(0.95):>10.3g}"
                f"{stage.quantile(0.99):>10.3g}"
                f"{share:>8.1%}"
            )
        lines.append(
            f"attributed to named stages: {self.attributed_fraction:.1%} "
            f"of end-to-end time ({1.0 - self.attributed_fraction:.1%} "
            "unattributed root self-time)"
        )
        return "\n".join(lines)


def profile_stages(
    traces: Sequence[SpanTree], clock: str = "wall"
) -> ProfileReport:
    """Reduce span trees to per-stage totals, self times and quantiles.

    *Self* time is a span's duration minus its direct children's — the
    critical-path attribution.  Root spans contribute their own self
    time to the ``root_self_total`` (the unattributed remainder), and
    the report's ``attributed_fraction`` is the share of end-to-end
    time named child stages account for.
    """
    if clock not in ("wall", "virtual"):
        raise ValueError(f"clock must be wall or virtual, got {clock!r}")

    def duration(span: Span) -> float:
        return (
            span.wall_duration if clock == "wall" else span.virtual_duration
        )

    stages: dict[str, StageStats] = {}
    root_total = 0.0
    root_self_total = 0.0
    for tree in traces:
        child_sums: dict[int, float] = {}
        for span in tree.spans:
            if span.parent_id is not None:
                child_sums[span.parent_id] = (
                    child_sums.get(span.parent_id, 0.0) + duration(span)
                )
        for span in tree.spans:
            total = duration(span)
            self_time = max(0.0, total - child_sums.get(span.span_id, 0.0))
            stage = stages.get(span.name)
            if stage is None:
                stage = stages[span.name] = StageStats(name=span.name)
            stage.count += 1
            stage.total += total
            stage.self_total += self_time
            stage.durations.append(total)
            if span.parent_id is None:
                root_total += total
                root_self_total += self_time
    ordered = sorted(
        stages.values(), key=lambda s: (-s.self_total, s.name)
    )
    return ProfileReport(
        clock=clock,
        stages=ordered,
        traces=len(traces),
        root_total=root_total,
        root_self_total=root_self_total,
    )
