"""The metric model: instruments, the registry, mergeable snapshots.

Design constraints, in priority order:

1. **Deterministic mergeability.**  Per-lane and per-shard registries
   reduce to one deployment-wide view exactly like the result merge
   does: each lane's observations happen in admission order, lane
   snapshots are absorbed in lane-index order, and every combining
   operation (integer adds, float sums over identically-ordered
   sequences, bucket-count adds) is order-stable — so the merged
   deterministic snapshot is byte-identical across executors and queue
   depths whenever the results are.
2. **Picklability.**  Instruments, registries and snapshots cross
   process boundaries: a lane worker's registry rides into the child
   interpreter with its node, and the finished snapshot ships back in
   the ``LaneResult``.  Listeners (live callbacks) are the one thing
   that cannot travel, so they are dropped on pickling — and the
   ingress refuses process lanes while any are attached, the same
   contract traffic taps already follow.
3. **Cheap on the hot path.**  A counter increment is one attribute
   add; a histogram observation is one bisect over a small tuple.
   Instruments are handed out once (get-or-create) and cached by the
   instrumented code, so steady-state cost is independent of registry
   size.

Histograms use **fixed buckets** chosen per quantity (wall seconds,
virtual seconds, sizes) so merging is bucket-count addition — the
Prometheus model — and two registries can only disagree on buckets by
programmer error, which :meth:`Histogram.absorb` turns into a loud one.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

#: Wall-clock stage timings: microseconds up to a minute.
WALL_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
    1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Virtual (event-time) delays: sub-second up to a week.
EVENT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 5.0, 15.0, 60.0, 300.0,
    900.0, 3600.0, 4 * 3600.0, 86400.0, 7 * 86400.0,
)

#: Discrete sizes (batch sizes, queue depths): powers-of-two-ish.
SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)

LabelInput = Mapping[str, str] | None
Labels = tuple[tuple[str, str], ...]


def _labels(labels: LabelInput) -> Labels:
    """Canonical label form: a tuple of (key, value) pairs sorted by key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (or a value collected at export).

    ``inc`` is the streaming path; ``set`` is for export-time collection
    from an authoritative stats object (idempotent, so flight-recorder
    frames can re-collect as often as they like).
    """

    __slots__ = ("name", "labels", "wall", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Labels, wall: bool) -> None:
        self.name = name
        self.labels = labels
        self.wall = wall
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite with a collected value (export-time use)."""
        self.value = float(value)

    def point(self) -> "MetricPoint":
        """Snapshot this instrument."""
        return MetricPoint(
            name=self.name, labels=self.labels, kind=self.kind,
            wall=self.wall, value=self.value,
        )


class Gauge:
    """A value that can go up and down; ``agg`` picks the merge rule.

    ``agg="sum"`` (default) adds across lanes — right for live-session
    counts and backlog sizes; ``agg="max"`` keeps the peak — right for
    high-watermarks.
    """

    __slots__ = ("name", "labels", "wall", "agg", "value")
    kind = "gauge"

    def __init__(
        self, name: str, labels: Labels, wall: bool, agg: str = "sum"
    ) -> None:
        if agg not in ("sum", "max", "min"):
            raise ValueError(f"agg must be sum/max/min, got {agg!r}")
        self.name = name
        self.labels = labels
        self.wall = wall
        self.agg = agg
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the value to ``value`` if larger (watermark style)."""
        if value > self.value:
            self.value = float(value)

    def point(self) -> "MetricPoint":
        """Snapshot this instrument."""
        return MetricPoint(
            name=self.name, labels=self.labels, kind=self.kind,
            wall=self.wall, value=self.value, agg=self.agg,
        )


class Histogram:
    """Fixed-bucket distribution: cumulative-friendly counts + sum.

    ``buckets`` are upper bounds (a value lands in the first bucket
    whose bound is >= it); one implicit ``+Inf`` bucket catches the
    rest, so ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "labels", "wall", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: Labels, wall: bool,
        buckets: tuple[float, ...],
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.wall = wall
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def point(self) -> "MetricPoint":
        """Snapshot this instrument."""
        return MetricPoint(
            name=self.name, labels=self.labels, kind=self.kind,
            wall=self.wall, buckets=self.buckets,
            counts=tuple(self.counts), sum=self.sum, count=self.count,
        )


@dataclass(frozen=True)
class MetricPoint:
    """One instrument's frozen state — the unit snapshots are made of."""

    name: str
    labels: Labels
    kind: str
    wall: bool
    value: float = 0.0
    agg: str = "sum"
    buckets: tuple[float, ...] | None = None
    counts: tuple[int, ...] | None = None
    sum: float = 0.0
    count: int = 0

    @property
    def key(self) -> tuple[str, Labels]:
        """The (name, labels) identity a registry keys instruments by."""
        return (self.name, self.labels)

    def merged(self, other: "MetricPoint") -> "MetricPoint":
        """Combine two points of the same key deterministically."""
        if self.key != other.key or self.kind != other.kind:
            raise ValueError(
                f"cannot merge {self.kind} {self.key} with "
                f"{other.kind} {other.key}"
            )
        if self.kind == "histogram":
            if self.buckets != other.buckets:
                raise ValueError(
                    f"histogram {self.name}: bucket layouts differ "
                    f"({self.buckets} vs {other.buckets})"
                )
            assert self.counts is not None and other.counts is not None
            return replace(
                self,
                counts=tuple(
                    a + b for a, b in zip(self.counts, other.counts)
                ),
                sum=self.sum + other.sum,
                count=self.count + other.count,
            )
        if self.kind == "gauge":
            if self.agg == "max":
                value = max(self.value, other.value)
            elif self.agg == "min":
                value = min(self.value, other.value)
            else:
                value = self.value + other.value
            return replace(self, value=value)
        return replace(self, value=self.value + other.value)


@dataclass
class MetricsSnapshot:
    """An ordered, picklable collection of metric points.

    Points are kept sorted by ``(name, labels)``; equality (and the JSON
    byte representation) therefore depends only on metric *content*,
    never on collection order — the property the determinism matrix
    asserts.
    """

    points: list[MetricPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points = sorted(self.points, key=lambda p: p.key)

    def deterministic(self) -> "MetricsSnapshot":
        """The snapshot restricted to the deterministic domain."""
        return MetricsSnapshot(
            points=[p for p in self.points if not p.wall]
        )

    def get(
        self, name: str, labels: LabelInput = None
    ) -> MetricPoint | None:
        """Look up one point by name and exact labels."""
        key = (name, _labels(labels))
        for point in self.points:
            if point.key == key:
                return point
        return None

    def series(self, name: str) -> list[MetricPoint]:
        """All points of one metric name, across label sets."""
        return [p for p in self.points if p.name == name]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge metric's values across label sets."""
        return sum(p.value for p in self.series(name))

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine with another snapshot (order-stable reduction)."""
        combined: dict[tuple[str, Labels], MetricPoint] = {
            p.key: p for p in self.points
        }
        for point in other.points:
            existing = combined.get(point.key)
            combined[point.key] = (
                point if existing is None else existing.merged(point)
            )
        return MetricsSnapshot(points=list(combined.values()))


def merge_snapshots(
    snapshots: Iterable[MetricsSnapshot],
) -> MetricsSnapshot:
    """Reduce many snapshots (lane order in, deterministic out)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merged(snapshot)
    return merged


class _SpanTimer:
    """Context manager recording a clocked duration into a histogram.

    The clock is injectable: the default (wall ``perf_counter``) times
    real elapsed seconds, while a virtual clock — a replay engine's
    event-time reading — lets the same stage-timing surface record into
    the deterministic domain instead.
    """

    __slots__ = ("_histogram", "_counter", "_clock", "_started")

    def __init__(
        self,
        histogram: Histogram,
        counter: Counter | None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._histogram = histogram
        self._counter = counter
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(self._clock() - self._started)
        if self._counter is not None:
            self._counter.inc()


class MetricsRegistry:
    """Process-wide (or lane/shard-local) instrument registry.

    Instruments are keyed by ``(name, labels)`` and handed out
    get-or-create, so wiring code asks for what it needs and hot paths
    cache the returned object.  ``snapshot()`` freezes the current
    state; ``absorb()`` folds a snapshot from another registry (a lane
    shipped back from a child process, say) into this one.
    """

    def __init__(self) -> None:
        self._instruments: dict[
            tuple[str, Labels], Counter | Gauge | Histogram
        ] = {}
        self._listeners: list[Callable] = []

    # -- instruments --------------------------------------------------------

    def counter(
        self, name: str, labels: LabelInput = None, wall: bool = False
    ) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, _labels(labels), wall)

    def gauge(
        self,
        name: str,
        labels: LabelInput = None,
        wall: bool = False,
        agg: str = "sum",
    ) -> Gauge:
        """Get or create a gauge."""
        key = (name, _labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1], wall, agg=agg)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Gauge):
            raise TypeError(
                f"{name}{dict(key[1])} is a {instrument.kind}, not a gauge"
            )
        return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...],
        labels: LabelInput = None,
        wall: bool = False,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        key = (name, _labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, key[1], wall, buckets=buckets)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"{name}{dict(key[1])} is a {instrument.kind}, "
                "not a histogram"
            )
        elif instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name}: requested buckets differ from the "
                "registered layout"
            )
        return instrument

    def discard_series(self, name: str) -> None:
        """Drop every instrument of one metric name (re-wiring support)."""
        for key in [k for k in self._instruments if k[0] == name]:
            del self._instruments[key]

    def _get(self, cls, name: str, labels: Labels, wall: bool):
        key = (name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels, wall)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{name}{dict(labels)} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    # -- stage timing -------------------------------------------------------

    def timer(
        self,
        name: str,
        labels: LabelInput = None,
        buckets: tuple[float, ...] = WALL_SECONDS_BUCKETS,
        clock: Callable[[], float] | None = None,
    ) -> _SpanTimer:
        """A context manager timing seconds into ``name``.

        ``name`` should end in ``_seconds``.  Without a ``clock`` this
        times wall-clock seconds (wall domain).  Passing a virtual clock
        — a callable reading replay event time — records into the
        deterministic domain instead, so stage timing works in event
        time too.
        """
        if clock is None:
            return _SpanTimer(
                self.histogram(name, buckets, labels, wall=True), None
            )
        return _SpanTimer(
            self.histogram(name, buckets, labels, wall=False),
            None,
            clock=clock,
        )

    def span(
        self,
        stage: str,
        labels: LabelInput = None,
        clock: Callable[[], float] | None = None,
    ) -> _SpanTimer:
        """Time one pass through a named pipeline stage.

        Records wall seconds into ``repro_stage_seconds{stage=...}`` and
        counts entries in ``repro_stage_total{stage=...}``.  Entirely
        wall-domain by default: how often a stage runs can depend on
        executor internals (chunking, say), so the counts stay out of
        the deterministic snapshot.  With an injected virtual ``clock``
        the stage records event-time seconds into
        ``repro_stage_event_seconds`` instead — deterministic-domain,
        for stages whose entry count is a pure function of the stream.
        """
        merged = {"stage": stage, **(dict(labels) if labels else {})}
        if clock is None:
            return _SpanTimer(
                self.histogram(
                    "repro_stage_seconds", WALL_SECONDS_BUCKETS,
                    merged, wall=True,
                ),
                self.counter("repro_stage_total", merged, wall=True),
            )
        return _SpanTimer(
            self.histogram(
                "repro_stage_event_seconds", EVENT_SECONDS_BUCKETS,
                merged, wall=False,
            ),
            self.counter("repro_stage_event_total", merged, wall=False),
            clock=clock,
        )

    # -- listeners ----------------------------------------------------------

    @property
    def has_listeners(self) -> bool:
        """Whether any live observer is attached."""
        return bool(self._listeners)

    @property
    def listeners(self) -> tuple[Callable, ...]:
        """The attached observers (read-only view)."""
        return tuple(self._listeners)

    def add_listener(self, listener: Callable) -> None:
        """Observe flight-recorder frames as they are captured.

        Listeners are live callbacks and cannot cross a process
        boundary: like traffic taps, they make the ingress refuse
        process-executor lanes while attached.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable) -> None:
        """Detach a listener (no error if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- reduction ----------------------------------------------------------

    def snapshot(self, include_wall: bool = True) -> MetricsSnapshot:
        """Freeze current state (sorted, picklable)."""
        points = [
            instrument.point()
            for instrument in self._instruments.values()
            if include_wall or not instrument.wall
        ]
        return MetricsSnapshot(points=points)

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot into this registry's live instruments."""
        for point in snapshot.points:
            if point.kind == "counter":
                self.counter(
                    point.name, dict(point.labels), wall=point.wall
                ).value += point.value
            elif point.kind == "gauge":
                gauge = self.gauge(
                    point.name, dict(point.labels),
                    wall=point.wall, agg=point.agg,
                )
                gauge.value = gauge.point().merged(point).value
            else:
                assert point.buckets is not None
                histogram = self.histogram(
                    point.name, point.buckets,
                    dict(point.labels), wall=point.wall,
                )
                assert point.counts is not None
                for index, add in enumerate(point.counts):
                    histogram.counts[index] += add
                histogram.sum += point.sum
                histogram.count += point.count

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Instruments travel; live listener callbacks cannot."""
        state = self.__dict__.copy()
        state["_listeners"] = []
        return state
