"""Wall-clock instrument family for the socket front door (:mod:`repro.serve`).

Serving over real sockets adds stages the deterministic pipeline never
sees — accepting connections, parsing request bytes, writing response
bytes — so their instruments are defined here, next to the other metric
family layouts, and live strictly in the wall domain: socket timings
depend on the peer and the kernel, never on the request stream alone.

Stage histograms share :data:`~repro.obs.registry.WALL_SECONDS_BUCKETS`
with ``repro_stage_seconds`` so dashboards can overlay the socket
stages on the pipeline stages.
"""

from __future__ import annotations

from repro.obs.registry import (
    WALL_SECONDS_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)

#: The socket-side stages of one served exchange, in wire order:
#: ``accept`` spans connection arrival to the first parsed request,
#: ``parse`` covers byte framing after the request line lands,
#: ``handle`` is the pipeline's share, ``write`` the response bytes.
SERVE_STAGES = ("accept", "parse", "handle", "write")


class ServeMetrics:
    """Get-or-create bundle of the ``repro_serve_*`` instruments.

    One instance per :class:`~repro.serve.server.DetectorServer`; all
    writes happen on the event loop or under per-node serialization, so
    the plain instruments need no extra locking.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        r = self.registry
        self.connections: Counter = r.counter(
            "repro_serve_connections_total", wall=True
        )
        self.open_connections = r.gauge(
            "repro_serve_open_connections", wall=True
        )
        self.keepalive_reuses: Counter = r.counter(
            "repro_serve_keepalive_reuses_total", wall=True
        )
        self.timeouts: Counter = r.counter(
            "repro_serve_timeouts_total", wall=True
        )
        self.shed: Counter = r.counter("repro_serve_shed_total", wall=True)
        self._stages: dict[str, Histogram] = {
            stage: r.histogram(
                "repro_serve_stage_seconds",
                WALL_SECONDS_BUCKETS,
                {"stage": stage},
                wall=True,
            )
            for stage in SERVE_STAGES
        }
        self._requests: dict[str, Counter] = {}
        self._parse_errors: dict[int, Counter] = {}

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one wall-clock stage sample."""
        self._stages[stage].observe(seconds)

    def note_request(self, status: int) -> None:
        """Count one served request by response status class."""
        klass = f"{status // 100}xx"
        counter = self._requests.get(klass)
        if counter is None:
            counter = self._requests[klass] = self.registry.counter(
                "repro_serve_requests_total", {"class": klass}, wall=True
            )
        counter.inc()

    def note_parse_error(self, status: int) -> None:
        """Count one malformed request by the status it was refused with."""
        counter = self._parse_errors.get(status)
        if counter is None:
            counter = self._parse_errors[status] = self.registry.counter(
                "repro_serve_parse_errors_total",
                {"status": str(status)},
                wall=True,
            )
        counter.inc()

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current instrument state."""
        return self.registry.snapshot()
