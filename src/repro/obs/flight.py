"""Virtual-time flight recorder: periodic registry snapshots during replay.

A :class:`FlightRecorder` samples a :class:`~repro.obs.registry.MetricsRegistry`
on a fixed **event-time** interval.  Frames sit on an absolute grid
(multiples of ``interval``): the recorder is ticked with each event's
timestamp *before* the event is applied, and emits one frame per crossing,
stamped at the largest grid boundary ``<=`` that timestamp.  A frame at
boundary ``b`` therefore never includes events with ``ts >= b``.

Because the grid is absolute and per-lane event order is pinned by the
admission contract, a lane's frame sequence is identical whether the lane
ran inline (sync replay loop) or behind a queue in a thread/process
executor — which is what lets :func:`merge_flight` reconstruct a global
timeline from per-lane recordings deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.obs.registry import MetricsRegistry, MetricsSnapshot, merge_snapshots


@dataclass
class FlightFrame:
    """One sampled snapshot, stamped at a virtual-time grid boundary."""

    tick: float
    metrics: MetricsSnapshot


@dataclass
class FlightRecorder:
    """Samples a registry whenever event time crosses an interval boundary.

    ``prepare`` (optional) runs just before each sample — the hook that
    lets a node collect its authoritative stats objects into registry
    counters so frames reflect them.  ``snapshot`` (optional) replaces
    ``registry.snapshot()`` as the frame source: a node whose state is
    partitioned across several shard registries passes its merging
    ``metrics_snapshot`` here so frames cover every partition (the
    ``registry`` is still the one whose listeners fire per frame).
    """

    interval: float
    registry: MetricsRegistry
    prepare: Optional[Callable[[], None]] = None
    snapshot: Optional[Callable[[], MetricsSnapshot]] = None
    frames: list = field(default_factory=list)
    _last_tick: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("flight interval must be positive")

    def tick(self, timestamp: float) -> Optional[FlightFrame]:
        """Advance to ``timestamp``; emit a frame if a boundary was crossed.

        Call before applying the event stamped ``timestamp``.
        """
        boundary = math.floor(timestamp / self.interval) * self.interval
        if self._last_tick is not None and boundary <= self._last_tick:
            return None
        self._last_tick = boundary
        if self.prepare is not None:
            self.prepare()
        metrics = (
            self.snapshot()
            if self.snapshot is not None
            else self.registry.snapshot()
        )
        frame = FlightFrame(tick=boundary, metrics=metrics)
        self.frames.append(frame)
        for listener in self.registry.listeners:
            listener(frame)
        return frame


def _lane_state_at(
    tick: float,
    frames: Sequence[FlightFrame],
    final: MetricsSnapshot,
) -> Optional[MetricsSnapshot]:
    """The lane's snapshot as of grid boundary ``tick``.

    Latest frame with ``tick <= T``; the final snapshot once ``T`` passes
    the lane's last frame (events after the last crossed boundary only
    exist there); nothing before the lane's first frame.
    """
    if not frames or tick < frames[0].tick:
        return None
    if tick > frames[-1].tick:
        return final
    chosen = frames[0]
    for frame in frames:
        if frame.tick > tick:
            break
        chosen = frame
    return chosen.metrics


def merge_flight(
    lane_frames: Sequence[Sequence[FlightFrame]],
    lane_finals: Sequence[MetricsSnapshot],
) -> list[FlightFrame]:
    """Merge per-lane frame sequences into one global timeline.

    For every grid boundary observed by any lane, merges (in lane-index
    order) each lane's state as of that boundary.  Lane order is fixed,
    so the merged reduction is order-stable.
    """
    if len(lane_frames) != len(lane_finals):
        raise ValueError("lane_frames and lane_finals must align")
    ticks = sorted({f.tick for frames in lane_frames for f in frames})
    merged: list[FlightFrame] = []
    for tick in ticks:
        parts = [
            state
            for frames, final in zip(lane_frames, lane_finals)
            if (state := _lane_state_at(tick, frames, final)) is not None
        ]
        merged.append(FlightFrame(tick=tick, metrics=merge_snapshots(parts)))
    return merged
