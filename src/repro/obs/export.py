"""Exporters: Prometheus text format, canonical JSON, a terminal table.

The JSON form is **canonical**: points sorted by ``(name, labels)``,
object keys sorted, no whitespace, floats in Python ``repr`` form.  Two
snapshots with equal content therefore serialize to identical bytes —
which is what lets the determinism suite assert snapshot equality at
the byte level, and what makes committed metrics artifacts diffable
across PRs.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.flight import FlightFrame
from repro.obs.registry import MetricPoint, MetricsSnapshot


def _point_payload(point: MetricPoint) -> dict:
    payload: dict = {
        "name": point.name,
        "labels": dict(point.labels),
        "kind": point.kind,
        "wall": point.wall,
    }
    if point.kind == "histogram":
        payload["buckets"] = list(point.buckets or ())
        payload["counts"] = list(point.counts or ())
        payload["sum"] = point.sum
        payload["count"] = point.count
    else:
        payload["value"] = point.value
        if point.kind == "gauge":
            payload["agg"] = point.agg
    return payload


def _point_from_payload(payload: dict) -> MetricPoint:
    common = dict(
        name=payload["name"],
        labels=tuple(sorted(
            (str(k), str(v)) for k, v in payload["labels"].items()
        )),
        kind=payload["kind"],
        wall=bool(payload["wall"]),
    )
    if payload["kind"] == "histogram":
        return MetricPoint(
            **common,
            buckets=tuple(payload["buckets"]),
            counts=tuple(payload["counts"]),
            sum=payload["sum"],
            count=payload["count"],
        )
    return MetricPoint(
        **common,
        value=payload["value"],
        agg=payload.get("agg", "sum"),
    )


def to_json(
    snapshot: MetricsSnapshot,
    flight: Iterable[FlightFrame] = (),
) -> str:
    """Canonical JSON for a snapshot (plus optional flight frames)."""
    document: dict = {
        "schema": "repro.obs/v1",
        "points": [_point_payload(p) for p in snapshot.points],
    }
    frames = [
        {"tick": frame.tick,
         "points": [_point_payload(p) for p in frame.metrics.points]}
        for frame in flight
    ]
    if frames:
        document["flight"] = frames
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def snapshot_from_json(
    text: str,
) -> tuple[MetricsSnapshot, list[FlightFrame]]:
    """Parse a :func:`to_json` document back into snapshot + frames."""
    document = json.loads(text)
    if document.get("schema") != "repro.obs/v1":
        raise ValueError(
            "not a repro.obs metrics document (missing/unknown schema)"
        )
    snapshot = MetricsSnapshot(
        points=[_point_from_payload(p) for p in document["points"]]
    )
    frames = [
        FlightFrame(
            tick=frame["tick"],
            metrics=MetricsSnapshot(
                points=[_point_from_payload(p) for p in frame["points"]]
            ),
        )
        for frame in document.get("flight", ())
    ]
    return snapshot, frames


# -- Prometheus text format -------------------------------------------------


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_bound(bound: float) -> str:
    """Prometheus ``le`` values: integral bounds without a trailing .0."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for point in snapshot.points:
        if point.name not in seen_types:
            seen_types.add(point.name)
            lines.append(f"# TYPE {point.name} {point.kind}")
        if point.kind == "histogram":
            assert point.buckets is not None and point.counts is not None
            cumulative = 0
            for bound, count in zip(point.buckets, point.counts):
                cumulative += count
                lines.append(
                    f"{point.name}_bucket"
                    f"{_label_text(point.labels, (('le', _format_bound(bound)),))}"
                    f" {cumulative}"
                )
            cumulative += point.counts[-1]
            lines.append(
                f"{point.name}_bucket"
                f"{_label_text(point.labels, (('le', '+Inf'),))}"
                f" {cumulative}"
            )
            lines.append(
                f"{point.name}_sum{_label_text(point.labels)} {point.sum!r}"
            )
            lines.append(
                f"{point.name}_count{_label_text(point.labels)} "
                f"{point.count}"
            )
        else:
            value = point.value
            rendered = str(int(value)) if value == int(value) else repr(value)
            lines.append(
                f"{point.name}{_label_text(point.labels)} {rendered}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- terminal rendering -----------------------------------------------------


def _histogram_quantile(point: MetricPoint, q: float) -> float:
    """Approximate quantile from bucket counts (upper-bound estimate)."""
    assert point.buckets is not None and point.counts is not None
    if point.count == 0:
        return 0.0
    target = q * point.count
    cumulative = 0
    for bound, count in zip(point.buckets, point.counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return point.buckets[-1]


def render_table(snapshot: MetricsSnapshot) -> str:
    """A human-readable metric table for ``repro stats``.

    Metric families print in deterministic ``(name, labels)`` order —
    every label set of one family is adjacent — and histograms derive
    p50/p95/p99 upper-bound estimates from their bucket counts.
    """
    lines: list[str] = []
    for point in sorted(snapshot.points, key=lambda p: p.key):
        labels = _label_text(point.labels)
        domain = "wall" if point.wall else "det "
        if point.kind == "histogram":
            if point.count:
                mean = point.sum / point.count
                detail = (
                    f"count={point.count} mean={mean:.6g} "
                    f"p50<={_histogram_quantile(point, 0.5):.6g} "
                    f"p95<={_histogram_quantile(point, 0.95):.6g} "
                    f"p99<={_histogram_quantile(point, 0.99):.6g} "
                    f"sum={point.sum:.6g}"
                )
            else:
                detail = "count=0"
            lines.append(f"[{domain}] {point.name}{labels}  {detail}")
        else:
            value = point.value
            rendered = (
                str(int(value)) if value == int(value) else f"{value:.6g}"
            )
            lines.append(f"[{domain}] {point.name}{labels}  {rendered}")
    return "\n".join(lines)
