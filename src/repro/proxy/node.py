"""A single proxy node: forward, cache, instrument, detect, enforce.

The request path mirrors an instrumented CoDeeN node:

1. per-IP token-bucket rate limit (infrastructure protection) -> 503;
2. detection pipeline (session routing, probe matching, verdict, policy);
3. blocked robot sessions -> 403;
4. probe fetches answered locally (:func:`beacon_response`);
5. cache lookup for static objects;
6. origin forwarding; 200 HTML responses are instrumented per client and
   marked uncacheable before delivery.

Since the state-partitioning refactor the node is a *router over
shards*: every piece of per-client mutable state — the detection
shard, its probe-registry partition, the cache partition and the
rate-limit buckets — lives inside a :class:`NodeShard`, keyed by the
stable client-IP hash (:func:`repro.state.partition.partition_index`).
The full request path runs inside the owning shard, so a shard is a
self-contained lane of execution: the ingress can run one process
lane per ``(node, shard)`` instead of one per node, and the node
merely merges shard stats and metrics for its callers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

from repro.detection.service import DetectionService, RequestOutcome
from repro.detection.sharded import ShardedDetectionService, shard_service
from repro.http.content import ContentKind
from repro.http.message import Request, Response, error_response
from repro.instrument.keys import InstrumentationRegistry
from repro.instrument.rewriter import (
    InstrumentConfig,
    PageInstrumenter,
    beacon_response,
    mark_uncacheable,
)
from repro.captcha.challenge import challenge_redirect
from repro.obs.registry import WALL_SECONDS_BUCKETS, MetricsRegistry
from repro.obs.spans import NULL_SPAN, SpanTracer
from repro.overload.ladder import (
    LADDER_HEADER,
    LadderConfig,
    LadderStage,
    ResponseLadder,
)
from repro.proxy.cache import ProxyCache
from repro.proxy.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.site.origin import OriginServer
from repro.state.partition import partition_index
from repro.state.stores import PartitionedCache, PartitionedLimiter
from repro.util.rng import RngStream

__all__ = ["NodeStats", "NodeShard", "ProxyNode"]


@dataclass
class NodeStats:
    """Per-node traffic accounting (drives the §3.2 overhead numbers)."""

    requests: int = 0
    rate_limited: int = 0
    policy_blocked: int = 0
    #: Graduated response ladder enforcements (zero unless enabled):
    #: throttle refusals (503), CAPTCHA challenges served (302), and
    #: hard ladder blocks (403) — all before detection ran.
    throttled: int = 0
    challenged: int = 0
    ladder_blocked: int = 0
    beacon_requests: int = 0
    origin_requests: int = 0
    cache_hits: int = 0
    pages_instrumented: int = 0
    bytes_served: int = 0
    beacon_bytes_served: int = 0
    instrumentation_markup_bytes: int = 0
    #: Ingress admission accounting (zero outside pipelined runs):
    #: events admitted onto this node's lane queue, and events the
    #: load-shedding policy refused — kept here so Table-1-style
    #: aggregates still balance when the ingress sheds under overload.
    queued: int = 0
    shed: int = 0

    def absorb(self, other: "NodeStats") -> None:
        """Fold another stats block into this one (field-wise sums)."""
        for field_ in fields(NodeStats):
            setattr(
                self,
                field_.name,
                getattr(self, field_.name) + getattr(other, field_.name),
            )

    @property
    def beacon_bandwidth_fraction(self) -> float:
        """Fraction of served bytes that are probe objects.

        This is the paper's §3.2 quantity ("the bandwidth overhead of
        fake JavaScript and CSS files"): the beacon script, CSS, image
        and trap responses themselves.
        """
        if self.bytes_served == 0:
            return 0.0
        return self.beacon_bytes_served / self.bytes_served

    @property
    def markup_bandwidth_fraction(self) -> float:
        """Fraction of served bytes that are instrumentation markup growth."""
        if self.bytes_served == 0:
            return 0.0
        return self.instrumentation_markup_bytes / self.bytes_served


class NodeShard:
    """One IP partition of a node's state, plus the request path over it.

    Owns a detection shard, that shard's probe-registry partition, a
    cache partition and a rate-limiter partition — everything the
    requests routed here can touch, and nothing another shard's
    requests can.  Pickles cleanly, so the process executor can ship a
    shard to a child interpreter as a complete lane state.
    """

    _EXPORTED_STATS = (
        "requests",
        "rate_limited",
        "policy_blocked",
        "throttled",
        "challenged",
        "ladder_blocked",
        "beacon_requests",
        "origin_requests",
        "cache_hits",
        "pages_instrumented",
        "bytes_served",
        "beacon_bytes_served",
        "instrumentation_markup_bytes",
    )

    def __init__(
        self,
        node_id: str,
        shard_id: int,
        origins: dict[str, OriginServer],
        detection: DetectionService,
        cache: ProxyCache,
        limiter: TokenBucketLimiter | None,
        instrumenter: PageInstrumenter,
        instrument_enabled: bool = True,
    ) -> None:
        self.node_id = node_id
        self.shard_id = shard_id
        self.shard_label = f"{shard_id:02d}"
        self._origins = origins
        self.detection = detection
        self.cache = cache
        self.limiter = limiter
        self.instrumenter = instrumenter
        self.instrument_enabled = instrument_enabled
        self.stats = NodeStats()
        self.metrics = MetricsRegistry()
        labels = {"node": node_id, "shard": self.shard_label}
        self._handle_seconds = self.metrics.histogram(
            "repro_proxy_handle_seconds",
            WALL_SECONDS_BUCKETS,
            labels,
            wall=True,
        )
        self._detection_seconds = self.metrics.histogram(
            "repro_detection_seconds",
            WALL_SECONDS_BUCKETS,
            labels,
            wall=True,
        )
        self._detection_requests = self.metrics.counter(
            "repro_detection_requests_total", labels
        )
        self._tracer: SpanTracer | None = None
        #: Graduated response ladder for this shard's IPs; None = off.
        self.ladder: ResponseLadder | None = None

    def enable_ladder(self, config: LadderConfig | None = None):
        """Gate this shard's requests through a response ladder.

        The ladder records into the shard's (deterministic-domain)
        metrics registry and travels with the shard when the process
        executor ships it to a child interpreter.
        """
        self.ladder = ResponseLadder(config)
        self.ladder.attach_metrics(
            self.metrics,
            {"node": self.node_id, "shard": self.shard_label},
        )
        return self.ladder

    def ladder_for(self, client_ip: str) -> ResponseLadder | None:
        """The ladder owning ``client_ip`` (shards own all their IPs)."""
        del client_ip
        return self.ladder

    # -- tracing ------------------------------------------------------------

    def attach_tracer(self, tracer: SpanTracer | None) -> None:
        """Emit per-stage spans into ``tracer`` while handling requests.

        The tracer is lane-owned; the shard only nests stage spans
        under whatever trace its caller has open.  ``None`` detaches.
        """
        self._tracer = tracer

    def _span(self, name: str, now: float):
        if self._tracer is None:
            return NULL_SPAN
        return self._tracer.span(name, now)

    # -- request path -------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Process one client request end to end."""
        return self.handle_traced(request)[0]

    def handle_traced(
        self, request: Request
    ) -> tuple[Response, RequestOutcome | None]:
        """Process one request, also exposing the detection outcome.

        The outcome is what ingress-side consumers (the micro-batched
        session scorer) key their per-session state on; it is ``None``
        when the request never reached the detection pipeline (rate
        limited at the front door).
        """
        started = time.perf_counter()
        try:
            return self._handle_traced(request)
        finally:
            self._handle_seconds.observe(time.perf_counter() - started)

    def _handle_traced(
        self, request: Request
    ) -> tuple[Response, RequestOutcome | None]:
        self.stats.requests += 1
        now = request.timestamp

        if self.limiter is not None:
            with self._span("ratelimit", now):
                allowed = self.limiter.allow(request.client_ip, now)
            if not allowed:
                self.stats.rate_limited += 1
                return error_response(503, "rate limited"), None

        if self.ladder is not None:
            with self._span("ladder", now):
                stage = self.ladder.gate(request.client_ip, now)
            if stage is not LadderStage.ALLOW:
                return self._ladder_response(stage), None

        outcome = self._run_detection(request)

        if outcome.blocked:
            self.stats.policy_blocked += 1
            response = error_response(403, "blocked by robot policy")
            self._account(outcome, response, beacon=False, now=now)
            return response, outcome

        if outcome.hit is not None:
            with self._span("beacon", now):
                response = beacon_response(outcome.hit)
            self.stats.beacon_requests += 1
            self._account(outcome, response, beacon=True, now=now)
            return response, outcome

        with self._span("cache", now):
            cached = self.cache.lookup(request, now)
        if cached is not None:
            self.stats.cache_hits += 1
            self._account(outcome, cached, beacon=False, now=now)
            return cached, outcome

        with self._span("forward", now):
            response = self._forward(request)
            self.cache.store(request, response, now)

        if (
            self.instrument_enabled
            and response.status == 200
            and response.content_kind is ContentKind.HTML
            and response.body
        ):
            with self._span("instrument", now):
                response = self._instrument(request, response)

        self._account(outcome, response, beacon=False, now=now)
        return response, outcome

    # -- internals ----------------------------------------------------------

    def _ladder_response(self, stage: LadderStage) -> Response:
        """Refusal/challenge for a ladder-gated request.

        Mirrors the rate-limit front door: no byte accounting and no
        detection involvement — the request never entered the pipeline.
        The ``x-robot-ladder`` header names the stage so span flagging
        and trace tooling can attribute the response.
        """
        if stage is LadderStage.BLOCK:
            self.stats.ladder_blocked += 1
            response = error_response(
                403, "blocked by graduated response ladder"
            )
        elif stage is LadderStage.CAPTCHA:
            self.stats.challenged += 1
            response = challenge_redirect()
        else:
            self.stats.throttled += 1
            response = error_response(
                503, "throttled by graduated response ladder"
            )
        response.headers.set(LADDER_HEADER, stage.value)
        return response

    def _run_detection(self, request: Request) -> RequestOutcome:
        started = time.perf_counter()
        with self._span("detection", request.timestamp):
            outcome = self.detection.handle_request(request)
        self._detection_seconds.observe(time.perf_counter() - started)
        self._detection_requests.inc()
        return outcome

    def _forward(self, request: Request) -> Response:
        origin = self._origins.get(request.url.host)
        self.stats.origin_requests += 1
        if origin is None:
            return error_response(502, f"no route to {request.url.host}")
        return origin.handle(request)

    def _instrument(self, request: Request, response: Response) -> Response:
        result = self.instrumenter.instrument(
            response.text, request.url, request.client_ip, request.timestamp
        )
        self.stats.pages_instrumented += 1
        self.stats.instrumentation_markup_bytes += max(0, result.added_bytes)
        headers = response.headers.copy()
        mark_uncacheable(headers)
        return Response(
            status=response.status,
            headers=headers,
            body=result.html.encode("utf-8"),
        )

    def _account(
        self,
        outcome: RequestOutcome,
        response: Response,
        beacon: bool,
        now: float = 0.0,
    ) -> None:
        with self._span("account", now):
            self.detection.note_response(outcome, response)
        self.stats.bytes_served += response.size
        if beacon:
            self.stats.beacon_bytes_served += response.size

    # -- maintenance --------------------------------------------------------

    def housekeeping(self, now: float) -> None:
        """Sweep this shard's partitions: idle sessions, stale probes,
        expired cache entries, replenished rate-limit buckets."""
        self.detection.tracker.expire_idle(now)
        self.detection.registry.expire_before(now)
        self.cache.sweep(now)
        if self.limiter is not None:
            self.limiter.evict_replenished(now)

    # -- metrics ------------------------------------------------------------

    def export_metrics(self) -> None:
        """Collect authoritative stats objects into registry counters.

        Idempotent (``Counter.set``), so snapshots and flight-recorder
        frames can re-collect at will.  Every family carries
        ``{node, shard}`` labels: the shard is the unit of state, the
        node a grouping of shards.  ``NodeStats.queued``/``shed`` are
        deliberately absent: the ingress accounts admission on the
        parent side, and lane merges fold them into ``NodeStats`` after
        the fact — exporting them here would double-count.
        """
        labels = {"node": self.node_id, "shard": self.shard_label}
        metrics = self.metrics
        for name in self._EXPORTED_STATS:
            metrics.counter(f"repro_proxy_{name}_total", labels).set(
                getattr(self.stats, name)
            )
        cache = self.cache.stats
        for name in ("hits", "misses", "insertions", "evictions", "expired"):
            metrics.counter(f"repro_cache_{name}_total", labels).set(
                getattr(cache, name)
            )
        if self.limiter is not None:
            for name in ("allowed", "denied", "evicted"):
                metrics.counter(f"repro_ratelimit_{name}_total", labels).set(
                    getattr(self.limiter, name)
                )
            metrics.gauge("repro_ratelimit_buckets", labels).set(
                len(self.limiter)
            )
        metrics.gauge("repro_detection_sessions_live", labels).set(
            self.detection.tracker.live_count
        )
        metrics.counter(
            "repro_detection_sessions_started_total", labels
        ).set(self.detection.tracker.total_started)

    def metrics_snapshot(self, include_wall: bool = True):
        """Export-then-snapshot convenience."""
        self.export_metrics()
        return self.metrics.snapshot(include_wall=include_wall)


class ProxyNode:
    """One proxy node: a router over its IP-partitioned state shards."""

    def __init__(
        self,
        node_id: str,
        origins: dict[str, OriginServer],
        rng: RngStream,
        instrument_config: InstrumentConfig | None = None,
        rate_limit: RateLimitConfig | None = None,
        detection: DetectionService | ShardedDetectionService | None = None,
        instrument_enabled: bool = True,
        detection_shards: int = 0,
    ) -> None:
        if detection is not None and detection_shards:
            raise ValueError(
                "pass either a detection service or detection_shards, "
                "not both"
            )
        self.node_id = node_id
        self._origins = origins
        self._instrument_config = instrument_config
        self._rate_limit = rate_limit
        self._instrument_enabled = instrument_enabled
        # The parent stream is never drawn from directly: the rewriter
        # derives a child stream per instrumented request, so shard
        # instrumenters sharing this parent stay deterministic under
        # any partitioning of the request stream.
        self._instrument_rng = rng.split(f"instrumenter-{node_id}")
        if detection is not None:
            self.detection = detection
        elif detection_shards:
            self.detection = ShardedDetectionService(
                InstrumentationRegistry(), n_shards=detection_shards
            )
        else:
            self.detection = DetectionService(InstrumentationRegistry())
        self.metrics = MetricsRegistry()
        #: PartitionedLadder facade once :meth:`enable_ladder` ran.
        self.ladder = None
        self._build_shards()

    def enable_ladder(self, config: LadderConfig | None = None):
        """Enable the graduated response ladder on every state shard.

        Returns a :class:`~repro.state.stores.PartitionedLadder` facade
        routing by client IP; the per-shard ladders live inside their
        shards, so lane executors carry them without extra plumbing.
        Call after any :meth:`shard_detection` re-partitioning — the
        rebuild discards shard-local state, ladders included.
        """
        from repro.state.stores import PartitionedLadder

        self.ladder = PartitionedLadder(
            [shard.enable_ladder(config) for shard in self._shards]
        )
        return self.ladder

    def ladder_for(self, client_ip: str):
        """The shard-local ladder owning ``client_ip`` (None = off)."""
        if self.ladder is None:
            return None
        return self.shard_for(client_ip).ladder

    def _build_shards(self) -> None:
        """(Re)derive per-shard state from the current detection layout."""
        if isinstance(self.detection, ShardedDetectionService):
            services = self.detection.shards
            registry_partitions = self.detection.registry.partitions
        else:
            services = [self.detection]
            registry_partitions = [self.detection.registry]
        n = len(services)
        self.cache = PartitionedCache(n)
        self.limiter = (
            PartitionedLimiter(self._rate_limit, n)
            if self._rate_limit is not None
            else None
        )
        # Kept for callers that instrument pages directly against the
        # node; the request path uses the per-shard instrumenters.
        self.instrumenter = PageInstrumenter(
            self.detection.registry,
            self._instrument_rng,
            self._instrument_config,
        )
        self._shards = [
            NodeShard(
                self.node_id,
                index,
                self._origins,
                services[index],
                self.cache.partition(index),
                # `is not None`: the facades define __len__, so an empty
                # limiter is falsy and plain truthiness would drop it.
                (
                    self.limiter.partition(index)
                    if self.limiter is not None
                    else None
                ),
                PageInstrumenter(
                    registry_partitions[index],
                    self._instrument_rng,
                    self._instrument_config,
                ),
                instrument_enabled=self._instrument_enabled,
            )
            for index in range(n)
        ]

    # -- shard topology -----------------------------------------------------

    @property
    def state_shards(self) -> list[NodeShard]:
        """The node's self-contained state shards, in shard order."""
        return self._shards

    @property
    def n_state_shards(self) -> int:
        return len(self._shards)

    def shard_index_for(self, client_ip: str) -> int:
        """Which state shard owns a client IP."""
        return partition_index(client_ip, len(self._shards))

    def shard_for(self, client_ip: str) -> NodeShard:
        return self._shards[self.shard_index_for(client_ip)]

    def lane_states(self, lanes_per_node: int) -> list:
        """The lane-sized state units for a given lane granularity.

        ``1`` keeps today's one-lane-per-node layout (the node itself
        is the lane state); a value equal to the detection shard count
        hands each shard out as its own lane.  Anything else cannot be
        a total partition of the node's state, so it is refused.
        """
        if lanes_per_node <= 1:
            return [self]
        if lanes_per_node != len(self._shards):
            raise ValueError(
                f"{self.node_id}: lanes_per_node={lanes_per_node} must be "
                f"1 or match the node's {len(self._shards)} detection "
                "shard(s) — shards are the only self-contained state "
                "units lanes can carry"
            )
        return list(self._shards)

    @property
    def instrument_enabled(self) -> bool:
        """Whether 200-HTML responses get instrumented before delivery."""
        return self._instrument_enabled

    @instrument_enabled.setter
    def instrument_enabled(self, value: bool) -> None:
        self._instrument_enabled = value
        for shard in self._shards:
            shard.instrument_enabled = value

    @property
    def stats(self) -> NodeStats:
        """Merged traffic accounting across every state shard."""
        merged = NodeStats()
        for shard in self._shards:
            merged.absorb(shard.stats)
        return merged

    # -- request path -------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Process one client request end to end."""
        return self.handle_traced(request)[0]

    def handle_traced(
        self, request: Request
    ) -> tuple[Response, RequestOutcome | None]:
        """Route the request to its owning state shard and process it."""
        return self.shard_for(request.client_ip).handle_traced(request)

    # -- tracing ------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach one span tracer to every state shard (``None`` detaches).

        Node-as-lane layouts (the sync replay loop, ``lanes_per_node=1``)
        share a single tracer across the node's shards: requests are
        handled one at a time, so stage spans still nest correctly under
        the caller's open trace.
        """
        for shard in self._shards:
            shard.attach_tracer(tracer)

    # -- metrics ------------------------------------------------------------

    @property
    def has_metric_listeners(self) -> bool:
        """Whether any registry (node- or shard-level) has listeners."""
        return self.metrics.has_listeners or any(
            shard.metrics.has_listeners for shard in self._shards
        )

    def export_metrics(self) -> None:
        """Collect every shard's authoritative stats into its registry."""
        for shard in self._shards:
            shard.export_metrics()

    def metrics_snapshot(self, include_wall: bool = True):
        """Node-wide snapshot: node registry plus shards, in shard order."""
        from repro.obs.registry import merge_snapshots

        self.export_metrics()
        return merge_snapshots(
            [
                self.metrics.snapshot(include_wall=include_wall),
                *(
                    shard.metrics.snapshot(include_wall=include_wall)
                    for shard in self._shards
                ),
            ]
        )

    # -- reconfiguration ----------------------------------------------------

    def shard_detection(
        self, n_shards: int, max_workers: int | None = None
    ) -> None:
        """Re-partition detection state into ``n_shards`` shards.

        Must run before any traffic: session state cannot be re-hashed
        between shard layouts.  The probe registry (and with it any
        registrations a replay journal already loaded) migrates into
        the new partition layout; caches and rate buckets are empty
        pre-traffic, so they are simply rebuilt with the new partition
        count.  No-op when the node is already sharded to the requested
        count.
        """
        if (
            isinstance(self.detection, ShardedDetectionService)
            and self.detection.n_shards == n_shards
            and (
                max_workers is None
                or self.detection.max_workers == max_workers
            )
        ):
            return
        if self.stats.requests or self.detection.tracker.total_started:
            raise RuntimeError(
                f"{self.node_id}: cannot re-shard detection after traffic"
            )
        previous = self.detection
        self.detection = shard_service(
            previous, n_shards, max_workers=max_workers
        )
        if isinstance(previous, ShardedDetectionService):
            previous.close()
        self._build_shards()

    def close_detection(self) -> None:
        """Release detection-side resources (shard executor threads).

        Safe to call at any time: a later shard-parallel operation
        lazily recreates the executor it needs.
        """
        if isinstance(self.detection, ShardedDetectionService):
            self.detection.close()

    def housekeeping(self, now: float) -> None:
        """Periodic maintenance, swept per state shard: idle sessions,
        stale probes, expired cache entries, replenished rate buckets."""
        for shard in self._shards:
            shard.housekeeping(now)
