"""A single proxy node: forward, cache, instrument, detect, enforce.

The request path mirrors an instrumented CoDeeN node:

1. per-IP token-bucket rate limit (infrastructure protection) -> 503;
2. detection pipeline (session routing, probe matching, verdict, policy);
3. blocked robot sessions -> 403;
4. probe fetches answered locally (:func:`beacon_response`);
5. cache lookup for static objects;
6. origin forwarding; 200 HTML responses are instrumented per client and
   marked uncacheable before delivery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.detection.service import DetectionService, RequestOutcome
from repro.detection.sharded import ShardedDetectionService, shard_service
from repro.http.content import ContentKind
from repro.http.headers import Headers
from repro.http.message import Request, Response, error_response
from repro.instrument.keys import InstrumentationRegistry
from repro.instrument.rewriter import (
    InstrumentConfig,
    PageInstrumenter,
    beacon_response,
    mark_uncacheable,
)
from repro.obs.registry import WALL_SECONDS_BUCKETS, MetricsRegistry
from repro.proxy.cache import ProxyCache
from repro.proxy.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.site.origin import OriginServer
from repro.util.rng import RngStream


@dataclass
class NodeStats:
    """Per-node traffic accounting (drives the §3.2 overhead numbers)."""

    requests: int = 0
    rate_limited: int = 0
    policy_blocked: int = 0
    beacon_requests: int = 0
    origin_requests: int = 0
    cache_hits: int = 0
    pages_instrumented: int = 0
    bytes_served: int = 0
    beacon_bytes_served: int = 0
    instrumentation_markup_bytes: int = 0
    #: Ingress admission accounting (zero outside pipelined runs):
    #: events admitted onto this node's lane queue, and events the
    #: load-shedding policy refused — kept here so Table-1-style
    #: aggregates still balance when the ingress sheds under overload.
    queued: int = 0
    shed: int = 0

    @property
    def beacon_bandwidth_fraction(self) -> float:
        """Fraction of served bytes that are probe objects.

        This is the paper's §3.2 quantity ("the bandwidth overhead of
        fake JavaScript and CSS files"): the beacon script, CSS, image
        and trap responses themselves.
        """
        if self.bytes_served == 0:
            return 0.0
        return self.beacon_bytes_served / self.bytes_served

    @property
    def markup_bandwidth_fraction(self) -> float:
        """Fraction of served bytes that are instrumentation markup growth."""
        if self.bytes_served == 0:
            return 0.0
        return self.instrumentation_markup_bytes / self.bytes_served


class ProxyNode:
    """One proxy node with its own registry, detector, cache and limiter."""

    def __init__(
        self,
        node_id: str,
        origins: dict[str, OriginServer],
        rng: RngStream,
        instrument_config: InstrumentConfig | None = None,
        rate_limit: RateLimitConfig | None = None,
        detection: DetectionService | ShardedDetectionService | None = None,
        instrument_enabled: bool = True,
        detection_shards: int = 0,
    ) -> None:
        if detection is not None and detection_shards:
            raise ValueError(
                "pass either a detection service or detection_shards, "
                "not both"
            )
        self.node_id = node_id
        self._origins = origins
        if detection is not None:
            self.detection = detection
        elif detection_shards:
            self.detection = ShardedDetectionService(
                InstrumentationRegistry(), n_shards=detection_shards
            )
        else:
            self.detection = DetectionService(InstrumentationRegistry())
        self.instrumenter = PageInstrumenter(
            self.detection.registry,
            rng.split(f"instrumenter-{node_id}"),
            instrument_config,
        )
        self.cache = ProxyCache()
        self.limiter = TokenBucketLimiter(rate_limit) if rate_limit else None
        self.instrument_enabled = instrument_enabled
        self.stats = NodeStats()
        self.metrics = MetricsRegistry()
        self._handle_seconds = self.metrics.histogram(
            "repro_proxy_handle_seconds",
            WALL_SECONDS_BUCKETS,
            {"node": node_id},
            wall=True,
        )
        self._attach_detection_metrics()

    def handle(self, request: Request) -> Response:
        """Process one client request end to end."""
        return self.handle_traced(request)[0]

    def handle_traced(
        self, request: Request
    ) -> tuple[Response, RequestOutcome | None]:
        """Process one request, also exposing the detection outcome.

        The outcome is what ingress-side consumers (the micro-batched
        session scorer) key their per-session state on; it is ``None``
        when the request never reached the detection pipeline (rate
        limited at the front door).
        """
        started = time.perf_counter()
        try:
            return self._handle_traced(request)
        finally:
            self._handle_seconds.observe(time.perf_counter() - started)

    def _handle_traced(
        self, request: Request
    ) -> tuple[Response, RequestOutcome | None]:
        self.stats.requests += 1
        now = request.timestamp

        if self.limiter is not None and not self.limiter.allow(
            request.client_ip, now
        ):
            self.stats.rate_limited += 1
            return error_response(503, "rate limited"), None

        outcome = self._run_detection(request)

        if outcome.blocked:
            self.stats.policy_blocked += 1
            response = error_response(403, "blocked by robot policy")
            self._account(outcome, response, beacon=False)
            return response, outcome

        if outcome.hit is not None:
            response = beacon_response(outcome.hit)
            self.stats.beacon_requests += 1
            self._account(outcome, response, beacon=True)
            return response, outcome

        cached = self.cache.lookup(request, now)
        if cached is not None:
            self.stats.cache_hits += 1
            self._account(outcome, cached, beacon=False)
            return cached, outcome

        response = self._forward(request)
        self.cache.store(request, response, now)

        if (
            self.instrument_enabled
            and response.status == 200
            and response.content_kind is ContentKind.HTML
            and response.body
        ):
            response = self._instrument(request, response)

        self._account(outcome, response, beacon=False)
        return response, outcome

    # -- internals ----------------------------------------------------------

    def _forward(self, request: Request) -> Response:
        origin = self._origins.get(request.url.host)
        self.stats.origin_requests += 1
        if origin is None:
            return error_response(502, f"no route to {request.url.host}")
        return origin.handle(request)

    def _instrument(self, request: Request, response: Response) -> Response:
        result = self.instrumenter.instrument(
            response.text, request.url, request.client_ip, request.timestamp
        )
        self.stats.pages_instrumented += 1
        self.stats.instrumentation_markup_bytes += max(0, result.added_bytes)
        headers = response.headers.copy()
        mark_uncacheable(headers)
        return Response(
            status=response.status,
            headers=headers,
            body=result.html.encode("utf-8"),
        )

    def _account(
        self, outcome: RequestOutcome, response: Response, beacon: bool
    ) -> None:
        self.detection.note_response(outcome, response)
        self.stats.bytes_served += response.size
        if beacon:
            self.stats.beacon_bytes_served += response.size

    # -- metrics ------------------------------------------------------------

    def _attach_detection_metrics(self) -> None:
        """Per-shard detection timing; single-service nodes are shard 00."""
        if isinstance(self.detection, ShardedDetectionService):
            self.detection.attach_metrics(self.metrics, self.node_id)
            self._detection_seconds = None
            self._detection_requests = None
        else:
            labels = {"node": self.node_id, "shard": "00"}
            self._detection_seconds = self.metrics.histogram(
                "repro_detection_seconds",
                WALL_SECONDS_BUCKETS,
                labels,
                wall=True,
            )
            self._detection_requests = self.metrics.counter(
                "repro_detection_requests_total", labels
            )

    def _run_detection(self, request: Request) -> RequestOutcome:
        if self._detection_seconds is None:
            # Sharded: the service times per shard via attach_metrics.
            return self.detection.handle_request(request)
        started = time.perf_counter()
        outcome = self.detection.handle_request(request)
        self._detection_seconds.observe(time.perf_counter() - started)
        self._detection_requests.inc()
        return outcome

    _EXPORTED_STATS = (
        "requests",
        "rate_limited",
        "policy_blocked",
        "beacon_requests",
        "origin_requests",
        "cache_hits",
        "pages_instrumented",
        "bytes_served",
        "beacon_bytes_served",
        "instrumentation_markup_bytes",
    )

    def export_metrics(self) -> None:
        """Collect authoritative stats objects into registry counters.

        Idempotent (``Counter.set``), so snapshots and flight-recorder
        frames can re-collect at will.  ``NodeStats.queued``/``shed``
        are deliberately absent: the ingress accounts admission on the
        parent side, and lane merges fold them into ``NodeStats`` after
        the fact — exporting them here would double-count.
        """
        labels = {"node": self.node_id}
        metrics = self.metrics
        for name in self._EXPORTED_STATS:
            metrics.counter(f"repro_proxy_{name}_total", labels).set(
                getattr(self.stats, name)
            )
        cache = self.cache.stats
        for name in ("hits", "misses", "insertions", "evictions", "expired"):
            metrics.counter(f"repro_cache_{name}_total", labels).set(
                getattr(cache, name)
            )
        if self.limiter is not None:
            for name in ("allowed", "denied", "evicted"):
                metrics.counter(f"repro_ratelimit_{name}_total", labels).set(
                    getattr(self.limiter, name)
                )
            metrics.gauge("repro_ratelimit_buckets", labels).set(
                len(self.limiter)
            )
        shards = (
            self.detection.shards
            if isinstance(self.detection, ShardedDetectionService)
            else [self.detection]
        )
        for index, shard in enumerate(shards):
            shard_labels = {"node": self.node_id, "shard": f"{index:02d}"}
            metrics.gauge(
                "repro_detection_sessions_live", shard_labels
            ).set(shard.tracker.live_count)
            metrics.counter(
                "repro_detection_sessions_started_total", shard_labels
            ).set(shard.tracker.total_started)

    def metrics_snapshot(self, include_wall: bool = True):
        """Export-then-snapshot convenience."""
        self.export_metrics()
        return self.metrics.snapshot(include_wall=include_wall)

    def shard_detection(
        self, n_shards: int, max_workers: int | None = None
    ) -> None:
        """Re-partition detection state into ``n_shards`` shards.

        Must run before any traffic: session state cannot be re-hashed
        between shard layouts.  The probe registry (and with it any
        registrations a replay journal already loaded) is preserved.
        No-op when the node is already sharded to the requested count.
        """
        if (
            isinstance(self.detection, ShardedDetectionService)
            and self.detection.n_shards == n_shards
            and (
                max_workers is None
                or self.detection.max_workers == max_workers
            )
        ):
            return
        if self.stats.requests or self.detection.tracker.total_started:
            raise RuntimeError(
                f"{self.node_id}: cannot re-shard detection after traffic"
            )
        previous = self.detection
        self.detection = shard_service(
            previous, n_shards, max_workers=max_workers
        )
        if isinstance(previous, ShardedDetectionService):
            previous.close()
        # Re-sharding happens pre-traffic, so the old layout's (all-zero)
        # detection instruments can simply be replaced.
        for name in (
            "repro_detection_seconds",
            "repro_detection_requests_total",
        ):
            self.metrics.discard_series(name)
        self._attach_detection_metrics()

    def close_detection(self) -> None:
        """Release detection-side resources (shard executor threads).

        Safe to call at any time: a later shard-parallel operation
        lazily recreates the executor it needs.
        """
        if isinstance(self.detection, ShardedDetectionService):
            self.detection.close()

    def housekeeping(self, now: float) -> None:
        """Periodic maintenance: expire idle sessions, stale probes,
        expired cache entries and fully replenished rate-limit buckets."""
        self.detection.tracker.expire_idle(now)
        self.detection.registry.expire_before(now)
        self.cache.sweep(now)
        if self.limiter is not None:
            self.limiter.evict_replenished(now)
