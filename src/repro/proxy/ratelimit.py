"""Per-client token-bucket rate limiting.

CoDeeN applied rate limiting and privilege separation before this paper's
techniques existed (Wang et al. 2004); the paper then "enforced aggressive
rate limiting on the robot traffic" once sessions were classified.  The
token bucket here is the generic substrate; the classification-driven
thresholds live in :mod:`repro.detection.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RateLimitConfig:
    """Bucket parameters: sustained rate and burst capacity."""

    requests_per_second: float = 10.0
    burst: float = 40.0

    def __post_init__(self) -> None:
        if self.requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TokenBucket:
    """A single token bucket."""

    __slots__ = ("_capacity", "_rate", "_tokens", "_updated_at")

    def __init__(self, config: RateLimitConfig, now: float = 0.0) -> None:
        self._rate = config.requests_per_second
        self._capacity = config.burst
        self._tokens = config.burst
        self._updated_at = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (as of the last update)."""
        return self._tokens

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; refills lazily.

        Out-of-order timestamps (merged multi-node logs deliver them)
        never rewind the refill clock: a stale ``now`` earns no refill
        and leaves ``_updated_at`` where it was, so the next in-order
        request cannot re-credit a window that was already credited.
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        elapsed = max(0.0, now - self._updated_at)
        self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        self._updated_at = max(self._updated_at, now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def refresh(self, now: float) -> None:
        """Apply the lazy refill eagerly (no tokens taken)."""
        elapsed = max(0.0, now - self._updated_at)
        self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        self._updated_at = max(self._updated_at, now)

    def replenished(self, now: float) -> bool:
        """True when the bucket would be full again at ``now``.

        A full bucket is indistinguishable from a fresh one, so it can
        be dropped and lazily recreated without changing any decision.
        """
        deficit = self._capacity - self._tokens
        return max(0.0, now - self._updated_at) * self._rate >= deficit


class TokenBucketLimiter:
    """One bucket per client IP, evictable once idle.

    Buckets are created lazily, and :meth:`evict_replenished` (run from
    proxy housekeeping) drops every bucket that has idled long enough to
    refill completely — otherwise a week-long replay over millions of
    client IPs grows the table without bound for clients that sent one
    request and left.

    Eviction is decision-neutral even under out-of-order timestamps: a
    sweep eagerly refreshes the buckets it keeps and new buckets are
    created at the limiter's high-water timestamp, so a bucket that was
    evicted-then-recreated and one that merely survived the sweep are in
    the identical state — a stale arrival cannot observe whether its
    bucket was dropped.
    """

    def __init__(self, config: RateLimitConfig | None = None) -> None:
        self._config = config or RateLimitConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self._watermark = 0.0
        self.denied = 0
        self.allowed = 0
        self.evicted = 0

    @property
    def config(self) -> RateLimitConfig:
        """The bucket parameters."""
        return self._config

    def __len__(self) -> int:
        return len(self._buckets)

    def allow(self, client_ip: str, now: float) -> bool:
        """True when the client may proceed with one more request."""
        self._watermark = max(self._watermark, now)
        bucket = self._buckets.get(client_ip)
        if bucket is None:
            bucket = TokenBucket(self._config, self._watermark)
            self._buckets[client_ip] = bucket
        if bucket.try_acquire(now):
            self.allowed += 1
            return True
        self.denied += 1
        return False

    def evict_replenished(self, now: float) -> int:
        """Drop buckets that refilled to capacity; returns how many."""
        self._watermark = max(self._watermark, now)
        stale = []
        for client_ip, bucket in self._buckets.items():
            if bucket.replenished(now):
                stale.append(client_ip)
            else:
                bucket.refresh(now)
        for client_ip in stale:
            del self._buckets[client_ip]
        self.evicted += len(stale)
        return len(stale)
