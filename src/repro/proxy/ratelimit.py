"""Per-client token-bucket rate limiting.

CoDeeN applied rate limiting and privilege separation before this paper's
techniques existed (Wang et al. 2004); the paper then "enforced aggressive
rate limiting on the robot traffic" once sessions were classified.  The
token bucket here is the generic substrate; the classification-driven
thresholds live in :mod:`repro.detection.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RateLimitConfig:
    """Bucket parameters: sustained rate and burst capacity."""

    requests_per_second: float = 10.0
    burst: float = 40.0

    def __post_init__(self) -> None:
        if self.requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TokenBucket:
    """A single token bucket."""

    __slots__ = ("_capacity", "_rate", "_tokens", "_updated_at")

    def __init__(self, config: RateLimitConfig, now: float = 0.0) -> None:
        self._rate = config.requests_per_second
        self._capacity = config.burst
        self._tokens = config.burst
        self._updated_at = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (as of the last update)."""
        return self._tokens

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; refills lazily."""
        if cost <= 0:
            raise ValueError("cost must be positive")
        elapsed = max(0.0, now - self._updated_at)
        self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        self._updated_at = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


class TokenBucketLimiter:
    """One bucket per client IP."""

    def __init__(self, config: RateLimitConfig | None = None) -> None:
        self._config = config or RateLimitConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self.denied = 0
        self.allowed = 0

    @property
    def config(self) -> RateLimitConfig:
        """The bucket parameters."""
        return self._config

    def allow(self, client_ip: str, now: float) -> bool:
        """True when the client may proceed with one more request."""
        bucket = self._buckets.get(client_ip)
        if bucket is None:
            bucket = TokenBucket(self._config, now)
            self._buckets[client_ip] = bucket
        if bucket.try_acquire(now):
            self.allowed += 1
            return True
        self.denied += 1
        return False
