"""A CoDeeN-like open-proxy content distribution substrate.

The paper's techniques were deployed on CoDeeN, a network of 400+ proxy
nodes.  :class:`~repro.proxy.node.ProxyNode` reproduces the relevant node
behaviour: forward requests to origins, cache static objects, instrument
every served HTML page, answer probe fetches locally, feed the detection
pipeline, and enforce the robot policy.
:class:`~repro.proxy.network.ProxyNetwork` assembles many nodes with
sticky client-to-node assignment and aggregates their statistics.
"""

from repro.proxy.cache import CacheStats, ProxyCache
from repro.proxy.network import NetworkStats, ProxyNetwork
from repro.proxy.node import NodeStats, ProxyNode
from repro.proxy.ratelimit import RateLimitConfig, TokenBucket, TokenBucketLimiter

__all__ = [
    "CacheStats",
    "NetworkStats",
    "NodeStats",
    "ProxyCache",
    "ProxyNetwork",
    "ProxyNode",
    "RateLimitConfig",
    "TokenBucket",
    "TokenBucketLimiter",
]
