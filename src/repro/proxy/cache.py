"""Proxy object cache.

Only static, non-HTML 200 responses are cached: HTML is rewritten
per-client by the instrumenter (and marked no-store), so caching it would
leak one client's beacons to another — the exact reason the paper marks
instrumented objects uncacheable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.http.content import ContentKind
from repro.http.message import Method, Request, Response


@dataclass
class CacheStats:
    """Hit/miss counters.

    ``evictions`` counts capacity-driven LRU drops; ``expired`` counts
    TTL-driven removals (lazy, on lookup, or swept by housekeeping) —
    kept separate so a mis-sized cache and a mis-set TTL are
    distinguishable in reports.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expired: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    response: Response
    stored_at: float


class ProxyCache:
    """LRU cache keyed by (host, path, query) with a TTL."""

    def __init__(self, capacity: int = 4096, ttl: float = 3600.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self._capacity = capacity
        self._ttl = ttl
        self._entries: OrderedDict[tuple[str, str, str], _Entry] = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def _key(request: Request) -> tuple[str, str, str]:
        return (request.url.host, request.url.path, request.url.query)

    def lookup(self, request: Request, now: float) -> Response | None:
        """Return a cached response for the request, if fresh.

        Every lookup that is not served from cache counts as a miss —
        including non-GET requests, which can never be cached but are
        still lookups; skipping them (the old behaviour) overstated
        ``hit_rate`` on POST-heavy workloads.
        """
        if request.method is not Method.GET:
            self.stats.misses += 1
            return None
        key = self._key(request)
        entry = self._entries.get(key)
        if entry is None or now - entry.stored_at > self._ttl:
            if entry is not None:
                del self._entries[key]
                self.stats.expired += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        cached = entry.response
        return Response(
            status=cached.status,
            headers=cached.headers,
            body=cached.body,
            served_from_cache=True,
        )

    def store(self, request: Request, response: Response, now: float) -> bool:
        """Cache the response if it is cacheable; returns True when stored."""
        if not self._cacheable(request, response):
            return False
        key = self._key(request)
        self._entries[key] = _Entry(response=response, stored_at=now)
        self._entries.move_to_end(key)
        self.stats.insertions += 1
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    def sweep(self, now: float) -> int:
        """Drop every expired entry; returns how many were removed.

        Run from proxy housekeeping so entries that are never looked up
        again do not linger for the life of the node — lazy expiry alone
        only reclaims keys that stay popular enough to be re-requested.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if now - entry.stored_at > self._ttl
        ]
        for key in stale:
            del self._entries[key]
        self.stats.expired += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _cacheable(request: Request, response: Response) -> bool:
        if request.method is not Method.GET:
            return False
        if response.status != 200:
            return False
        if response.headers.is_uncacheable():
            return False
        kind = response.content_kind
        if kind is ContentKind.HTML:
            return False
        return kind in (
            ContentKind.CSS,
            ContentKind.JAVASCRIPT,
            ContentKind.IMAGE,
            ContentKind.AUDIO,
            ContentKind.OTHER,
        )
