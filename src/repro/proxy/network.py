"""A network of proxy nodes with sticky client assignment.

CoDeeN clients configure one proxy and stick to it, so each node sees
complete sessions; the network assigns clients to nodes by a stable hash
of the client IP and aggregates node statistics for whole-deployment
reporting (Table 1 sums sessions across all nodes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.detection.online import DetectionLatency
from repro.detection.session import SessionState
from repro.detection.set_algebra import SessionSets
from repro.http.message import Request, Response
from repro.instrument.rewriter import InstrumentConfig
from repro.proxy.node import NodeStats, ProxyNode
from repro.proxy.ratelimit import RateLimitConfig
from repro.site.origin import OriginServer
from repro.util.rng import RngStream


@dataclass
class NetworkStats:
    """Aggregate of all node stats."""

    requests: int = 0
    rate_limited: int = 0
    policy_blocked: int = 0
    #: Graduated response ladder enforcements (see NodeStats).
    throttled: int = 0
    challenged: int = 0
    ladder_blocked: int = 0
    beacon_requests: int = 0
    origin_requests: int = 0
    cache_hits: int = 0
    pages_instrumented: int = 0
    bytes_served: int = 0
    beacon_bytes_served: int = 0
    instrumentation_markup_bytes: int = 0
    #: Ingress admission accounting (see NodeStats.queued / .shed).
    queued: int = 0
    shed: int = 0

    @property
    def beacon_bandwidth_fraction(self) -> float:
        """Network-wide probe-object bandwidth share (§3.2's 0.3%)."""
        if self.bytes_served == 0:
            return 0.0
        return self.beacon_bytes_served / self.bytes_served

    @property
    def markup_bandwidth_fraction(self) -> float:
        """Network-wide share of instrumentation markup growth."""
        if self.bytes_served == 0:
            return 0.0
        return self.instrumentation_markup_bytes / self.bytes_served

    def absorb(self, node: NodeStats) -> None:
        """Add one node's counters into the aggregate."""
        self.requests += node.requests
        self.rate_limited += node.rate_limited
        self.policy_blocked += node.policy_blocked
        self.throttled += node.throttled
        self.challenged += node.challenged
        self.ladder_blocked += node.ladder_blocked
        self.beacon_requests += node.beacon_requests
        self.origin_requests += node.origin_requests
        self.cache_hits += node.cache_hits
        self.pages_instrumented += node.pages_instrumented
        self.bytes_served += node.bytes_served
        self.beacon_bytes_served += node.beacon_bytes_served
        self.instrumentation_markup_bytes += node.instrumentation_markup_bytes
        self.queued += node.queued
        self.shed += node.shed


class ProxyNetwork:
    """A fixed set of nodes sharing the same origins."""

    def __init__(
        self,
        origins: dict[str, OriginServer],
        rng: RngStream,
        n_nodes: int = 4,
        instrument_config: InstrumentConfig | None = None,
        rate_limit: RateLimitConfig | None = None,
        instrument_enabled: bool = True,
        detection_shards: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.nodes = [
            ProxyNode(
                node_id=f"node-{i:03d}",
                origins=origins,
                rng=rng,
                instrument_config=instrument_config,
                rate_limit=rate_limit,
                instrument_enabled=instrument_enabled,
                detection_shards=detection_shards,
            )
            for i in range(n_nodes)
        ]
        self._taps: list[Callable[[Request, Response], None]] = []

    def shard_detection(
        self, n_shards: int, max_workers: int | None = None
    ) -> None:
        """Re-partition every node's detection state into ``n_shards``.

        Must run before traffic; idempotent per shard count.
        """
        for node in self.nodes:
            node.shard_detection(n_shards, max_workers=max_workers)

    def close_detection(self) -> None:
        """Release every node's detection executor threads, if any."""
        for node in self.nodes:
            node.close_detection()

    @property
    def taps(self) -> tuple[Callable[[Request, Response], None], ...]:
        """The attached traffic observers (read-only view).

        The pipelined ingress forwards these to its lane workers — lane
        traffic never passes through :meth:`handle`, so the workers
        must fire the taps themselves.
        """
        return tuple(self._taps)

    def add_tap(self, tap: Callable[[Request, Response], None]) -> None:
        """Observe every request/response pair :meth:`handle` processes.

        Taps see traffic *after* the node answered (rate limits, blocks
        and beacon responses included) — this is the trace recorder's
        attachment point.
        """
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Request, Response], None]) -> None:
        """Detach a tap (no error if absent)."""
        if tap in self._taps:
            self._taps.remove(tap)

    def node_index_for(self, client_ip: str) -> int:
        """Sticky node index by stable hash of the client IP.

        This is also the ingress lane assignment: a node is the unit of
        self-contained mutable state (detection shards, probe registry,
        cache, rate buckets), so partitioning arrivals by node index is
        what lets lanes run on threads or processes without sharing.
        """
        digest = hashlib.blake2b(
            client_ip.encode("utf-8"), digest_size=4
        ).digest()
        return int.from_bytes(digest, "little") % len(self.nodes)

    def node_for(self, client_ip: str) -> ProxyNode:
        """Sticky node assignment by stable hash of the client IP."""
        return self.nodes[self.node_index_for(client_ip)]

    def handle(self, request: Request) -> Response:
        """Route a request to its node and process it."""
        return self.handle_traced(request)[0]

    def handle_traced(self, request: Request):
        """Route a request to its node, exposing the detection outcome.

        Returns ``(response, outcome)`` — what the sync replay loop's
        tracing needs to flag robot/error traces; taps fire either way.
        """
        response, outcome = self.node_for(
            request.client_ip
        ).handle_traced(request)
        for tap in self._taps:
            tap(request, response)
        return response, outcome

    def housekeeping(self, now: float) -> None:
        """Run maintenance on every node."""
        for node in self.nodes:
            node.housekeeping(now)

    # -- aggregation --------------------------------------------------------

    def stats(self) -> NetworkStats:
        """Aggregate statistics across nodes."""
        total = NetworkStats()
        for node in self.nodes:
            total.absorb(node.stats)
        return total

    def metrics_snapshot(self, include_wall: bool = True):
        """Deployment-wide metrics: node registries merged in node order.

        Node order is the same order the ingress merges lanes in, so a
        synchronous run and a pipelined run reduce their deterministic
        metrics identically.
        """
        from repro.obs.registry import merge_snapshots

        return merge_snapshots(
            node.metrics_snapshot(include_wall=include_wall)
            for node in self.nodes
        )

    def finalize_sessions(self) -> list[SessionState]:
        """Finalize all nodes and collect every analyzable session."""
        sessions: list[SessionState] = []
        for node in self.nodes:
            node.detection.finalize()
            sessions.extend(node.detection.tracker.analyzable())
        return sessions

    def session_sets(self) -> SessionSets:
        """Network-wide set-algebra census (call after finalize_sessions)."""
        sets = SessionSets()
        for node in self.nodes:
            for state in node.detection.tracker.analyzable():
                sets.add(state)
        return sets

    def detection_latencies(self) -> list[DetectionLatency]:
        """Network-wide Figure 2 samples (call after finalize_sessions)."""
        samples: list[DetectionLatency] = []
        for node in self.nodes:
            samples.extend(node.detection.detection_latencies())
        return samples
