"""Command-line entry point: ``python -m repro <command> [options]``.

Two command families share the entry point:

* experiment commands regenerate the paper's tables and figures
  (``table1``, ``figure2``, ..., ``all``, ``list``);
* trace commands move workloads in and out of access logs:
  ``record`` exports a synthetic workload as a Combined Log Format
  trace (plus probe journal), ``replay`` streams a trace — recorded or
  real — through the detection pipeline, ``stats`` renders a metrics
  snapshot (``--metrics-out``) as a table, Prometheus text, or
  canonical JSON, ``profile`` prints per-stage critical-path
  attribution from a span trace (``--trace-out``), and ``serve``
  mounts the pipeline behind a live asyncio HTTP/1.1 socket with
  live CLF logging (``--swarm N`` drives agent sessions at it).

Examples::

    python -m repro list
    python -m repro table1 --sessions 2000 --seed 7 \
        --metrics-out metrics.json --flight-interval 3600
    python -m repro all --sessions 1000 --ml-sessions 800
    python -m repro record --out week.log.gz --probes week.keys.gz \
        --sessions 500 --mode interleaved --arrival diurnal
    python -m repro replay --trace week.log.gz --probes week.keys.gz \
        --metrics-out metrics.json --flight-interval 3600 \
        --trace-out spans.json
    python -m repro stats metrics.json --format prometheus
    python -m repro profile spans.json --limit 10
    python -m repro serve --swarm 100 --trace live.log.gz \
        --probes live.keys.gz
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.analysis.report import generate_report
from repro.experiments.registry import EXPERIMENTS

_WORKLOAD_EXPERIMENTS = ("table1", "figure2", "figure3", "overhead")
_ML_EXPERIMENTS = ("table2", "figure4")

_TRACE_COMMANDS = ("record", "replay", "stats", "profile", "serve")


def build_parser() -> argparse.ArgumentParser:
    """The experiment-command argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Securing Web Service by Automatic Robot "
            "Detection' (USENIX ATC 2006): regenerate any table or "
            "figure from the paper's evaluation.  Trace tooling: "
            "'repro record' exports a workload as an access log, "
            "'repro replay' runs a log through the detectors."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all", "list"],
        help="experiment id, 'all' for the full report, 'list' to enumerate",
    )
    parser.add_argument(
        "--sessions", type=int, default=1000,
        help="CoDeeN-week sessions (paper: 929,922; default 1000)",
    )
    parser.add_argument(
        "--ml-sessions", type=int, default=800,
        help="ML-study sessions (paper: 167,246; default 800)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006, help="workload seed"
    )
    parser.add_argument(
        "--ml-seed", type=int, default=4242, help="ML-study seed"
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the experiment workload's metrics snapshot (and any "
             "flight frames) as repro.obs JSON (workload experiments)",
    )
    parser.add_argument(
        "--flight-interval", type=float, default=0,
        help="flight recorder: sample a metrics frame every N virtual "
             "seconds of workload time (0 disables; workload "
             "experiments that expose it)",
    )
    return parser


def build_record_parser() -> argparse.ArgumentParser:
    """Parser for ``repro record``."""
    parser = argparse.ArgumentParser(
        prog="repro record",
        description=(
            "Run a synthetic workload and export it as a Combined Log "
            "Format trace plus the probe journal a faithful replay "
            "needs.  The CAPTCHA funnel is disabled: its outcomes are "
            "out-of-band and leave no access-log footprint."
        ),
    )
    parser.add_argument(
        "--out", required=True,
        help="trace file to write (.gz compresses)",
    )
    parser.add_argument(
        "--probes", default=None,
        help="probe journal to write alongside the trace (.gz compresses)",
    )
    parser.add_argument(
        "--mix", default="codeen_week",
        help="population mix name (default codeen_week)",
    )
    parser.add_argument("--sessions", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--duration", default="1w",
        help="experiment window, e.g. 90s / 1.5h / 1w (default 1w)",
    )
    parser.add_argument(
        "--mode", choices=("sequential", "interleaved", "pipelined"),
        default="sequential",
    )
    parser.add_argument(
        "--arrival", choices=("uniform", "diurnal", "burst"),
        default="uniform",
        help="session arrival profile (non-uniform needs --mode interleaved)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="hash-partition detection state into N shards per node "
             "(0 = unsharded; shard count never changes results)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default="serial",
        help="ingress lane executor for --mode pipelined "
             "(executor choice never changes results)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=0,
        help="per-lane ingress queue bound in events for --mode "
             "pipelined (0 = unbounded)",
    )
    parser.add_argument(
        "--shed", nargs="?", const="shed", default=None,
        choices=("shed", "adaptive"), metavar="POLICY",
        help="for --mode pipelined: 'shed' drops (and counts) whole "
             "sessions when a lane queue is full (needs --queue-depth); "
             "'adaptive' sheds at the front door once the predicted "
             "lane delay exceeds --delay-budget, with per-IP fairness",
    )
    parser.add_argument(
        "--delay-budget", type=float, default=1.0, metavar="SECONDS",
        help="predicted per-lane queue delay that triggers adaptive "
             "shedding (default 1.0; only with --shed adaptive)",
    )
    parser.add_argument(
        "--lanes-per-node", type=int, default=1,
        help="ingress lanes per node for --mode pipelined: 1 runs the "
             "whole node per lane; the detection shard count runs one "
             "lane per state shard (lane count never changes results)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the run's metrics snapshot (and any flight-recorder "
             "frames) as repro.obs JSON",
    )
    parser.add_argument(
        "--flight-interval", type=float, default=0,
        help="flight recorder: sample a metrics frame every N virtual "
             "seconds of workload time (0 disables)",
    )
    _add_trace_out_options(parser, needs="--mode pipelined")
    return parser


def _add_trace_out_options(
    parser: argparse.ArgumentParser, needs: str | None = None
) -> None:
    """The shared ``--trace-out`` / ``--trace-sample`` / ``--trace-clock``."""
    suffix = f" (needs {needs})" if needs else ""
    parser.add_argument(
        "--trace-out", default=None,
        help="tail-sample span traces and write them as Chrome "
             f"trace-event JSON for Perfetto / 'repro profile'{suffix}",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=None, metavar="N",
        help="per-category trace budget for --trace-out: keep N "
             "exemplar traces each for head/slow/error/shed and 2N for "
             "robot verdicts (default 16)",
    )
    parser.add_argument(
        "--trace-clock", choices=("wall", "virtual"), default="wall",
        help="clock domain for --trace-out: 'wall' for profiling, "
             "'virtual' for byte-identical deterministic traces "
             "(default wall)",
    )


def build_replay_parser() -> argparse.ArgumentParser:
    """Parser for ``repro replay``."""
    parser = argparse.ArgumentParser(
        prog="repro replay",
        description=(
            "Stream one or more access logs through a fresh detection "
            "deployment in global timestamp order and report the "
            "session census and set-algebra bounds."
        ),
    )
    parser.add_argument(
        "--trace", required=True, nargs="+",
        help="trace file(s); several are heap-merged by timestamp",
    )
    parser.add_argument(
        "--probes", default=None,
        help="probe journal recorded with the trace (full fidelity)",
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--housekeeping", type=float, default=600.0,
        help="virtual seconds between maintenance sweeps (0 disables)",
    )
    parser.add_argument(
        "--default-host", default=None,
        help="host for origin-form request targets in real logs (GET /x)",
    )
    parser.add_argument(
        "--sorted", action="store_true", dest="assume_sorted",
        help="trust source ordering (constant-memory streaming)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="abort on the first malformed line instead of skipping",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="hash-partition detection state into N shards per node "
             "(0 = unsharded; shard count never changes results)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default=None,
        help="stream events through the pipelined ingress on this lane "
             "executor instead of the synchronous loop (results are "
             "identical; 'process' runs nodes truly in parallel)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=0,
        help="per-lane ingress queue bound in events (0 = unbounded; "
             "needs --executor)",
    )
    parser.add_argument(
        "--shed", nargs="?", const="shed", choices=("shed", "adaptive"),
        default=None, metavar="POLICY",
        help="load-shedding policy: 'shed' (the default when the flag "
             "is given bare) sheds and counts when a lane queue is "
             "full (needs --executor and --queue-depth); 'adaptive' "
             "sheds at the front door when a lane's predicted queue "
             "delay exceeds --delay-budget, with hysteresis and "
             "per-IP fairness (needs --executor thread|process)",
    )
    parser.add_argument(
        "--delay-budget", type=float, default=1.0,
        help="adaptive shedding: predicted per-lane queue delay budget "
             "in wall seconds (default 1.0; needs --shed adaptive)",
    )
    parser.add_argument(
        "--ladder", action="store_true",
        help="graduated response ladder (throttle -> CAPTCHA -> "
             "block), escalated live from micro-batch checkpoint "
             "verdicts per client IP (needs --executor and "
             "--score-rounds)",
    )
    parser.add_argument(
        "--lanes-per-node", type=int, default=1,
        help="ingress lanes per node: 1 runs the whole node per lane; "
             "the detection shard count runs one lane per state shard "
             "(needs --executor; lane count never changes results)",
    )
    parser.add_argument(
        "--score-rounds", type=int, default=0,
        help="micro-batch ensemble scoring per lane with a seeded "
             "demonstration model of N stumps (0 disables; needs "
             "--executor; verdicts exercise the pipeline, they are "
             "not trained judgements)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the run's metrics snapshot (and any flight-recorder "
             "frames) as repro.obs JSON",
    )
    parser.add_argument(
        "--flight-interval", type=float, default=0,
        help="flight recorder: sample a metrics frame every N virtual "
             "seconds of trace time (0 disables)",
    )
    _add_trace_out_options(parser)
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    """Parser for ``repro stats``."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Render a repro.obs metrics snapshot (written by 'repro "
            "record/replay --metrics-out') as a human-readable table, "
            "Prometheus text exposition, or canonical JSON."
        ),
    )
    parser.add_argument(
        "metrics",
        help="metrics snapshot JSON file (schema repro.obs/v1)",
    )
    parser.add_argument(
        "--format", choices=("table", "prometheus", "json"),
        default="table",
        help="output format (default table)",
    )
    parser.add_argument(
        "--deterministic", action="store_true",
        help="restrict to the deterministic domain (drop wall-clock "
             "timings and depth gauges)",
    )
    parser.add_argument(
        "--flight", action="store_true",
        help="render each flight-recorder frame instead of the final "
             "snapshot",
    )
    return parser


def build_profile_parser() -> argparse.ArgumentParser:
    """Parser for ``repro profile``."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Read a span trace (written by 'repro record/replay "
            "--trace-out') and print per-stage critical-path "
            "attribution: count, total and self time plus p50/p95/p99 "
            "per named stage, in the clock domain the file was "
            "exported with."
        ),
    )
    parser.add_argument(
        "trace",
        help="Chrome trace-event JSON file (schema repro.spans/v1)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show only the top N stages by self time",
    )
    return parser


def _span_config(args):
    """Build the tail-sampling config the ``--trace-*`` flags describe.

    Returns ``None`` when tracing is off; raises ``ValueError`` on
    inconsistent flags so each command prints its own prefix.
    """
    from repro.obs.spans import SpanConfig

    if args.trace_out is None:
        if args.trace_sample is not None:
            raise ValueError("--trace-sample needs --trace-out")
        return None
    if args.trace_sample is not None:
        if args.trace_sample < 1:
            raise ValueError("--trace-sample must be >= 1")
        return SpanConfig.uniform(args.trace_sample)
    return SpanConfig()


def _write_trace(path: str, traces, clock: str) -> None:
    """Write retained span trees as canonical Chrome trace-event JSON."""
    from repro.obs.spans import to_trace_events

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_trace_events(traces, clock=clock))
        handle.write("\n")
    print(
        f"wrote {len(traces)} sampled span trace(s), {clock} clock "
        f"-> {path}"
    )


def run_record(argv: list[str]) -> int:
    """Execute ``repro record``."""
    from repro.trace.arrival import profile_by_name
    from repro.trace.recorder import record_workload
    from repro.util.rng import RngStream
    from repro.util.timeutil import parse_duration
    from repro.workload.codeen import CodeenWeekConfig, CodeenWeekExperiment
    from repro.workload.engine import WorkloadConfig, WorkloadEngine
    from repro.workload.mixes import mix_by_name

    args = build_record_parser().parse_args(argv)
    try:
        mix = mix_by_name(args.mix)
        duration = parse_duration(args.duration)
        spans = _span_config(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro record: {message}", file=sys.stderr)
        return 2

    experiment = CodeenWeekExperiment(
        CodeenWeekConfig(
            n_sessions=args.sessions, n_nodes=args.nodes, seed=args.seed,
            duration=duration,
        )
    )
    rng = RngStream(args.seed, "record")
    network, entry_url = experiment.build_network(rng)
    try:
        from repro.overload.admission import AdaptiveConfig

        workload_config = WorkloadConfig(
            n_sessions=args.sessions,
            duration=duration,
            captcha_enabled=False,
            mode=args.mode,
            arrival=profile_by_name(args.arrival),
            shards=args.shards,
            executor=args.executor,
            queue_depth=args.queue_depth or None,
            shed=args.shed == "shed",
            adaptive=(
                AdaptiveConfig(delay_budget=args.delay_budget)
                if args.shed == "adaptive"
                else None
            ),
            lanes_per_node=args.lanes_per_node,
            flight_interval=args.flight_interval or None,
            spans=spans,
        )
    except ValueError as exc:
        # e.g. --trace-out without --mode pipelined: span tracing rides
        # the ingress lanes.
        print(f"repro record: {exc}", file=sys.stderr)
        return 2
    engine = WorkloadEngine(
        network, mix, entry_url, rng.split("workload"), workload_config
    )
    try:
        result, recorder = record_workload(engine, args.out, args.probes)
    except ValueError as exc:
        # e.g. --mode pipelined --executor process: the recorder's taps
        # cannot observe lanes running in child interpreters.
        print(f"repro record: {exc}", file=sys.stderr)
        return 2

    print(f"wrote {len(recorder.records)} requests -> {args.out}")
    if args.probes:
        print(f"wrote {len(recorder.probes)} probe registrations -> "
              f"{args.probes}")
    print(f"analyzable sessions: {result.analyzable_count}")
    for kind, count in sorted(result.kind_census().items()):
        print(f"  {kind:20s} {count}")
    if result.overload is not None:
        report = result.overload
        episodes = sum(lane.entered for lane in report.lanes)
        print(
            f"adaptive admission: {report.shed} shed / "
            f"{report.admitted} admitted over {episodes} overload "
            f"episode(s)"
        )
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics, result.flight)
    if args.trace_out:
        _write_trace(args.trace_out, result.spans, args.trace_clock)
    return 0


def _write_metrics(path: str, snapshot, flight=()) -> None:
    """Write a snapshot (plus flight frames) as repro.obs JSON."""
    from repro.obs.export import to_json

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(snapshot, flight=flight))
        handle.write("\n")
    suffix = f" ({len(flight)} flight frames)" if flight else ""
    print(f"wrote metrics snapshot{suffix} -> {path}")


def _print_ingress_summary(metrics) -> None:
    """Surface per-lane admission balance and cache-expiry telemetry."""
    admitted = {
        dict(p.labels).get("lane", "?"): p.value
        for p in metrics.series("repro_ingress_admitted_total")
    }
    if admitted:
        shed = {
            dict(p.labels).get("lane", "?"): p.value
            for p in metrics.series("repro_ingress_shed_total")
        }
        marks = {
            dict(p.labels).get("lane", "?"): p.value
            for p in metrics.series("repro_ingress_queue_high_watermark")
        }
        print("ingress lanes:")
        for lane in sorted(admitted, key=lambda v: int(v)):
            print(
                f"  lane {lane}: admitted={int(admitted[lane])} "
                f"shed={int(shed.get(lane, 0))} "
                f"queue high-watermark={int(marks.get(lane, 0))}"
            )
    flushes = metrics.total("repro_batch_flush_total")
    if flushes:
        scored = metrics.total("repro_batch_sessions_scored_total")
        print(
            f"micro-batch scoring: {int(scored)} session scores in "
            f"{int(flushes)} flushes"
        )
    expired = metrics.total("repro_cache_expired_total")
    if expired:
        print(f"cache: {int(expired)} expired entries swept")


def run_replay(argv: list[str]) -> int:
    """Execute ``repro replay``."""
    from repro.proxy.network import ProxyNetwork
    from repro.trace.replay import ReplayConfig, TraceReplayEngine
    from repro.util.rng import RngStream
    from repro.util.timeutil import format_duration

    args = build_replay_parser().parse_args(argv)
    if args.score_rounds and args.executor is None:
        print(
            "repro replay: --score-rounds needs --executor (micro-batch "
            "scoring runs on the pipelined ingress lanes)",
            file=sys.stderr,
        )
        return 2
    if args.ladder and not args.score_rounds:
        print(
            "repro replay: --ladder needs --score-rounds (checkpoint "
            "verdicts from the micro-batch model drive the escalation)",
            file=sys.stderr,
        )
        return 2
    network = ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=args.nodes,
        instrument_enabled=False,
    )
    try:
        spans = _span_config(args)
        adaptive = None
        if args.shed == "adaptive":
            from repro.overload.admission import AdaptiveConfig

            adaptive = AdaptiveConfig(delay_budget=args.delay_budget)
        ladder = None
        if args.ladder:
            from repro.overload.ladder import LadderConfig

            ladder = LadderConfig()
        config = ReplayConfig(
            housekeeping_interval=args.housekeeping,
            assume_sorted=args.assume_sorted,
            default_host=args.default_host,
            strict=args.strict,
            shards=args.shards,
            executor=args.executor,
            queue_depth=args.queue_depth or None,
            shed=args.shed == "shed",
            adaptive=adaptive,
            ladder=ladder,
            lanes_per_node=args.lanes_per_node,
            scorer_model=(
                _demo_model(args.score_rounds) if args.score_rounds
                else None
            ),
            flight_interval=args.flight_interval or None,
            spans=spans,
        )
    except ValueError as exc:
        print(f"repro replay: {exc}", file=sys.stderr)
        return 2
    engine = TraceReplayEngine(network, config)
    from repro.trace.clf import TraceParseError

    try:
        result = engine.replay(*args.trace, probes=args.probes)
    except OSError as exc:
        print(f"repro replay: {exc}", file=sys.stderr)
        return 2
    except TraceParseError as exc:
        print(f"repro replay: {exc}", file=sys.stderr)
        return 2

    stats = result.parse_stats
    print(
        f"replayed {result.requests_replayed} requests over "
        f"{format_duration(result.span)} "
        f"({stats.malformed} malformed lines skipped, "
        f"{result.probes_loaded} probes loaded)"
    )
    if result.stats.shed:
        print(
            f"load shed at admission: {result.stats.shed} events "
            f"({result.stats.queued} queued)"
        )
    if result.overload is not None:
        report = result.overload
        episodes = sum(lane.entered for lane in report.lanes)
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(report.reasons.items())
        )
        print(
            f"adaptive admission: {report.shed} shed / "
            f"{report.admitted} admitted over {episodes} overload "
            f"episode(s)" + (f" [{reasons}]" if reasons else "")
        )
    if result.ladder is not None:
        stages = {}
        for record in result.ladder["ips"].values():
            stages[record["stage"]] = stages.get(record["stage"], 0) + 1
        staged = ", ".join(
            f"{stage}={count}" for stage, count in sorted(stages.items())
        )
        print(
            f"response ladder: {len(result.ladder['ips'])} tracked "
            f"IP(s), {len(result.ladder['transitions'])} transition(s)"
            + (f" [{staged}]" if staged else "")
        )
        print(
            f"  throttled={result.stats.throttled} "
            f"challenged={result.stats.challenged} "
            f"blocked={result.stats.ladder_blocked}"
        )
    for sample in stats.samples:
        print(f"  malformed: {sample}")
    if result.requests_replayed == 0 and stats.malformed > 0:
        print(
            "hint: origin-form request targets (GET /path) need "
            "--default-host <site host>"
        )
    if result.probe_parse_stats.malformed:
        print(
            f"probe journal: {result.probe_parse_stats.malformed} "
            "malformed lines skipped"
        )
        for sample in result.probe_parse_stats.samples:
            print(f"  malformed: {sample}")
    print(f"analyzable sessions: {result.analyzable_count}")
    census = result.kind_census()
    for kind, count in sorted(census.items()):
        print(f"  {kind or '(unlabeled)':20s} {count}")
    summary = result.summary
    print(f"downloaded CSS:      {summary.fraction('css_downloads'):6.1%}")
    print(f"executed JavaScript: {summary.fraction('js_executions'):6.1%}")
    print(f"mouse movement:      {summary.fraction('mouse_movements'):6.1%}")
    print(f"human lower bound:   {summary.lower_bound:6.1%}")
    print(f"human upper bound:   {summary.upper_bound:6.1%}")
    print(f"max false positives: {summary.max_false_positive_rate:6.1%}")
    _print_ingress_summary(result.metrics)
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics, result.flight)
    if args.trace_out:
        _write_trace(args.trace_out, result.spans, args.trace_clock)
    return 0


def _demo_model(rounds: int):
    from repro.ml.adaboost import demo_ensemble

    return demo_ensemble(rounds)


def run_stats(argv: list[str]) -> int:
    """Execute ``repro stats``."""
    from repro.obs.export import (
        render_table,
        snapshot_from_json,
        to_json,
        to_prometheus,
    )

    args = build_stats_parser().parse_args(argv)
    try:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot, flight = snapshot_from_json(handle.read())
    except (OSError, ValueError) as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 2

    if args.flight and not flight:
        print("repro stats: snapshot has no flight frames "
              "(replay with --flight-interval)", file=sys.stderr)
        return 2

    frames = flight if args.flight else [None]
    for frame in frames:
        snap = snapshot if frame is None else frame.metrics
        if args.deterministic:
            snap = snap.deterministic()
        if frame is not None:
            print(f"--- t={frame.tick:g} ---")
        if args.format == "prometheus":
            print(to_prometheus(snap), end="")
        elif args.format == "json":
            print(to_json(snap))
        else:
            print(render_table(snap))
    return 0


def run_profile(argv: list[str]) -> int:
    """Execute ``repro profile``."""
    from repro.obs.spans import profile_stages, trace_trees_from_json

    args = build_profile_parser().parse_args(argv)
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trees, clock = trace_trees_from_json(handle.read())
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro profile: {exc}", file=sys.stderr)
        return 2
    if not trees:
        print(
            "repro profile: no span traces in file (record/replay with "
            "--trace-out)",
            file=sys.stderr,
        )
        return 2
    print(profile_stages(trees, clock=clock).render(limit=args.limit))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Mount the detection pipeline behind a live asyncio "
            "HTTP/1.1 socket: a generated site, sharded detection and "
            "the CAPTCHA funnel, with live CLF logging.  --swarm N "
            "drives N agent sessions from a population mix against the "
            "server and exits; without it the server runs until "
            "interrupted."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="listening port (default 0: bind an ephemeral port)",
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument(
        "--mix", default="codeen_week",
        help="population mix for --swarm (default codeen_week)",
    )
    parser.add_argument(
        "--swarm", type=int, default=0,
        help="drive N agent sessions against the server, then exit "
             "(default 0: serve until interrupted)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=16,
        help="concurrent swarm sessions (default 16)",
    )
    parser.add_argument(
        "--trace", default=None,
        help="live CLF access log to write (.gz compresses)",
    )
    parser.add_argument(
        "--probes", default=None,
        help="probe journal to write at shutdown (.gz compresses)",
    )
    parser.add_argument(
        "--shed", choices=("block", "shed", "adaptive"), default="block",
        help="admission policy at the front door (default block: "
             "queue on the node lane)",
    )
    parser.add_argument(
        "--delay-budget", type=float, default=0.05,
        help="adaptive admission: per-lane queue-delay budget in wall "
             "seconds (default 0.05)",
    )
    parser.add_argument(
        "--keep-alive-timeout", type=float, default=15.0,
        help="idle seconds before a keep-alive connection drops",
    )
    return parser


def run_serve(argv: list[str]) -> int:
    """Execute ``repro serve``."""
    import asyncio

    from repro.http.uri import Url
    from repro.serve.server import DetectorServer, ServeConfig
    from repro.serve.swarm import SwarmConfig, run_swarm
    from repro.util.rng import RngStream
    from repro.workload.codeen import CodeenWeekConfig, CodeenWeekExperiment
    from repro.workload.mixes import mix_by_name

    args = build_serve_parser().parse_args(argv)
    try:
        mix_by_name(args.mix)
        adaptive = None
        if args.shed == "adaptive":
            from repro.overload.admission import AdaptiveConfig

            adaptive = AdaptiveConfig(delay_budget=args.delay_budget)
        config = ServeConfig(
            host=args.host,
            port=args.port,
            keep_alive_timeout=args.keep_alive_timeout,
            trace_path=args.trace,
            probes_path=args.probes,
            policy=args.shed,
            adaptive=adaptive,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro serve: {message}", file=sys.stderr)
        return 2

    experiment = CodeenWeekExperiment(
        CodeenWeekConfig(
            n_sessions=max(args.swarm, 1), n_nodes=args.nodes,
            seed=args.seed,
        )
    )
    network, entry_url = experiment.build_network(
        RngStream(args.seed, "serve")
    )
    default_host = Url.parse(entry_url).host

    async def serve() -> int:
        server = DetectorServer(
            network, default_host=default_host, config=config
        )
        await server.start()
        print(f"serving {entry_url} on {server.address}")
        if not args.swarm:
            try:
                await server.serve_forever()
            finally:
                await server.close()
            return 0
        result = await run_swarm(
            SwarmConfig(
                host=args.host,
                port=server.port,
                sessions=args.swarm,
                mix_name=args.mix,
                seed=args.seed,
                concurrency=args.concurrency,
            ),
            entry_url,
        )
        server.annotate_ground_truth(result.identities())
        await server.close()
        print(
            f"swarm: {result.requests} requests over "
            f"{len(result.reports)} sessions "
            f"({result.errors} transport errors)"
        )
        if args.trace:
            print(f"wrote {len(server.records)} requests -> {args.trace}")
        if args.probes:
            print(
                f"wrote {len(server.probes)} probe registrations -> "
                f"{args.probes}"
            )
        sessions = server.finalize_sessions()
        census: dict[str, int] = {}
        for state in sessions:
            census[state.agent_kind] = census.get(state.agent_kind, 0) + 1
        print(f"analyzable sessions: {len(sessions)}")
        for kind, count in sorted(census.items()):
            print(f"  {kind:20s} {count}")
        if server.shed_count:
            print(f"admission: {server.shed_count} request(s) shed")
        if server.parse_errors:
            print(f"malformed requests refused: {server.parse_errors}")
        return 0

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
        return 130


def _experiment_workload(result):
    """The WorkloadResult an experiment result wraps, if it keeps one."""
    workload = getattr(result, "workload", None)
    if workload is None:
        workload = getattr(getattr(result, "result", None), "workload", None)
    return workload


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _TRACE_COMMANDS:
        runner = {
            "record": run_record,
            "replay": run_replay,
            "stats": run_stats,
            "profile": run_profile,
            "serve": run_serve,
        }[argv[0]]
        return runner(argv[1:])

    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.experiment == "all":
        if args.metrics_out or args.flight_interval:
            print(
                "repro: --metrics-out/--flight-interval need a single "
                "workload experiment (e.g. table1), not 'all'",
                file=sys.stderr,
            )
            return 2
        report = generate_report(
            n_sessions=args.sessions,
            ml_sessions=args.ml_sessions,
            seed=args.seed,
            ml_seed=args.ml_seed,
        )
        print(report.render())
        print(f"\ntotal: {report.total_seconds:.1f}s")
        return 0

    runner = EXPERIMENTS[args.experiment]
    if args.flight_interval and (
        "flight_interval" not in inspect.signature(runner).parameters
    ):
        print(
            f"repro: {args.experiment} does not take --flight-interval "
            "(its runner drives no instrumented workload)",
            file=sys.stderr,
        )
        return 2
    if args.experiment in _ML_EXPERIMENTS:
        result = runner(n_sessions=args.ml_sessions, seed=args.ml_seed)
    else:
        kwargs = {"n_sessions": args.sessions, "seed": args.seed}
        if args.flight_interval:
            kwargs["flight_interval"] = args.flight_interval
        result = runner(**kwargs)
    print(result.render())
    if args.metrics_out:
        workload = _experiment_workload(result)
        if workload is None:
            print(
                f"repro: {args.experiment} keeps no workload result; "
                "--metrics-out has nothing to write",
                file=sys.stderr,
            )
            return 2
        _write_metrics(args.metrics_out, workload.metrics, workload.flight)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
