"""Command-line entry point: ``python -m repro <experiment> [options]``.

Examples::

    python -m repro list
    python -m repro table1 --sessions 2000 --seed 7
    python -m repro figure4 --sessions 1200
    python -m repro all --sessions 1000 --ml-sessions 800
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import generate_report
from repro.experiments.registry import EXPERIMENTS

_WORKLOAD_EXPERIMENTS = ("table1", "figure2", "figure3", "overhead")
_ML_EXPERIMENTS = ("table2", "figure4")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Securing Web Service by Automatic Robot "
            "Detection' (USENIX ATC 2006): regenerate any table or "
            "figure from the paper's evaluation."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*sorted(EXPERIMENTS), "all", "list"],
        help="experiment id, 'all' for the full report, 'list' to enumerate",
    )
    parser.add_argument(
        "--sessions", type=int, default=1000,
        help="CoDeeN-week sessions (paper: 929,922; default 1000)",
    )
    parser.add_argument(
        "--ml-sessions", type=int, default=800,
        help="ML-study sessions (paper: 167,246; default 800)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006, help="workload seed"
    )
    parser.add_argument(
        "--ml-seed", type=int, default=4242, help="ML-study seed"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.experiment == "all":
        report = generate_report(
            n_sessions=args.sessions,
            ml_sessions=args.ml_sessions,
            seed=args.seed,
            ml_seed=args.ml_seed,
        )
        print(report.render())
        print(f"\ntotal: {report.total_seconds:.1f}s")
        return 0

    runner = EXPERIMENTS[args.experiment]
    if args.experiment in _ML_EXPERIMENTS:
        result = runner(n_sessions=args.ml_sessions, seed=args.ml_seed)
    else:
        result = runner(n_sessions=args.sessions, seed=args.seed)
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
