"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (``pip install -e .``) cannot build metadata.  This file lets
``python setup.py develop`` (and legacy pip fallbacks) install the
package from pyproject.toml metadata alone.
"""

from setuptools import setup

setup()
