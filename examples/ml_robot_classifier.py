#!/usr/bin/env python
"""The §4.2 machine-learning study: Figure 4 and Table 2.

Generates a CAPTCHA-labelled session dataset (the ``ML_STUDY`` mix run
through a real instrumented proxy with feature collection on), trains
AdaBoost classifiers at the first 20..160 requests, and reports accuracy
and per-attribute contributions.

Run:  python examples/ml_robot_classifier.py [n_sessions] [seed]
      (defaults: 800 sessions, seed 4242; the paper had 167,246)
"""

from __future__ import annotations

import sys
import time

from repro.experiments import figure4, table2


def main() -> None:
    n_sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 4242

    print(f"building dataset and training ({n_sessions} sessions)...")
    started = time.perf_counter()
    figure = figure4.run(n_sessions=n_sessions, seed=seed, rounds=200)
    print(f"done in {time.perf_counter() - started:.1f}s\n")

    print(figure.render())
    print()
    table = table2.run(n_sessions=n_sessions, seed=seed, checkpoint=160)
    print(table.render())

    # Show what one trained model looks like inside.
    model = figure.models[160]
    print(f"\nthe 160-request ensemble holds {model.rounds} stumps; "
          "first five:")
    from repro.ml.features import ATTRIBUTE_NAMES

    for stump, alpha in list(zip(model.stumps, model.alphas))[:5]:
        direction = ">" if stump.polarity == 1 else "<="
        print(f"  human if {ATTRIBUTE_NAMES[stump.feature]} {direction} "
              f"{stump.threshold:.2f}  (vote {alpha:.3f})")


if __name__ == "__main__":
    main()
