#!/usr/bin/env python
"""Operational demo: watch the policy engine block an abusive flood.

A DDoS zombie and a vulnerability scanner hit a protected node alongside
a legitimate human. The robot policy (§3.2: CGI/GET rates, 4xx counts)
blocks the abusers mid-session while the human sails through; the event
log shows the decision trail.

Run:  python examples/protect_my_site.py
"""

from __future__ import annotations

from repro.agents.behavior import BehaviorProfile
from repro.agents.browser import BrowserAgent, BrowserConfig
from repro.agents.robots import DdosZombie, VulnScannerBot
from repro.detection.policy import PolicyConfig
from repro.detection.service import DetectionService
from repro.instrument.keys import InstrumentationRegistry
from repro.proxy.node import ProxyNode
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRunner

BROWSER_UA = "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) " \
    "Gecko/20060111 Firefox/1.5.0.1"


def main() -> None:
    rng = RngStream(99, "protect")
    website = SiteGenerator(SiteConfig(n_pages=16)).generate(rng.split("site"))

    # Aggressive §3.2 thresholds for the demo.
    detection = DetectionService(
        InstrumentationRegistry(),
        policy_config=PolicyConfig(
            get_rate_limit=60.0, cgi_rate_limit=6.0, error_4xx_limit=8
        ),
    )
    node = ProxyNode(
        node_id="guard",
        origins={website.host: OriginServer(website)},
        rng=rng.split("node"),
        detection=detection,
    )
    entry = f"http://{website.host}{website.home_path}"
    runner = SessionRunner(node.handle)

    population = [
        ("human", BrowserAgent(
            "10.7.0.1", BROWSER_UA, rng.split("human"), entry,
            profile=BehaviorProfile(mouse_move_probability=0.9),
            config=BrowserConfig(min_pages=5, max_pages=7),
        )),
        ("zombie", DdosZombie(
            "10.7.0.2", BROWSER_UA, rng.split("zombie"), entry,
            max_requests=150,
        )),
        ("scanner", VulnScannerBot(
            "10.7.0.3", BROWSER_UA, rng.split("scan"), entry,
            max_requests=60,
        )),
    ]

    for name, agent in population:
        record = runner.run(agent, start_time=0.0)
        state = node.detection.tracker.get(agent.client_ip, agent.user_agent)
        verdict = node.detection.classifier.classify_final(state)
        blocked = node.detection.policy.is_blocked(state.session_id)
        print(f"{name:>8} @{agent.client_ip}: {record.requests} requests, "
              f"verdict={verdict.label.value}, "
              f"{'BLOCKED' if blocked else 'not blocked'}")

    print(f"\nnode refused {node.stats.policy_blocked} requests in total")
    print(f"blocked sessions: {node.detection.policy.blocked_sessions}")

    print("\nrobot-evidence events (first 10):")
    interesting = [
        e for e in node.detection.event_log
        if e.kind.is_robot_evidence or e.kind.value == "session_started"
    ]
    for event in interesting[:10]:
        print(f"  {event}")


if __name__ == "__main__":
    main()
