#!/usr/bin/env python
"""Quickstart: instrument a page, watch two clients, classify them.

Builds a one-node deployment, sends a human browser and a crawler
through it, and prints the evidence each one left behind plus the
verdicts — the paper's §2 mechanisms in ~60 lines of driving code.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.agents.behavior import BehaviorProfile
from repro.agents.browser import BrowserAgent, BrowserConfig
from repro.agents.robots import CrawlerBot
from repro.proxy.node import ProxyNode
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRunner


def describe(state) -> str:
    flags = [
        ("downloaded beacon CSS", state.in_css_set),
        ("executed JavaScript", state.in_js_set),
        ("keyed mouse event", state.in_mouse_set),
        ("followed hidden link", state.followed_hidden_link),
        ("UA mismatch", state.ua_mismatched),
        (f"wrong-key fetches: {state.wrong_key_fetches}",
         state.wrong_key_fetches > 0),
    ]
    present = [name for name, on in flags if on]
    return ", ".join(present) if present else "(no evidence)"


def main() -> None:
    rng = RngStream(7, "quickstart")

    # 1. A synthetic origin site and a single instrumenting proxy node.
    website = SiteGenerator(SiteConfig(n_pages=20)).generate(rng.split("site"))
    node = ProxyNode(
        node_id="demo",
        origins={website.host: OriginServer(website)},
        rng=rng.split("node"),
    )
    entry = f"http://{website.host}{website.home_path}"
    runner = SessionRunner(node.handle)

    # 2. A human behind IE6, moving the mouse while reading.
    human = BrowserAgent(
        client_ip="10.0.0.1",
        user_agent="Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)",
        rng=rng.split("human"),
        entry_url=entry,
        profile=BehaviorProfile(mouse_move_probability=0.95),
        config=BrowserConfig(min_pages=4, max_pages=6),
    )
    human_record = runner.run(human, start_time=0.0)

    # 3. A crawler that blindly follows every link, hidden ones included.
    crawler = CrawlerBot(
        client_ip="10.0.0.2",
        user_agent="Googlebot/2.1 (+http://www.google.com/bot.html)",
        rng=rng.split("crawler"),
        entry_url=entry,
        polite=False,
        follow_hidden=True,
        max_requests=60,
    )
    crawler_record = runner.run(crawler, start_time=0.0)

    # 4. Ask the detector what it concluded.
    classifier = node.detection.classifier
    for record in (human_record, crawler_record):
        state = node.detection.tracker.get(
            record.client_ip, record.user_agent
        )
        verdict = classifier.classify_final(state)
        print(f"{record.agent_kind:>8} @{record.client_ip}: "
              f"{record.requests} requests")
        print(f"          evidence: {describe(state)}")
        print(f"          verdict:  {verdict}")
        print()

    stats = node.stats
    print(f"node served {stats.requests} requests, instrumented "
          f"{stats.pages_instrumented} pages, answered "
          f"{stats.beacon_requests} probe fetches locally "
          f"({stats.beacon_bandwidth_fraction:.2%} of bytes)")


if __name__ == "__main__":
    main()
