#!/usr/bin/env python
"""Record a workload, then replay it through the pipelined ingress.

Demonstrates the ingress subsystem end to end:

1. build a deployment, drive a diurnal time-interleaved workload
   through it, and export the traffic as a CLF trace + probe journal;
2. replay the log through the **pipelined ingress**: events stream onto
   bounded per-lane queues (one lane per proxy node, routed by the
   stable client-IP hash) consumed by serial, thread and true-parallel
   process executors — and the census comes out byte-identical on every
   executor, at every queue depth, and to the synchronous loop;
3. replay once more with a tiny queue and the load-shedding policy to
   show overload handling: shed requests are *counted* in the network
   stats, never silently dropped;
4. replay with **span tracing** on: every admitted event carries a trace
   context through admission -> queue wait -> handle -> detection ->
   batch flush, a tail sampler keeps exemplar traces under a bounded
   budget, and the export is Chrome trace-event JSON you can drop into
   https://ui.perfetto.dev — plus the same per-stage critical-path
   table ``repro profile`` prints.

Run:  python examples/pipelined_replay.py
"""

from __future__ import annotations

import os
import tempfile

from repro.obs.spans import (
    SpanConfig,
    profile_stages,
    to_trace_events,
    trace_trees_from_json,
)
from repro.proxy.network import ProxyNetwork
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.trace.arrival import DiurnalArrival
from repro.trace.recorder import record_workload
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.util.timeutil import DAY
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import CODEEN_WEEK


def replay(trace: str, probes: str, **config_kwargs):
    network = ProxyNetwork(
        origins={},  # replays need no origin: unrouted requests 502
        rng=RngStream(0, "replay"),
        n_nodes=4,
        instrument_enabled=False,
    )
    engine = TraceReplayEngine(
        network, ReplayConfig(assume_sorted=True, **config_kwargs)
    )
    return engine.replay(trace, probes=probes)


def main() -> None:
    rng = RngStream(2006, "pipelined-replay")

    website = SiteGenerator(SiteConfig(n_pages=20)).generate(rng.split("site"))
    network = ProxyNetwork(
        origins={website.host: OriginServer(website)},
        rng=rng.split("proxies"),
        n_nodes=4,
    )
    entry = f"http://{website.host}{website.home_path}"

    engine = WorkloadEngine(
        network,
        CODEEN_WEEK,
        entry,
        rng.split("workload"),
        WorkloadConfig(
            n_sessions=300,
            duration=DAY,
            mode="interleaved",
            arrival=DiurnalArrival(peak_ratio=5.0),
            captcha_enabled=False,  # out-of-band; leaves no log footprint
        ),
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "day.log.gz")
        probes = os.path.join(tmp, "day.keys.gz")
        recorded, recorder = record_workload(engine, trace, probes)
        print(
            f"recorded {len(recorder.records)} requests, "
            f"{len(recorder.probes)} probe registrations"
        )
        print(f"live census: {sorted(recorded.kind_census().items())}")

        # The synchronous loop is the reference ...
        baseline = replay(trace, probes)
        print(
            f"\nsynchronous replay: {baseline.requests_replayed} requests, "
            f"{baseline.analyzable_count} analyzable sessions"
        )

        # ... and the ingress matches it on every executor.
        for executor in ("serial", "thread", "process"):
            result = replay(
                trace, probes, executor=executor, queue_depth=256
            )
            assert result.summary == baseline.summary
            assert result.kind_census() == baseline.kind_census()
            print(
                f"  executor={executor:7s} queued={result.stats.queued:6d} "
                f"census identical: True"
            )

        # Overload: a depth-4 queue with shedding enabled.  Requests are
        # refused when admission outruns the lanes — and every one of
        # them shows up in the stats.
        shed_run = replay(
            trace,
            probes,
            executor="thread",
            queue_depth=4,
            shed=True,
        )
        stats = shed_run.stats
        total = len(recorder.records) + len(recorder.probes)
        print(
            f"\noverload replay (depth=4, shed): handled "
            f"{shed_run.requests_replayed}, shed {stats.shed}, "
            f"queued {stats.queued}  (balance: "
            f"{stats.queued + stats.shed} == {total} admitted)"
        )
        assert stats.queued + stats.shed == total

        print(
            f"\nhuman bounds from the pipelined replay: "
            f"{baseline.summary.lower_bound:.1%} .. "
            f"{baseline.summary.upper_bound:.1%}"
        )

        # Span tracing: the same replay with causal traces attached.
        # ``SpanConfig.uniform(8)`` keeps at most 8 exemplar traces per
        # category per lane (16 for robot verdicts) — budget-bounded no
        # matter how long the trace is.
        traced = replay(
            trace,
            probes,
            executor="thread",
            queue_depth=256,
            spans=SpanConfig.uniform(8),
        )
        span_path = os.path.join(tmp, "spans.json")
        with open(span_path, "w", encoding="utf-8") as handle:
            handle.write(to_trace_events(traced.spans, clock="wall"))
        print(
            f"\nspan tracing: kept {len(traced.spans)} exemplar traces "
            f"-> {span_path} (open in https://ui.perfetto.dev)"
        )

        # ... and the ``repro profile`` view of the same file: per-stage
        # totals, self time, p50/p95/p99 and the share of end-to-end
        # handle time each named stage accounts for.
        with open(span_path, encoding="utf-8") as handle:
            trees, clock = trace_trees_from_json(handle.read())
        print()
        print(profile_stages(trees, clock=clock).render(limit=6))

        # The virtual-domain export is part of the determinism contract:
        # byte-identical across executors, like the census above.
        virtual = {
            executor: to_trace_events(
                replay(
                    trace,
                    probes,
                    executor=executor,
                    queue_depth=256,
                    spans=SpanConfig.uniform(8),
                ).spans,
                clock="virtual",
            )
            for executor in ("serial", "thread", "process")
        }
        assert len(set(virtual.values())) == 1
        print(
            "\nvirtual-clock span trees byte-identical across "
            "serial/thread/process executors: True"
        )


if __name__ == "__main__":
    main()
