#!/usr/bin/env python
"""The §4.1 arms race: increasingly clever bots vs the detectors.

Runs the counter-measure ladder one rung at a time and shows which
mechanism catches (or fails to catch) each adversary:

1. a naive crawler            — no probes fetched, set algebra: robot;
2. a hidden-link follower     — walks into the trap, definitive robot;
3. a blind URL fetcher        — hits a decoy key w.p. m/(m+1), blocked;
4. a headless browser engine  — S_JS without S_MM, robot by set algebra;
5. a forged-UA engine         — the JS echo contradicts the header;
6. a mouse forger             — synthesises the event: evades (the
   paper's argument for trusted input hardware).

Run:  python examples/adversarial_arms_race.py
"""

from __future__ import annotations

from repro.agents.robots import (
    BlindFetcherBot,
    CrawlerBot,
    EngineBot,
    MouseForgerBot,
)
from repro.proxy.node import ProxyNode
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRunner

BROWSER_UA = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)"

LADDER = [
    ("naive crawler", lambda ip, rng, entry: CrawlerBot(
        ip, "SimpleSpider/0.1 (bot)", rng, entry, polite=False,
        max_requests=40,
    )),
    ("hidden-link follower", lambda ip, rng, entry: CrawlerBot(
        ip, "GreedySpider/0.2 (bot)", rng, entry, polite=False,
        follow_hidden=True, max_requests=60,
    )),
    ("blind URL fetcher", lambda ip, rng, entry: BlindFetcherBot(
        ip, BROWSER_UA, rng, entry, fetch_per_page=2, max_pages=5,
    )),
    ("headless engine", lambda ip, rng, entry: EngineBot(
        ip, BROWSER_UA, rng, entry, forge_header=False,
    )),
    ("forged-UA engine", lambda ip, rng, entry: EngineBot(
        ip, "Opera/8.51 (Windows NT 5.1; U; en)", rng, entry,
        forge_header=True,
    )),
    ("mouse forger", lambda ip, rng, entry: MouseForgerBot(
        ip, BROWSER_UA, rng, entry,
    )),
]


def main() -> None:
    rng = RngStream(2006, "arms-race")
    website = SiteGenerator(SiteConfig(n_pages=24)).generate(rng.split("site"))
    node = ProxyNode(
        node_id="battleground",
        origins={website.host: OriginServer(website)},
        rng=rng.split("node"),
    )
    entry = f"http://{website.host}{website.home_path}"
    runner = SessionRunner(node.handle)

    print(f"{'adversary':>22} | {'verdict':>7} | caught by")
    print("-" * 70)
    for index, (name, build) in enumerate(LADDER):
        ip = f"10.66.0.{index + 1}"
        agent = build(ip, rng.split(f"adv-{index}"), entry)
        runner.run(agent, start_time=index * 10_000.0)
        state = node.detection.tracker.get(ip, agent.user_agent)
        verdict = node.detection.classifier.classify_final(state)
        evaded = verdict.label.value == "human"
        marker = "  <-- EVADED" if evaded else ""
        print(f"{name:>22} | {verdict.label.value:>7} | "
              f"{verdict.reason}{marker}")

    print("-" * 70)
    print("the mouse forger wins: §4.1 proposes trusted input hardware\n"
          "(e.g. TPM-attested events) as the counter-counter-measure.")


if __name__ == "__main__":
    main()
