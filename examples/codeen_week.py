#!/usr/bin/env python
"""Replay a scaled CoDeeN week and print Table 1 + Figure 2.

This is the paper's full §3 evaluation: the calibrated population mix is
driven through a 4-node instrumented proxy network; every number printed
is measured by the real detectors.

Run:  python examples/codeen_week.py [n_sessions] [seed]
      (defaults: 1500 sessions, seed 2006; the paper had 929,922)
"""

from __future__ import annotations

import sys
import time

from repro.analysis.cdf import detection_cdfs
from repro.experiments.figure2 import Figure2Result
from repro.experiments.table1 import Table1Result, run_codeen_week_cached


def main() -> None:
    n_sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2006

    print(f"replaying {n_sessions} sessions (seed {seed})...")
    started = time.perf_counter()
    result = run_codeen_week_cached(n_sessions, seed)
    elapsed = time.perf_counter() - started
    print(f"done in {elapsed:.1f}s "
          f"({result.stats.requests} requests through "
          f"{result.config.n_nodes} proxy nodes)\n")

    print(Table1Result(result=result).render())
    print()
    print(
        Figure2Result(
            result=result, cdfs=detection_cdfs(result.latencies)
        ).render()
    )

    census = result.workload.kind_census()
    print("\nanalyzable sessions by agent family:")
    for kind, count in sorted(census.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:>18}: {count}")


if __name__ == "__main__":
    main()
