#!/usr/bin/env python
"""Serve the detection pipeline on a live socket, then replay the log.

Demonstrates the serve subsystem end to end:

1. build a deployment — synthetic site behind a 2-node proxy network —
   and mount it on a real listening socket with `DetectorServer`
   (asyncio, stdlib only), streaming a live CLF access log;
2. drive a mixed swarm of the repo's agent classes (human browsers,
   crawlers, harvesters, scanners) at the server over real TCP
   connections, agent identity carried in X-Forwarded-For;
3. replay the live log through a *fresh* deployment — no origin site,
   no instrumenter, no sockets — and show the detection census,
   set-algebra summary and per-session verdicts coming out identical.

Run:  python examples/serve_demo.py
"""

from __future__ import annotations

import asyncio
import os
import tempfile

from repro.http.uri import Url
from repro.proxy.network import ProxyNetwork
from repro.serve.server import DetectorServer, ServeConfig
from repro.serve.swarm import SwarmConfig, run_swarm
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.trace.replay import ReplayConfig, replay_trace
from repro.util.rng import RngStream


async def live_run(trace_path: str, probes_path: str):
    rng = RngStream(2006, "serve-demo")

    # 1. The deployment, mounted on an ephemeral localhost port.
    website = SiteGenerator(SiteConfig(n_pages=20)).generate(rng.split("site"))
    network = ProxyNetwork(
        origins={website.host: OriginServer(website)},
        rng=rng.split("proxies"),
        n_nodes=2,
    )
    entry = f"http://{website.host}{website.home_path}"
    server = DetectorServer(
        network,
        default_host=website.host,
        config=ServeConfig(trace_path=trace_path, probes_path=probes_path),
    )
    await server.start()
    print(f"serving {entry} on {server.address}")

    # 2. A mixed swarm of the existing agent classes, over real sockets.
    result = await run_swarm(
        SwarmConfig(port=server.port, sessions=40, seed=7, concurrency=12),
        entry,
    )
    server.annotate_ground_truth(result.identities())
    await server.close()
    print(
        f"swarm: {result.requests} requests over "
        f"{len(result.reports)} sessions ({result.errors} errors)"
    )

    sessions = server.finalize_sessions()
    census: dict[str, int] = {}
    for state in sessions:
        census[state.agent_kind] = census.get(state.agent_kind, 0) + 1
    return website.host, census, server.session_summary()


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="serve-demo-")
    trace_path = os.path.join(tmp, "live.log.gz")
    probes_path = os.path.join(tmp, "live.keys.gz")

    host, live_census, live_summary = asyncio.run(
        live_run(trace_path, probes_path)
    )
    print("\nlive census:")
    for kind, count in sorted(live_census.items()):
        print(f"  {kind:20s} {count}")

    # 3. Replay the live log through a fresh, socketless deployment.
    fresh = ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=2,
        instrument_enabled=False,
    )
    replayed = replay_trace(
        fresh,
        trace_path,
        probes=probes_path,
        config=ReplayConfig(default_host=host),
    )
    print(f"\nreplayed {replayed.requests_replayed} requests")
    assert replayed.kind_census() == live_census
    assert replayed.summary == live_summary
    print("replay census and summary match the live socket run exactly")
    print(f"\nartifacts kept in {tmp}")


if __name__ == "__main__":
    main()
