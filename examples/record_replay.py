#!/usr/bin/env python
"""Record a flash-crowd workload as an access log, then replay it.

Demonstrates the trace subsystem end to end:

1. build a deployment and drive a burst-shaped, time-interleaved
   workload through it with a recorder tapped into the network;
2. export the traffic as a gzipped Combined Log Format trace plus the
   probe journal (the server-side key table a faithful replay needs);
3. replay the log through a *fresh* deployment — no origin site, no
   instrumenter — and show the detection census coming out identical.

Run:  python examples/record_replay.py
"""

from __future__ import annotations

import os
import tempfile

from repro.proxy.network import ProxyNetwork
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.trace.arrival import BurstArrival
from repro.trace.recorder import record_workload
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.util.timeutil import DAY
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import CODEEN_WEEK


def main() -> None:
    rng = RngStream(2006, "record-replay")

    # 1. The deployment: synthetic site behind a 4-node proxy network.
    website = SiteGenerator(SiteConfig(n_pages=20)).generate(rng.split("site"))
    network = ProxyNetwork(
        origins={website.host: OriginServer(website)},
        rng=rng.split("proxies"),
        n_nodes=4,
    )
    entry = f"http://{website.host}{website.home_path}"

    # A flash crowd: half the day's sessions land in a ~30-minute spike.
    # Only the interleaved engine can express this — sessions overlap, so
    # the network sees requests in true global timestamp order.
    engine = WorkloadEngine(
        network,
        CODEEN_WEEK,
        entry,
        rng.split("workload"),
        WorkloadConfig(
            n_sessions=300,
            duration=DAY,
            mode="interleaved",
            arrival=BurstArrival(burst_share=0.5, burst_width=0.02),
            captcha_enabled=False,  # out-of-band; leaves no log footprint
        ),
    )

    # 2. Record: trace + probe journal land next to each other.
    outdir = tempfile.mkdtemp(prefix="repro-trace-")
    trace_path = os.path.join(outdir, "burst.log.gz")
    probes_path = os.path.join(outdir, "burst.keys.gz")
    result, recorder = record_workload(engine, trace_path, probes_path)
    print(f"recorded {len(recorder.records)} requests -> {trace_path}")
    print(f"journalled {len(recorder.probes)} probes -> {probes_path}")
    print(f"live census: {dict(sorted(result.kind_census().items()))}")

    # 3. Replay through a fresh, origin-less, uninstrumented network.
    replayed = TraceReplayEngine(
        ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=4,
            instrument_enabled=False,
        ),
        ReplayConfig(assume_sorted=True),
    ).replay(trace_path, probes=probes_path)

    print(f"replayed {replayed.requests_replayed} requests "
          f"({replayed.parse_stats.malformed} malformed)")
    print(f"replay census: {dict(sorted(replayed.kind_census().items()))}")

    same = (replayed.kind_census() == result.kind_census()
            and replayed.summary == result.summary)
    print(f"census + set-algebra summary identical: {same}")
    summary = replayed.summary
    print(f"human fraction bounds from the log alone: "
          f"{summary.lower_bound:.1%} .. {summary.upper_bound:.1%} "
          f"(max FPR {summary.max_false_positive_rate:.1%})")


if __name__ == "__main__":
    main()
