"""Tests for repro.workload.complaints (Figure 3 model)."""

from __future__ import annotations

import pytest

from repro.detection.session import SessionKey, SessionState
from repro.workload.complaints import (
    ComplaintConfig,
    MONTHS,
    generate_timeline,
    measure_robot_suppression,
)


def _session(label, css=False, mouse=False, js=False, n=20):
    state = SessionState(
        session_id="s", key=SessionKey("1.1.1.1", "UA"), started_at=0.0
    )
    state.true_label = label
    state.request_count = n
    if css:
        state.css_beacon_at = 1
    if mouse:
        state.mouse_event_at = 2
    if js:
        state.js_executed_at = 3
    return state


class TestSuppressionMeasurement:
    def test_all_caught(self):
        robots = [_session("robot") for _ in range(10)]
        assert measure_robot_suppression(robots) == 1.0

    def test_css_fetching_robot_escapes(self):
        escaped = [_session("robot", css=True)]
        caught = [_session("robot") for _ in range(3)]
        assert measure_robot_suppression(escaped + caught) == 0.75

    def test_humans_ignored(self):
        mixed = [_session("human", mouse=True), _session("robot")]
        assert measure_robot_suppression(mixed) == 1.0

    def test_empty_is_zero(self):
        assert measure_robot_suppression([]) == 0.0


class TestTimeline:
    def test_thirteen_months(self):
        timeline = generate_timeline()
        assert len(timeline.points) == len(MONTHS)
        assert timeline.points[0].month == "Jan"
        assert timeline.points[-1].month == "Jan'06"

    def test_peak_before_deployment(self):
        timeline = generate_timeline()
        peak = timeline.peak_month()
        peak_index = [p.month for p in timeline.points].index(peak.month)
        assert peak_index < 8, "peak must precede the Sep deployment"
        assert peak.robot >= 5

    def test_post_deployment_collapse(self):
        timeline = generate_timeline()
        pre = sum(p.robot for p in timeline.points[2:8])
        post = timeline.robot_complaints_after(8)
        assert post < pre / 4

    def test_measured_suppression_drives_decline(self):
        weak = generate_timeline(measured_suppression=0.2)
        strong = generate_timeline(measured_suppression=0.99)
        assert strong.robot_complaints_after(8) <= weak.robot_complaints_after(8)

    def test_deterministic(self):
        a = generate_timeline(ComplaintConfig(seed=1))
        b = generate_timeline(ComplaintConfig(seed=1))
        assert a.robot_series == b.robot_series

    def test_human_complaints_low_throughout(self):
        timeline = generate_timeline()
        assert max(timeline.human_series) <= 5

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ComplaintConfig(robot_suppression=1.5)
        with pytest.raises(ValueError):
            ComplaintConfig(complaints_per_abuse_unit=-1)
