"""Tests for repro.workload.session_run."""

from __future__ import annotations

from repro.agents.base import Agent, FetchAction, SessionBudget
from repro.http.message import Method, Response, html_response
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRunner


class ScriptedAgent(Agent):
    """Yields a fixed list of fetches; records what came back."""

    kind = "scripted"
    true_label = "robot"

    def __init__(self, actions, **kwargs):
        super().__init__(
            kwargs.pop("client_ip", "10.0.0.1"),
            kwargs.pop("user_agent", "UA"),
            kwargs.pop("rng", RngStream(1)),
            kwargs.pop("entry_url", "http://h.com/index.html"),
        )
        self._actions = actions
        self.responses = []

    def browse(self):
        for action in self._actions:
            result = yield action
            self.responses.append(result.response.status)


def _echo_handler(request):
    return html_response(f"<html><body>{request.url.path}</body></html>")


class TestRunner:
    def test_runs_all_actions(self):
        agent = ScriptedAgent(
            [FetchAction(f"http://h.com/p{i}.html") for i in range(5)]
        )
        record = SessionRunner(_echo_handler).run(agent)
        assert record.requests == 5
        assert agent.responses == [200] * 5

    def test_clock_advances_by_think_time(self):
        agent = ScriptedAgent(
            [
                FetchAction("http://h.com/a.html", think_time=2.0),
                FetchAction("http://h.com/b.html", think_time=3.0),
            ]
        )
        record = SessionRunner(_echo_handler).run(agent, start_time=100.0)
        assert record.started_at == 100.0
        assert record.ended_at == 105.0
        assert record.duration == 5.0

    def test_max_requests_budget(self):
        agent = ScriptedAgent(
            [FetchAction("http://h.com/x.html") for _ in range(100)]
        )
        budget = SessionBudget(max_requests=10)
        record = SessionRunner(_echo_handler, budget=budget).run(agent)
        assert record.requests == 10

    def test_max_duration_budget(self):
        agent = ScriptedAgent(
            [FetchAction("http://h.com/x.html", think_time=10.0)] * 100
        )
        budget = SessionBudget(max_duration=35.0)
        record = SessionRunner(_echo_handler, budget=budget).run(agent)
        assert record.requests == 4

    def test_bytes_counted(self):
        agent = ScriptedAgent([FetchAction("http://h.com/a.html")])
        record = SessionRunner(_echo_handler).run(agent)
        assert record.bytes_received > 0

    def test_malformed_url_answered_locally(self):
        agent = ScriptedAgent([FetchAction("not a url at all")])
        record = SessionRunner(_echo_handler).run(agent)
        assert record.requests == 1
        assert agent.responses == [400]

    def test_referer_and_method_propagate(self):
        seen = {}

        def handler(request):
            seen["referer"] = request.referer
            seen["method"] = request.method
            return Response(status=200)

        agent = ScriptedAgent(
            [
                FetchAction(
                    "http://h.com/a.html",
                    method=Method.HEAD,
                    referer="http://r.example/p",
                )
            ]
        )
        SessionRunner(handler).run(agent)
        assert seen["referer"] == "http://r.example/p"
        assert seen["method"] is Method.HEAD

    def test_feature_collection_produces_example(self):
        agent = ScriptedAgent(
            [FetchAction(f"http://h.com/p{i}.html") for i in range(25)]
        )
        runner = SessionRunner(_echo_handler, collect_features=True)
        record = runner.run(agent)
        assert record.example is not None
        assert 20 in record.example.snapshots
        assert record.example.final is not None
        assert record.example.request_count == 25
        assert record.example.label == -1  # scripted agent is a robot

    def test_no_feature_collection_by_default(self):
        agent = ScriptedAgent([FetchAction("http://h.com/a.html")])
        record = SessionRunner(_echo_handler).run(agent)
        assert record.example is None

    def test_empty_agent(self):
        agent = ScriptedAgent([])
        record = SessionRunner(_echo_handler).run(agent)
        assert record.requests == 0
