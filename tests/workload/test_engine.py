"""Tests for repro.workload.engine."""

from __future__ import annotations

import pytest

from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE


def _run(make_network, entry_url, n_sessions=40, seed=21, **config_kwargs):
    network = make_network(n_nodes=2, seed=seed)
    engine = WorkloadEngine(
        network,
        SMOKE,
        entry_url,
        RngStream(seed, "wl"),
        WorkloadConfig(n_sessions=n_sessions, **config_kwargs),
    )
    return engine.run()


class TestEngine:
    def test_produces_sessions_and_summary(self, make_network, entry_url):
        result = _run(make_network, entry_url)
        assert len(result.records) == 40
        assert result.summary.total_sessions == result.analyzable_count
        assert result.analyzable_count > 0

    def test_ground_truth_attached(self, make_network, entry_url):
        result = _run(make_network, entry_url)
        labels = {s.true_label for s in result.sessions}
        assert labels <= {"human", "robot"}
        assert "human" in labels and "robot" in labels

    def test_kind_census(self, make_network, entry_url):
        result = _run(make_network, entry_url)
        census = result.kind_census()
        assert sum(census.values()) == result.analyzable_count
        assert set(census) <= {spec.name for spec in SMOKE.specs}

    def test_sessions_of_kind(self, make_network, entry_url):
        result = _run(make_network, entry_url)
        humans = result.sessions_of_kind("human_js")
        assert all(s.agent_kind == "human_js" for s in humans)

    def test_captcha_funnel_runs(self, make_network, entry_url):
        result = _run(make_network, entry_url, n_sessions=60)
        assert result.captcha.stats.offered == 60

    def test_captcha_can_be_disabled(self, make_network, entry_url):
        result = _run(
            make_network, entry_url, captcha_enabled=False
        )
        assert result.captcha.stats.offered == 0
        assert result.summary.captcha_passes == 0

    def test_feature_collection(self, make_network, entry_url):
        result = _run(
            make_network, entry_url, n_sessions=20, collect_features=True
        )
        assert len(result.dataset) == 20
        humans, robots = result.dataset.class_balance()
        assert humans + robots == 20

    def test_deterministic(self, make_network, entry_url):
        a = _run(make_network, entry_url, seed=5)
        b = _run(make_network, entry_url, seed=5)
        assert a.summary == b.summary
        assert a.stats.requests == b.stats.requests

    def test_different_seeds_differ(self, make_network, entry_url):
        a = _run(make_network, entry_url, seed=5)
        b = _run(make_network, entry_url, seed=6)
        assert a.stats.requests != b.stats.requests

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_sessions=0)
        with pytest.raises(ValueError):
            WorkloadConfig(duration=0.0)
