"""``mode="pipelined"``: ingress-driven workloads match the interleaved
engine, on every executor and queue depth."""

from __future__ import annotations

import dataclasses

import pytest

from repro.detection.online import OnlineClassifier
from repro.proxy.network import ProxyNetwork
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

N_SESSIONS = 50
SEED = 37


def _run(make_network, entry_url, mode, **config_kwargs):
    network = make_network(n_nodes=3, seed=SEED)
    engine = WorkloadEngine(
        network,
        SMOKE,
        entry_url,
        RngStream(SEED, "wl"),
        WorkloadConfig(
            n_sessions=N_SESSIONS, mode=mode, **config_kwargs
        ),
    )
    return engine.run()


def _verdicts(result):
    classifier = OnlineClassifier()
    return {
        (s.key.client_ip, s.key.user_agent, s.started_at): (
            classifier.classify_final(s).label,
            s.request_count,
            s.true_label,
        )
        for s in result.sessions
    }


class TestPipelinedMode:
    @pytest.fixture(scope="class")
    def interleaved(self, small_origin, small_site):
        # Built directly from the session-scoped site fixtures so the
        # reference run is computed once for the whole matrix.
        def make(n_nodes=3, seed=SEED, **kwargs):
            return ProxyNetwork(
                origins={small_site.host: small_origin},
                rng=RngStream(seed, "net"),
                n_nodes=n_nodes,
                **kwargs,
            )

        entry = f"http://{small_site.host}{small_site.home_path}"
        return _run(make, entry, "interleaved")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("depth", [1, None])
    def test_matches_interleaved(
        self, make_network, entry_url, interleaved, executor, depth
    ):
        result = _run(
            make_network,
            entry_url,
            "pipelined",
            executor=executor,
            queue_depth=depth,
        )
        assert result.summary == interleaved.summary
        assert result.kind_census() == interleaved.kind_census()
        assert _verdicts(result) == _verdicts(interleaved)
        assert result.captcha.stats == interleaved.captcha.stats
        assert len(result.records) == len(interleaved.records)
        # Byte-identical node counters; only the admission counters are
        # new (one queued entry per admitted session).
        assert (
            dataclasses.replace(result.stats, queued=0, shed=0)
            == interleaved.stats
        )
        assert result.stats.queued == N_SESSIONS
        assert result.stats.shed == 0

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_metrics_match_interleaved_engine(
        self, make_network, entry_url, interleaved, executor
    ):
        # Every deterministic point the interleaved engine produces —
        # node counters, cache/limiter totals, the CAPTCHA funnel —
        # must come back with the same value from pipelined lanes.
        # Sweep-schedule bookkeeping is the one exception: interleaved
        # housekeeping runs on the global clock, lanes sweep on their
        # own event clocks, so *when* an expired entry is noticed (not
        # whether traffic hits or misses) differs by mode.
        sweep_dependent = {
            "repro_cache_expired_total",
            "repro_ratelimit_evicted_total",
        }
        result = _run(
            make_network, entry_url, "pipelined", executor=executor
        )
        assert result.metrics.points  # the snapshot actually shipped
        pipelined = {
            p.key: p for p in result.metrics.deterministic().points
        }
        for point in interleaved.metrics.deterministic().points:
            if point.name in sweep_dependent:
                assert point.key in pipelined
                continue
            assert pipelined[point.key] == point
        funnel = result.metrics.get("repro_captcha_offered_total")
        assert funnel is not None
        assert funnel.value == interleaved.captcha.stats.offered

    def test_records_keep_submission_order(
        self, make_network, entry_url, interleaved
    ):
        result = _run(
            make_network, entry_url, "pipelined", executor="process"
        )
        assert [
            (r.client_ip, r.user_agent) for r in result.records
        ] == [
            (r.client_ip, r.user_agent) for r in interleaved.records
        ]

    def test_feature_collection_survives_process_lanes(
        self, make_network, entry_url
    ):
        reference = _run(
            make_network, entry_url, "interleaved", collect_features=True,
        )
        result = _run(
            make_network,
            entry_url,
            "pipelined",
            executor="process",
            collect_features=True,
        )
        assert len(result.dataset.examples) == len(
            reference.dataset.examples
        )
        by_id = {
            example.session_id: example
            for example in reference.dataset.examples
        }
        for example in result.dataset.examples:
            reference_example = by_id[example.session_id]
            assert example.label == reference_example.label
            assert (example.final == reference_example.final).all()

    def test_sharded_detection_composes(self, make_network, entry_url):
        baseline = _run(make_network, entry_url, "interleaved")
        result = _run(
            make_network,
            entry_url,
            "pipelined",
            executor="thread",
            shards=4,
        )
        assert result.summary == baseline.summary
        assert _verdicts(result) == _verdicts(baseline)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(executor="fiber")
        with pytest.raises(ValueError):
            WorkloadConfig(queue_depth=0)


class TestPipelinedRecording:
    """Lane traffic bypasses ProxyNetwork.handle, so the ingress must
    fire the network taps itself — a silent 0-request trace was the
    failure mode this pins down."""

    def _record(self, make_network, entry_url, mode, **config_kwargs):
        from repro.trace.recorder import TraceRecorder

        network = make_network(n_nodes=3, seed=SEED)
        recorder = TraceRecorder()
        recorder.attach(network)
        result = WorkloadEngine(
            network,
            SMOKE,
            entry_url,
            RngStream(SEED, "wl"),
            WorkloadConfig(
                n_sessions=20,
                mode=mode,
                captcha_enabled=False,
                **config_kwargs,
            ),
        ).run()
        recorder.detach(network)
        return result, recorder

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_taps_fire_for_lane_traffic(
        self, make_network, entry_url, executor
    ):
        reference, _ = self._record(
            make_network, entry_url, "interleaved"
        )
        result, recorder = self._record(
            make_network, entry_url, "pipelined", executor=executor
        )
        assert len(recorder.records) == result.stats.requests
        assert len(recorder.records) == reference.stats.requests
        assert recorder.probes  # registry listeners fired too
        census = {}
        for record in recorder.sorted_records():
            key = (record.client_ip, record.user_agent)
            census[key] = census.get(key, 0) + 1
        assert sum(census.values()) == reference.stats.requests

    def test_process_lanes_refuse_observers(self, make_network, entry_url):
        from repro.trace.recorder import TraceRecorder

        network = make_network(n_nodes=2, seed=SEED)
        recorder = TraceRecorder()
        recorder.attach(network)
        engine = WorkloadEngine(
            network,
            SMOKE,
            entry_url,
            RngStream(SEED, "wl"),
            WorkloadConfig(
                n_sessions=5, mode="pipelined", executor="process"
            ),
        )
        with pytest.raises(ValueError, match="process-executor lanes"):
            engine.run()
