"""Shard-count invariance: sharding is an architecture knob, not a
behaviour knob.

The same workload must produce identical set-algebra summaries, censuses,
network stats and per-session verdicts whether detection state lives in
one tracker or is hash-partitioned across 2 or 8 shards — in the
sequential driver, the interleaved scheduler, and trace replay.
"""

from __future__ import annotations

import pytest

from repro.detection.online import OnlineClassifier
from repro.proxy.network import ProxyNetwork
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

N_SESSIONS = 60
SEED = 33


def _run(make_network, entry_url, shards, mode, **config_kwargs):
    network = make_network(n_nodes=2, seed=SEED)
    engine = WorkloadEngine(
        network,
        SMOKE,
        entry_url,
        RngStream(SEED, "wl"),
        WorkloadConfig(
            n_sessions=N_SESSIONS,
            mode=mode,
            shards=shards,
            **config_kwargs,
        ),
    )
    return engine.run()


def _verdicts(result):
    classifier = OnlineClassifier()
    return {
        (s.key.client_ip, s.key.user_agent, s.started_at): (
            classifier.classify_final(s).label,
            s.request_count,
            s.true_label,
        )
        for s in result.sessions
    }


def _cache_neutral(stats):
    """Stats projection that is invariant to the cache partition layout.

    The proxy cache is partitioned by client IP, so the same static URL
    may be fetched from the origin once *per partition* instead of once
    per node — ``cache_hits`` and ``origin_requests`` are
    partition-layout-scoped by design.  Responses served from cache are
    byte-identical to forwarded ones, so every other stat (and all
    detection results) must still match exactly.
    """
    from dataclasses import fields

    return {
        f.name: getattr(stats, f.name)
        for f in fields(stats)
        if f.name not in ("cache_hits", "origin_requests")
    }


def _latency_multiset(result):
    missing = -1  # None (never fired) sorts below any request index
    return sorted(
        (
            missing if l.css_at is None else l.css_at,
            missing if l.beacon_js_at is None else l.beacon_js_at,
            missing if l.mouse_at is None else l.mouse_at,
        )
        for l in result.latencies
    )


class TestWorkloadShardInvariance:
    @pytest.mark.parametrize("mode", ["sequential", "interleaved"])
    def test_shard_counts_agree(self, make_network, entry_url, mode):
        baseline = _run(make_network, entry_url, shards=0, mode=mode)
        reference_summary = baseline.summary
        for shards in (1, 2, 8):
            result = _run(make_network, entry_url, shards=shards, mode=mode)
            assert result.summary == reference_summary
            assert result.kind_census() == baseline.kind_census()
            assert _cache_neutral(result.stats) == _cache_neutral(
                baseline.stats
            )
            assert _verdicts(result) == _verdicts(baseline)
            assert _latency_multiset(result) == _latency_multiset(baseline)

    def test_executor_path_agrees(self, make_network, entry_url):
        baseline = _run(
            make_network, entry_url, shards=0, mode="sequential"
        )
        threaded = _run(
            make_network,
            entry_url,
            shards=4,
            mode="sequential",
            shard_workers=2,
        )
        assert threaded.summary == baseline.summary
        assert _verdicts(threaded) == _verdicts(baseline)

    def test_shards_config_shards_the_network(self, make_network, entry_url):
        from repro.detection.sharded import ShardedDetectionService

        network = make_network(n_nodes=2, seed=SEED)
        engine = WorkloadEngine(
            network,
            SMOKE,
            entry_url,
            RngStream(SEED, "wl"),
            WorkloadConfig(n_sessions=10, shards=4),
        )
        engine.run()
        for node in network.nodes:
            assert isinstance(node.detection, ShardedDetectionService)
            assert node.detection.n_shards == 4

    def test_shard_workers_applied_to_presharded_network(
        self, make_network
    ):
        network = make_network(n_nodes=1, seed=SEED, detection_shards=4)
        node = network.nodes[0]
        assert node.detection.max_workers is None
        # Same shard count but a newly requested executor width must not
        # be silently discarded by the no-op fast path.
        network.shard_detection(4, max_workers=2)
        assert node.detection.max_workers == 2
        unchanged = node.detection
        network.shard_detection(4, max_workers=2)
        assert node.detection is unchanged

    def test_invalid_shard_config(self):
        with pytest.raises(ValueError):
            WorkloadConfig(shards=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(shard_workers=0)


class TestReplayShardInvariance:
    @pytest.fixture(scope="class")
    def recorded(self, small_origin, small_site):
        network = ProxyNetwork(
            origins={small_site.host: small_origin},
            rng=RngStream(SEED, "net"),
            n_nodes=2,
        )
        recorder = TraceRecorder()
        recorder.attach(network)
        result = WorkloadEngine(
            network,
            SMOKE,
            f"http://{small_site.host}{small_site.home_path}",
            RngStream(SEED, "wl"),
            WorkloadConfig(n_sessions=N_SESSIONS, captcha_enabled=False),
        ).run()
        recorder.detach(network)
        recorder.annotate_ground_truth(result.records)
        return recorder.sorted_records(), recorder.sorted_probes()

    def _replay(self, records, probes, shards, shard_workers=None):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=2,
            instrument_enabled=False,
        )
        engine = TraceReplayEngine(
            network,
            ReplayConfig(
                assume_sorted=True,
                shards=shards,
                shard_workers=shard_workers,
            ),
        )
        return engine.replay(list(records), probes=list(probes))

    def test_replay_shard_counts_agree(self, recorded):
        records, probes = recorded
        baseline = self._replay(records, probes, shards=0)
        assert baseline.requests_replayed == len(records)
        for shards in (1, 2, 8):
            result = self._replay(records, probes, shards=shards)
            assert result.summary == baseline.summary
            assert result.kind_census() == baseline.kind_census()
            assert result.requests_replayed == baseline.requests_replayed
            assert _latency_multiset(result) == _latency_multiset(baseline)

    def test_replay_executor_path_agrees(self, recorded):
        records, probes = recorded
        baseline = self._replay(records, probes, shards=0)
        threaded = self._replay(
            records, probes, shards=4, shard_workers=2
        )
        assert threaded.summary == baseline.summary
        assert threaded.kind_census() == baseline.kind_census()

    def test_invalid_replay_shard_config(self):
        with pytest.raises(ValueError):
            ReplayConfig(shards=-1)
        with pytest.raises(ValueError):
            ReplayConfig(shard_workers=0)
