"""Tests for repro.http.content."""

from __future__ import annotations

import pytest

from repro.http.content import (
    ContentKind,
    classify_content_type,
    classify_path,
    content_type_for_path,
)
from repro.http.uri import Url


def _u(path_and_query: str) -> Url:
    return Url.parse(f"http://e.com{path_and_query}")


class TestClassifyPath:
    @pytest.mark.parametrize(
        "path,kind",
        [
            ("/a.html", ContentKind.HTML),
            ("/a.htm", ContentKind.HTML),
            ("/style.css", ContentKind.CSS),
            ("/s.js", ContentKind.JAVASCRIPT),
            ("/p.jpg", ContentKind.IMAGE),
            ("/p.png", ContentKind.IMAGE),
            ("/s.wav", ContentKind.AUDIO),
            ("/favicon.ico", ContentKind.FAVICON),
            ("/robots.txt", ContentKind.ROBOTS_TXT),
            ("/cgi-bin/x.cgi", ContentKind.CGI),
            ("/cgi-bin/anything", ContentKind.CGI),
            ("/dir/", ContentKind.HTML),
            ("/readme", ContentKind.HTML),
            ("/archive.zip", ContentKind.OTHER),
        ],
    )
    def test_paths(self, path, kind):
        assert classify_path(_u(path)) is kind

    def test_html_with_query_is_cgi(self):
        assert classify_path(_u("/page.php?id=1")) is ContentKind.CGI

    def test_extensionless_with_query_is_cgi(self):
        assert classify_path(_u("/search?q=x")) is ContentKind.CGI

    def test_image_with_query_stays_image(self):
        assert classify_path(_u("/p.jpg?v=2")) is ContentKind.IMAGE


class TestClassifyContentType:
    @pytest.mark.parametrize(
        "ctype,kind",
        [
            ("text/html", ContentKind.HTML),
            ("text/html; charset=utf-8", ContentKind.HTML),
            ("text/css", ContentKind.CSS),
            ("application/javascript", ContentKind.JAVASCRIPT),
            ("image/jpeg", ContentKind.IMAGE),
            ("image/x-icon", ContentKind.IMAGE),
            ("audio/wav", ContentKind.AUDIO),
            ("application/pdf", ContentKind.OTHER),
            (None, ContentKind.OTHER),
        ],
    )
    def test_types(self, ctype, kind):
        assert classify_content_type(ctype) is kind


class TestKindProperties:
    def test_embedded_objects(self):
        assert ContentKind.CSS.is_embedded_object
        assert ContentKind.IMAGE.is_embedded_object
        assert not ContentKind.HTML.is_embedded_object

    def test_presentation(self):
        assert ContentKind.CSS.is_presentation
        assert not ContentKind.JAVASCRIPT.is_presentation


class TestContentTypeForPath:
    def test_html(self):
        assert content_type_for_path(_u("/a.html")) == "text/html"

    def test_png_specific(self):
        assert content_type_for_path(_u("/p.png")) == "image/png"

    def test_favicon(self):
        assert content_type_for_path(_u("/favicon.ico")) == "image/x-icon"
