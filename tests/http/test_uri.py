"""Tests for repro.http.uri."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.http.uri import Url, resolve_url


class TestParse:
    def test_basic(self):
        url = Url.parse("http://www.example.com/a/b.html?q=1")
        assert url.scheme == "http"
        assert url.host == "www.example.com"
        assert url.path == "/a/b.html"
        assert url.query == "q=1"

    def test_defaults(self):
        url = Url.parse("http://example.com")
        assert url.path == "/"
        assert url.query == ""
        assert url.port is None

    def test_port(self):
        url = Url.parse("http://example.com:8080/x")
        assert url.port == 8080
        assert url.origin == "http://example.com:8080"

    def test_port_range_bounds(self):
        assert Url.parse("http://e.com:1/").port == 1
        assert Url.parse("http://e.com:65535/").port == 65535

    @pytest.mark.parametrize("text", ["http://e.com:0/", "http://e.com:99999/"])
    def test_port_out_of_range(self, text):
        with pytest.raises(ValueError, match="port out of range"):
            Url.parse(text)

    def test_port_out_of_range_constructor(self):
        with pytest.raises(ValueError, match="port out of range"):
            Url("http", "e.com", "/", "", 70000)

    def test_host_lowered(self):
        assert Url.parse("http://WWW.Example.COM/").host == "www.example.com"

    def test_fragment_dropped(self):
        assert Url.parse("http://e.com/a#frag").path == "/a"

    def test_dot_segments_normalised(self):
        assert Url.parse("http://e.com/a/../b/./c").path == "/b/c"

    @pytest.mark.parametrize(
        "text", ["", "not a url", "ftp://x/y", "http//missing.colon/"]
    )
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            Url.parse(text)

    def test_str_roundtrip(self):
        text = "http://example.com/a/b.html?q=1"
        assert str(Url.parse(text)) == text


class TestAccessors:
    def test_filename_and_extension(self):
        url = Url.parse("http://e.com/dir/page.HTML")
        assert url.filename == "page.HTML"
        assert url.extension == "html"

    def test_directory_url_normalises_trailing_slash(self):
        # Trailing slashes are stripped during normalisation, so the last
        # segment becomes the filename.
        assert Url.parse("http://e.com/dir/").filename == "dir"
        assert Url.parse("http://e.com/").filename == ""

    def test_no_extension(self):
        assert Url.parse("http://e.com/readme").extension == ""

    def test_sibling(self):
        url = Url.parse("http://e.com/a/b/page.html")
        assert str(url.sibling("x.js")) == "http://e.com/a/b/x.js"

    def test_with_path(self):
        url = Url.parse("http://e.com/a")
        assert str(url.with_path("/z", "k=v")) == "http://e.com/z?k=v"

    def test_path_and_query(self):
        assert Url.parse("http://e.com/a?b=c").path_and_query == "/a?b=c"


class TestResolve:
    BASE = Url.parse("http://www.example.com/sec/page.html")

    def test_absolute(self):
        out = resolve_url(self.BASE, "http://other.com/x")
        assert out.host == "other.com"

    def test_host_relative(self):
        assert str(resolve_url(self.BASE, "/img/a.jpg")) == (
            "http://www.example.com/img/a.jpg"
        )

    def test_document_relative(self):
        assert str(resolve_url(self.BASE, "img/a.jpg")) == (
            "http://www.example.com/sec/img/a.jpg"
        )

    def test_parent_relative(self):
        assert str(resolve_url(self.BASE, "../top.html")) == (
            "http://www.example.com/top.html"
        )

    def test_query_kept(self):
        out = resolve_url(self.BASE, "/cgi-bin/s.cgi?q=1")
        assert out.query == "q=1"

    def test_fragment_only_returns_base(self):
        assert resolve_url(self.BASE, "#top") == self.BASE

    def test_empty_returns_base(self):
        assert resolve_url(self.BASE, "") == self.BASE

    def test_protocol_relative(self):
        out = resolve_url(self.BASE, "//cdn.example.com/x.js")
        assert out.host == "cdn.example.com"
        assert out.scheme == "http"

    def test_query_embedded_absolute_url_stays_relative(self):
        # "://" inside the query must not reroute the reference to
        # Url.parse: the link targets *this* host's redirect endpoint.
        out = resolve_url(self.BASE, "/redirect?to=http://evil.example/")
        assert out.host == "www.example.com"
        assert out.path == "/redirect"
        assert out.query == "to=http://evil.example/"

    def test_relative_query_embedded_absolute_url(self):
        out = resolve_url(self.BASE, "go.cgi?u=https://evil.example/x")
        assert out.host == "www.example.com"
        assert out.path == "/sec/go.cgi"
        assert out.query == "u=https://evil.example/x"

    def test_fragment_embedded_absolute_url(self):
        # The fragment is dropped before resolution, so an absolute URL
        # hiding after "#" must not leak into the result.
        out = resolve_url(self.BASE, "/doc#see http://evil.example/")
        assert out.host == "www.example.com"
        assert out.path == "/doc"
        assert out.query == ""


_path_segments = st.lists(
    st.text(alphabet="abcdefg0123456789", min_size=1, max_size=6),
    min_size=0,
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(segments=_path_segments)
def test_property_parse_str_stable(segments):
    text = "http://host.example/" + "/".join(segments)
    once = Url.parse(text)
    twice = Url.parse(str(once))
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(segments=_path_segments, ref=_path_segments)
def test_property_resolution_stays_absolute(segments, ref):
    base = Url.parse("http://host.example/" + "/".join(segments))
    out = resolve_url(base, "/".join(ref))
    assert out.path.startswith("/")
    assert out.host == "host.example"
