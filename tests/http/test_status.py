"""Tests for repro.http.status."""

from __future__ import annotations

import pytest

from repro.http.status import (
    StatusClass,
    describe_status,
    is_client_error,
    is_redirect,
    is_server_error,
    is_success,
    status_class,
)


class TestStatusClass:
    @pytest.mark.parametrize(
        "code,expected",
        [
            (100, StatusClass.INFORMATIONAL),
            (200, StatusClass.SUCCESS),
            (204, StatusClass.SUCCESS),
            (302, StatusClass.REDIRECT),
            (404, StatusClass.CLIENT_ERROR),
            (503, StatusClass.SERVER_ERROR),
        ],
    )
    def test_mapping(self, code, expected):
        assert status_class(code) is expected

    @pytest.mark.parametrize("code", [0, 99, 600, -1])
    def test_out_of_range(self, code):
        with pytest.raises(ValueError):
            status_class(code)


class TestPredicates:
    def test_success(self):
        assert is_success(200)
        assert not is_success(302)

    def test_redirect(self):
        assert is_redirect(301)
        assert not is_redirect(200)

    def test_client_error(self):
        assert is_client_error(404)
        assert not is_client_error(500)

    def test_server_error(self):
        assert is_server_error(502)
        assert not is_server_error(404)


class TestDescribe:
    def test_known(self):
        assert describe_status(404) == "404 Not Found"

    def test_unknown_uses_class(self):
        assert describe_status(299) == "299 2XX"
