"""Tests for repro.http.message."""

from __future__ import annotations

import pytest

from repro.http.content import ContentKind
from repro.http.headers import Headers
from repro.http.message import (
    Method,
    Request,
    Response,
    error_response,
    html_response,
)
from repro.http.status import StatusClass
from repro.http.uri import Url


def _request(path: str = "/a.html", **kwargs) -> Request:
    return Request(
        method=kwargs.pop("method", Method.GET),
        url=Url.parse(f"http://e.com{path}"),
        client_ip=kwargs.pop("client_ip", "10.0.0.1"),
        headers=kwargs.pop("headers", Headers([("User-Agent", "UA")])),
        timestamp=kwargs.pop("timestamp", 1.0),
    )


class TestRequest:
    def test_fields(self):
        req = _request()
        assert req.user_agent == "UA"
        assert req.referer is None
        assert req.path_kind is ContentKind.HTML

    def test_referer(self):
        req = _request(headers=Headers([("Referer", "http://x/")]))
        assert req.referer == "http://x/"
        assert req.user_agent == ""

    def test_empty_ip_rejected(self):
        with pytest.raises(ValueError):
            _request(client_ip="")

    def test_describe(self):
        assert _request().describe() == "GET http://e.com/a.html"


class TestResponse:
    def test_status_class(self):
        assert Response(status=302).status_class is StatusClass.REDIRECT

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            Response(status=999)

    def test_content_kind(self):
        resp = Response(
            status=200,
            headers=Headers([("Content-Type", "image/gif")]),
            body=b"xx",
        )
        assert resp.content_kind is ContentKind.IMAGE
        assert resp.size == 2

    def test_text_decoding(self):
        resp = Response(status=200, body="héllo".encode("utf-8"))
        assert resp.text == "héllo"

    def test_describe(self):
        resp = html_response("<html></html>")
        assert "200 OK" in resp.describe()
        assert "text/html" in resp.describe()


class TestConstructors:
    def test_html_response(self):
        resp = html_response("<p>x</p>")
        assert resp.status == 200
        assert resp.content_kind is ContentKind.HTML
        assert not resp.headers.is_uncacheable()

    def test_html_response_uncacheable(self):
        resp = html_response("<p>x</p>", uncacheable=True)
        assert resp.headers.is_uncacheable()

    def test_error_response(self):
        resp = error_response(404)
        assert resp.status == 404
        assert b"Not Found" in resp.body

    def test_error_response_escapes_message(self):
        # The message may echo request-derived text; a live server must
        # never reflect it as markup.
        resp = error_response(400, "bad url <script>alert(1)</script>")
        assert b"<script>" not in resp.body
        assert b"&lt;script&gt;alert(1)&lt;/script&gt;" in resp.body

    def test_error_response_escapes_ampersand(self):
        resp = error_response(404, "no route to /a?b=1&c=2")
        assert b"b=1&amp;c=2" in resp.body
