"""Tests for repro.http.useragent."""

from __future__ import annotations

from repro.http.useragent import (
    BrowserFamily,
    known_browser_agents,
    known_robot_agents,
    parse_user_agent,
)


class TestCatalogue:
    def test_browser_catalogue_nonempty(self):
        agents = known_browser_agents()
        assert len(agents) >= 8
        assert all(ua.family.is_standard_browser for ua in agents)

    def test_family_filter(self):
        ie_agents = known_browser_agents(BrowserFamily.IE)
        assert ie_agents
        assert all(ua.family is BrowserFamily.IE for ua in ie_agents)

    def test_robot_catalogue(self):
        robots = known_robot_agents()
        assert len(robots) >= 5
        assert all(ua.family is BrowserFamily.ROBOT for ua in robots)

    def test_catalogue_strings_self_parse(self):
        # Every catalogued browser string parses back to its own family
        # (the UA-echo mismatch detector depends on parseability).
        for ua in known_browser_agents():
            parsed = parse_user_agent(ua.string)
            assert parsed.family.is_standard_browser


class TestParse:
    def test_ie(self):
        parsed = parse_user_agent(
            "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)"
        )
        assert parsed.family is BrowserFamily.IE

    def test_firefox(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (X11; U; Linux) Gecko/2006 Firefox/1.5"
        )
        assert parsed.family is BrowserFamily.FIREFOX

    def test_opera_over_msie(self):
        parsed = parse_user_agent(
            "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1) Opera 8.50"
        )
        assert parsed.family is BrowserFamily.OPERA

    def test_robot_markers_dominate(self):
        parsed = parse_user_agent("Mozilla/5.0 (compatible; Googlebot/2.1)")
        assert parsed.family is BrowserFamily.ROBOT

    def test_wget(self):
        assert parse_user_agent("Wget/1.10.2").family is BrowserFamily.ROBOT

    def test_empty(self):
        assert parse_user_agent("").family is BrowserFamily.UNKNOWN
        assert parse_user_agent(None).family is BrowserFamily.UNKNOWN

    def test_unknown(self):
        assert parse_user_agent("CustomClient/1.0").family is (
            BrowserFamily.UNKNOWN
        )
