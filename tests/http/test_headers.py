"""Tests for repro.http.headers."""

from __future__ import annotations

import pytest

from repro.http.headers import Headers


class TestBasics:
    def test_get_case_insensitive(self):
        h = Headers([("User-Agent", "x")])
        assert h.get("user-agent") == "x"
        assert h.get("USER-AGENT") == "x"

    def test_get_default(self):
        assert Headers().get("X", "d") == "d"

    def test_add_preserves_multiple(self):
        h = Headers()
        h.add("Via", "a")
        h.add("Via", "b")
        assert h.get_all("via") == ["a", "b"]
        assert h.get("Via") == "a"

    def test_set_replaces(self):
        h = Headers([("X", "1"), ("X", "2")])
        h.set("x", "3")
        assert h.get_all("X") == ["3"]

    def test_remove_absent_ok(self):
        h = Headers()
        h.remove("nothing")
        assert len(h) == 0

    def test_contains(self):
        h = Headers([("A", "1")])
        assert "a" in h
        assert "b" not in h

    def test_iteration_order(self):
        h = Headers([("A", "1"), ("B", "2")])
        assert list(h) == [("A", "1"), ("B", "2")]

    def test_copy_independent(self):
        h = Headers([("A", "1")])
        c = h.copy()
        c.set("A", "2")
        assert h.get("A") == "1"

    def test_equality_case_insensitive(self):
        assert Headers([("a", "1")]) == Headers([("A", "1")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Headers().add("", "x")


class TestConvenience:
    def test_user_agent(self):
        assert Headers([("User-Agent", "UA")]).user_agent == "UA"
        assert Headers().user_agent is None

    def test_referer(self):
        assert Headers([("Referer", "r")]).referer == "r"

    def test_content_type(self):
        assert Headers([("Content-Type", "text/html")]).content_type == (
            "text/html"
        )

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("no-cache, no-store", True),
            ("no-store", True),
            ("NO-CACHE", True),
            ("max-age=60", False),
            (None, False),
        ],
    )
    def test_is_uncacheable(self, value, expected):
        h = Headers()
        if value is not None:
            h.set("Cache-Control", value)
        assert h.is_uncacheable() is expected
