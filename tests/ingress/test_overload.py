"""Overload and fault scenarios: the adaptive-control acceptance suite.

Pins the three tentpole behaviours of ``repro.overload``:

* **delay-budget admission** — under sustained overload the ADAPTIVE
  policy keeps the predicted queue delay near the configured budget,
  while binary SHED at the same queue depth lets it grow to the full
  queue's drain time;
* **per-IP fairness** — a flooding client absorbs the drops; a flash
  crowd of distinct legitimate clients degrades gracefully;
* **graduated response ladder** — checkpoint verdicts drive a
  throttle -> CAPTCHA -> block escalation whose exported state is
  byte-identical across ``{serial, thread, process}`` executors and
  lane layouts.

Plus the admission conservation property (admitted + shed always
balances arrivals, on every executor x policy combination) and the
prediction-gauge freshness regression.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.agents.population import AgentSpec, PopulationMix
from repro.agents.robots import DdosZombie
from repro.ingress.batcher import MicroBatchConfig
from repro.ingress.pipeline import (
    IngressConfig,
    IngressPipeline,
    replay_workers,
)
from repro.ingress.queues import ShedPolicy
from repro.ml.adaboost import AdaBoostModel
from repro.ml.stump import DecisionStump
from repro.overload.admission import AdaptiveConfig, DelayBudgetController
from repro.overload.ladder import LadderConfig
from repro.proxy.network import ProxyNetwork
from repro.proxy.node import NodeStats
from repro.trace.arrival import BurstArrival
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

N_SESSIONS = 60
SEED = 2006
SHARDS = 4

#: The SMOKE population plus a flash crowd of DDoS zombies (§1's abuse
#: item 1): forged browser UAs, no referrers, rapid-fire GETs.
DDOS_BURST = PopulationMix(
    "ddos_burst",
    [
        *SMOKE.specs,
        AgentSpec(
            "ddos_zombie",
            4.0,
            lambda client_ip, user_agent, rng, entry_url: DdosZombie(
                client_ip, user_agent, rng, entry_url, max_requests=80
            ),
            ("Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",),
        ),
    ],
)


def _referrer_stump() -> AdaBoostModel:
    """A handcrafted one-stump ensemble on attribute 4 (% requests with
    a Referer): browsers score human, zombies and crawlers score robot.

    Unlike a trained ensemble, the verdict at every per-session
    checkpoint is a pure function of that prefix — stable across
    executors, so ladder escalations are too.
    """
    model = AdaBoostModel(n_features=12)
    model.stumps.append(
        DecisionStump(feature=4, threshold=25.0, polarity=1)
    )
    model.alphas.append(1.0)
    model.compile()
    return model


@pytest.fixture(scope="module")
def ddos_trace(small_origin, small_site):
    """A recorded burst-arrival trace with a DDoS flash crowd on top."""
    network = ProxyNetwork(
        origins={small_site.host: small_origin},
        rng=RngStream(SEED, "net"),
        n_nodes=3,
    )
    recorder = TraceRecorder()
    recorder.attach(network)
    result = WorkloadEngine(
        network,
        DDOS_BURST,
        f"http://{small_site.host}{small_site.home_path}",
        RngStream(SEED, "wl"),
        WorkloadConfig(
            n_sessions=N_SESSIONS,
            captcha_enabled=False,
            mode="interleaved",
            arrival=BurstArrival(
                burst_share=0.5, burst_start=0.3, burst_width=0.05
            ),
            duration=6 * 3600.0,
        ),
    ).run()
    recorder.detach(network)
    recorder.annotate_ground_truth(result.records)
    return recorder.sorted_records(), recorder.sorted_probes()


def _replay(ddos_trace, **config_kwargs):
    records, probes = ddos_trace
    network = ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=3,
        instrument_enabled=False,
    )
    engine = TraceReplayEngine(
        network, ReplayConfig(assume_sorted=True, **config_kwargs)
    )
    return engine.replay(list(records), probes=list(probes))


LADDER = LadderConfig(challenge_patience=4)
BATCH = MicroBatchConfig(max_batch=32, max_delay=1800.0)


def _ladder_replay(ddos_trace, executor, lanes=1, shards=0):
    return _replay(
        ddos_trace,
        executor=executor,
        queue_depth=16,
        scorer_model=_referrer_stump(),
        batch=BATCH,
        ladder=LADDER,
        shards=shards,
        lanes_per_node=lanes,
    )


class TestConfigValidation:
    """Satellite (c): silently-inert configurations must be refused."""

    def test_shed_with_unbounded_queue_is_rejected(self):
        # Regression: this combination used to construct fine and then
        # never shed anything — an unbounded queue never refuses a put.
        with pytest.raises(ValueError, match="never shed"):
            IngressConfig(
                executor="thread", policy=ShedPolicy.SHED, queue_depth=None
            )

    def test_replay_config_rejects_shed_without_depth(self):
        with pytest.raises(ValueError, match="never shed"):
            ReplayConfig(executor="thread", shed=True, queue_depth=None)

    def test_workload_config_rejects_shed_without_depth(self):
        with pytest.raises(ValueError, match="never shed"):
            WorkloadConfig(
                mode="pipelined", executor="thread", shed=True
            )

    def test_adaptive_needs_a_queued_executor(self):
        # The serial executor has no backlog, so the predicted delay is
        # pinned at zero: ADAPTIVE would be the same silent no-op.
        with pytest.raises(ValueError, match="serial"):
            IngressConfig(
                executor="serial", policy=ShedPolicy.ADAPTIVE
            )
        with pytest.raises(ValueError):
            ReplayConfig(executor="serial", adaptive=AdaptiveConfig())
        with pytest.raises(ValueError):
            WorkloadConfig(
                mode="pipelined",
                executor="serial",
                adaptive=AdaptiveConfig(),
            )

    def test_adaptive_tuning_requires_adaptive_policy(self):
        with pytest.raises(ValueError, match="ADAPTIVE"):
            IngressConfig(
                executor="thread",
                policy=ShedPolicy.BLOCK,
                adaptive=AdaptiveConfig(),
            )

    def test_adaptive_and_shed_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ReplayConfig(
                executor="thread",
                queue_depth=8,
                shed=True,
                adaptive=AdaptiveConfig(),
            )
        with pytest.raises(ValueError):
            WorkloadConfig(
                mode="pipelined",
                executor="thread",
                queue_depth=8,
                shed=True,
                adaptive=AdaptiveConfig(),
            )

    def test_ladder_needs_a_scorer(self):
        with pytest.raises(ValueError, match="scorer_model"):
            IngressConfig(executor="thread", ladder=LadderConfig())

    def test_adaptive_policy_defaults_its_tuning(self):
        config = IngressConfig(
            executor="thread", policy=ShedPolicy.ADAPTIVE
        )
        assert config.adaptive == AdaptiveConfig()


class TestLadderDeterminism:
    """Ladder state and escalations are part of the byte-identity
    contract: same trace, any executor, any lane layout."""

    @pytest.fixture(scope="class")
    def reference(self, ddos_trace):
        return _ladder_replay(ddos_trace, "serial")

    def test_the_ladder_actually_fired(self, reference):
        state = reference.ladder
        assert state is not None and state["ips"]
        assert state["transitions"]
        stages = {record["stage"] for record in state["ips"].values()}
        assert "block" in stages  # zombies climbed the whole ladder
        assert reference.stats.throttled > 0
        assert reference.stats.challenged > 0
        assert reference.stats.ladder_blocked > 0

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("lanes", [1, SHARDS])
    def test_ladder_state_byte_identical(
        self, ddos_trace, reference, executor, lanes
    ):
        if lanes == 1 and executor == "serial":
            return  # the reference itself
        result = _ladder_replay(
            ddos_trace,
            executor,
            lanes=lanes,
            shards=SHARDS if lanes > 1 else 0,
        )
        assert json.dumps(result.ladder, sort_keys=True) == json.dumps(
            reference.ladder, sort_keys=True
        )
        # Enforcement counters ride the same contract.
        assert result.stats.throttled == reference.stats.throttled
        assert result.stats.challenged == reference.stats.challenged
        assert result.stats.ladder_blocked == reference.stats.ladder_blocked

    def test_only_robots_reach_block(self, reference):
        labels_by_ip: dict[str, set] = {}
        for session in reference.sessions:
            labels_by_ip.setdefault(session.key.client_ip, set()).add(
                session.true_label
            )
        for ip, record in reference.ladder["ips"].items():
            if record["stage"] == "block" or record["blocked"]:
                assert labels_by_ip.get(ip, set()) <= {"robot"}, (
                    f"human client {ip} was hard-blocked"
                )

    def test_ladder_metrics_are_deterministic_domain(self, reference):
        points = {
            p.name for p in reference.metrics.deterministic().points
        }
        assert "repro_ladder_verdicts_total" in points
        assert "repro_ladder_gated_total" in points
        assert "repro_ladder_transitions_total" in points

    def test_enforcement_never_reaches_detection(self, reference, ddos_trace):
        records, _probes = ddos_trace
        gated = (
            reference.stats.throttled
            + reference.stats.challenged
            + reference.stats.ladder_blocked
        )
        assert gated > 0
        # Gated requests are answered at the front door; the handled
        # total still covers every replayed request.
        assert reference.requests_replayed == len(records)


class TestAdmissionConservation:
    """Satellite (b): arrivals = queued + shed on every combination."""

    MATRIX = [
        ("serial", "block", None),
        ("thread", "block", 8),
        ("process", "block", 8),
        ("thread", "shed", 2),
        ("process", "shed", 2),
        ("thread", "adaptive", 16),
        ("process", "adaptive", 16),
    ]

    @pytest.mark.parametrize("executor,policy,depth", MATRIX)
    def test_arrivals_always_balance(
        self, ddos_trace, executor, policy, depth
    ):
        records, probes = ddos_trace
        result = _replay(
            ddos_trace,
            executor=executor,
            queue_depth=depth,
            shed=policy == "shed",
            adaptive=AdaptiveConfig() if policy == "adaptive" else None,
        )
        stats = result.stats
        assert stats.queued + stats.shed == len(records) + len(probes)
        assert (
            result.requests_replayed + result.probes_loaded == stats.queued
        )
        # Probe-journal key material is never shed by any policy.
        assert result.probes_loaded == len(probes)
        if policy == "adaptive":
            report = result.overload
            assert report is not None
            assert report.shed <= stats.shed
            for reason in report.reasons:
                assert reason in ("fairness", "delay_budget")
        else:
            assert result.overload is None

    def test_process_chunk_granularity_shedding_is_counted(self):
        # The process executor sheds whole IPC chunks when a lane's
        # inbox refuses them; the accounting must still balance to the
        # event.
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=1,
            instrument_enabled=False,
        )
        config = IngressConfig(
            executor="process",
            queue_depth=1,
            policy=ShedPolicy.SHED,
            chunk_size=4,
        )
        pipeline = IngressPipeline(
            network, [_SnailWorker(0, delay=0.005)], config
        )
        try:
            submitted = 0
            for index in range(256):
                pipeline.submit(("event", index), "10.0.0.1")
                submitted += 1
        finally:
            result = pipeline.close()
        assert result.queued + result.shed == submitted
        assert result.shed > 0  # the snail could not keep up
        assert result.handled == result.queued


class _SnailWorker:
    """A lane worker that is deliberately too slow for its arrivals."""

    def __init__(self, lane: int, delay: float) -> None:
        self.lane = lane
        self.delay = delay
        self.handled = 0

    def process(self, event) -> None:
        time.sleep(self.delay)
        self.handled += 1

    def finish(self):
        from repro.ingress.workers import LaneResult

        return LaneResult(
            lane=self.lane, stats=NodeStats(), handled=self.handled
        )


def _simulate(
    *,
    adaptive: AdaptiveConfig | None,
    arrival_rate: float = 1800.0,
    drain_rate: float = 1000.0,
    queue_depth: int = 2048,
    duration: float = 20.0,
    flood_share: float = 0.5,
    n_legit: int = 40,
):
    """Deterministic discrete-event model of the admission control loop.

    One lane drains at ``drain_rate``; arrivals outpace it.  The
    predicted delay re-estimates every 0.05 simulated seconds (the live
    pipeline's cadence).  ``adaptive=None`` models binary SHED: admit
    until the queue is full, drop the overflow.  A flooding IP sends
    ``flood_share`` of all arrivals; ``n_legit`` distinct clients share
    the rest.
    """
    controller = (
        DelayBudgetController(adaptive, 1) if adaptive else None
    )
    flood_period = max(2, round(1.0 / flood_share))
    queue = 0
    drained = 0.0
    predicted = 0.0
    next_estimate = 0.0
    samples: list[tuple[float, float]] = []
    shed_binary: dict[str, int] = {}
    sent: dict[str, int] = {}
    step = 1.0 / arrival_rate
    arrivals = int(duration * arrival_rate)
    for index in range(arrivals):
        now = index * step
        drained += drain_rate * step
        whole = int(drained)
        if whole:
            queue = max(0, queue - whole)
            drained -= whole
        if now >= next_estimate:
            predicted = queue / drain_rate
            samples.append((now, predicted))
            next_estimate = now + 0.05
        if index % flood_period == 0:
            ip = "10.66.6.6"
        else:
            ip = f"10.0.0.{index % n_legit}"
        sent[ip] = sent.get(ip, 0) + 1
        if controller is not None:
            if controller.admit(0, ip, predicted, now=now):
                queue += 1
        elif queue < queue_depth:
            queue += 1
        else:
            shed_binary[ip] = shed_binary.get(ip, 0) + 1
    warmup = duration * 0.25
    settled = sorted(p for t, p in samples if t >= warmup)
    p99 = settled[min(len(settled) - 1, int(len(settled) * 0.99))]
    report = controller.report() if controller else None
    return p99, report, sent, shed_binary


class TestDelayBudgetControl:
    """The tentpole acceptance numbers, on a deterministic queue model."""

    BUDGET = 0.5

    def test_adaptive_bounds_p99_where_binary_shed_does_not(self):
        adaptive = AdaptiveConfig(
            delay_budget=self.BUDGET,
            ramp_requests=32,
            duty_cycle=4,
            fairness_half_life=2.0,
        )
        adaptive_p99, report, _sent, _ = _simulate(adaptive=adaptive)
        binary_p99, _, _, shed_binary = _simulate(adaptive=None)
        # Binary SHED only refuses once the queue is already full: the
        # steady-state prediction is the whole queue's drain time.
        assert binary_p99 > 3 * self.BUDGET
        assert sum(shed_binary.values()) > 0
        # The controller sheds at the front door instead and keeps the
        # p99 prediction at the budget.  The crossing sample that
        # *starts* each episode necessarily exceeds it (hysteresis can
        # only react to the estimate it is handed), so "within budget"
        # carries one re-estimate interval's worth of arrivals as
        # slack: 0.05 s x the arrival surplus, ~8% of queue here.
        assert adaptive_p99 <= self.BUDGET * 1.1
        assert report.shed > 0
        assert report.admitted + report.shed == sum(_sent.values())

    def test_flooder_absorbs_the_drops(self):
        adaptive = AdaptiveConfig(
            delay_budget=self.BUDGET,
            ramp_requests=32,
            duty_cycle=4,
            fairness_half_life=2.0,
        )
        _p99, report, sent, _ = _simulate(
            adaptive=adaptive, flood_share=0.5, n_legit=40
        )
        flooder = "10.66.6.6"
        legit_ips = [ip for ip in sent if ip != flooder]
        flood_fraction = report.shed_fraction(flooder)
        legit_fractions = [report.shed_fraction(ip) for ip in legit_ips]
        assert report.reasons.get("fairness", 0) > 0
        assert flood_fraction > 0.3
        # Every legitimate client is shed strictly less than the
        # flooder; on average they barely notice the overload.
        assert all(f < flood_fraction for f in legit_fractions)
        assert sum(legit_fractions) / len(legit_fractions) < (
            flood_fraction / 4
        )

    def test_no_overload_means_no_shedding(self):
        adaptive = AdaptiveConfig(delay_budget=self.BUDGET)
        _p99, report, sent, _ = _simulate(
            adaptive=adaptive, arrival_rate=500.0, duration=5.0
        )
        assert report.shed == 0
        assert report.admitted == sum(sent.values())


@pytest.mark.slow
class TestSlowLaneEndToEnd:
    """The same comparison against a real thread-executor pipeline."""

    BUDGET = 0.25
    DEPTH = 512
    EVENTS = 2400

    def _drive(self, policy: ShedPolicy, adaptive=None):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=1,
            instrument_enabled=False,
        )
        config = IngressConfig(
            executor="thread",
            queue_depth=self.DEPTH,
            policy=policy,
            adaptive=adaptive,
        )
        worker = _SnailWorker(0, delay=0.002)
        pipeline = IngressPipeline(network, [worker], config)
        samples = []
        try:
            for index in range(self.EVENTS):
                pipeline.tick(float(index))
                pipeline.submit(("event", index), f"10.0.{index % 24}.1")
                samples.append(pipeline.queue_delays().get(0, 0.0))
                time.sleep(0.0005)
        finally:
            result = pipeline.close()
        return result, samples

    def test_adaptive_tracks_budget_binary_shed_saturates(self):
        adaptive = AdaptiveConfig(
            delay_budget=self.BUDGET,
            ramp_requests=64,
            duty_cycle=4,
            fairness_half_life=1.0,
        )
        shed_result, shed_samples = self._drive(ShedPolicy.SHED)
        ada_result, ada_samples = self._drive(
            ShedPolicy.ADAPTIVE, adaptive=adaptive
        )

        def p99(samples):
            tail = sorted(samples[len(samples) // 4 :])
            return tail[min(len(tail) - 1, int(len(tail) * 0.99))]

        # Both runs were genuinely overloaded...
        assert shed_result.shed > 0
        assert ada_result.overload.shed > 0
        # ...binary shedding let the queue (and its predicted delay)
        # saturate, adaptive kept it a healthy factor lower.
        assert p99(shed_samples) > self.BUDGET
        assert p99(ada_samples) < p99(shed_samples) / 2
        # Accounting still balances to the event on the wall clock.
        for result in (shed_result, ada_result):
            assert result.queued + result.shed == self.EVENTS
            assert result.handled == result.queued


class TestPredictionFreshness:
    """Satellite (d): a drained lane must publish a zero prediction."""

    GAUGE = "repro_ingress_queue_delay_predicted_seconds"

    def _pipeline(self, **config_kwargs):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=1,
            instrument_enabled=False,
        )
        config = IngressConfig(
            executor="thread", queue_depth=8, **config_kwargs
        )
        return IngressPipeline(network, [_SnailWorker(0, 0.0)], config)

    def test_flight_frames_zero_a_drained_lane(self):
        pipeline = self._pipeline(flight_interval=10.0)
        try:
            pipeline.tick(0.0)
            # Regression shape: the estimator published a backlog, the
            # lane then fully drained between ticks, and no re-estimate
            # happened before the next frame.
            pipeline._set_predicted(0, 7.5)
            pipeline.tick(25.0)
            frame = pipeline._flight.frames[-1]
            assert (
                frame.metrics.get(self.GAUGE, {"lane": "0"}).value == 0.0
            )
            assert pipeline.queue_delays()[0] == 0.0
        finally:
            pipeline.close()

    def test_final_snapshot_never_reports_a_stale_delay(self):
        pipeline = self._pipeline()
        pipeline._set_predicted(0, 7.5)
        result = pipeline.close()
        assert (
            result.metrics.get(self.GAUGE, {"lane": "0"}).value == 0.0
        )
