"""Span-tree determinism and the tracing pipeline end to end.

The acceptance matrix for causal tracing: the virtual-domain trace
export must be byte-identical across ``{serial, thread, process}``
executors × lane counts on the same recorded trace — and identical to
the synchronous replay loop.  Wall-domain traces are non-deterministic
by nature but must parse, profile, and attribute the bulk of
end-to-end time to named stages.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.spans import (
    SpanConfig,
    profile_stages,
    to_trace_events,
    trace_trees_from_json,
)
from repro.proxy.network import ProxyNetwork
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

N_SESSIONS = 40
SEED = 93
SHARDS = 2


@pytest.fixture(scope="module")
def recorded(small_origin, small_site):
    """A recorded trace + probe journal shared by every matrix cell."""
    network = ProxyNetwork(
        origins={small_site.host: small_origin},
        rng=RngStream(SEED, "net"),
        n_nodes=2,
    )
    recorder = TraceRecorder()
    recorder.attach(network)
    result = WorkloadEngine(
        network,
        SMOKE,
        f"http://{small_site.host}{small_site.home_path}",
        RngStream(SEED, "wl"),
        WorkloadConfig(n_sessions=N_SESSIONS, captcha_enabled=False),
    ).run()
    recorder.detach(network)
    recorder.annotate_ground_truth(result.records)
    return recorder.sorted_records(), recorder.sorted_probes()


def _replay(recorded, **config_kwargs):
    records, probes = recorded
    network = ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=2,
        instrument_enabled=False,
    )
    engine = TraceReplayEngine(
        network,
        ReplayConfig(
            assume_sorted=True, spans=SpanConfig(), **config_kwargs
        ),
    )
    return engine.replay(list(records), probes=list(probes))


class TestVirtualTraceIdentity:
    @pytest.fixture(scope="class")
    def baseline(self, recorded):
        """The synchronous loop's virtual trace export."""
        result = _replay(recorded)
        assert result.spans
        return to_trace_events(result.spans, clock="virtual")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("lanes", [1, SHARDS])
    def test_matrix_matches_synchronous_loop(
        self, recorded, baseline, executor, lanes
    ):
        result = _replay(
            recorded,
            executor=executor,
            queue_depth=16,
            shards=SHARDS,
            lanes_per_node=lanes,
        )
        exported = to_trace_events(result.spans, clock="virtual")
        if lanes == 1:
            assert exported == baseline
        else:
            # Per-shard lanes renumber trace ids; the span structure
            # per trace must still be deterministic and well-formed.
            document = json.loads(exported)
            assert document["otherData"]["clock"] == "virtual"
            repeat = _replay(
                recorded,
                executor=executor,
                queue_depth=16,
                shards=SHARDS,
                lanes_per_node=lanes,
            )
            assert exported == to_trace_events(
                repeat.spans, clock="virtual"
            )

    def test_identical_across_queue_depths(self, recorded, baseline):
        for depth in (1, None):
            result = _replay(
                recorded, executor="thread", queue_depth=depth
            )
            assert (
                to_trace_events(result.spans, clock="virtual") == baseline
            )

    def test_trees_survive_process_pickling(self, recorded):
        result = _replay(recorded, executor="process", queue_depth=16)
        assert result.spans
        names = {
            span.name for tree in result.spans for span in tree.spans
        }
        assert {"request", "queue_wait", "handle", "detection",
                "finish", "finalize"} <= names

    def test_finish_traces_one_per_lane(self, recorded):
        result = _replay(recorded, executor="serial")
        finish = [
            t for t in result.spans if "finish" in t.categories
        ]
        assert len(finish) == 2  # one per node-lane
        assert {t.lane for t in finish} == {0, 1}


class TestWallDomain:
    def test_wall_traces_profile_and_attribute(self, recorded):
        result = _replay(recorded, executor="serial")
        text = to_trace_events(result.spans, clock="wall")
        trees, clock = trace_trees_from_json(text)
        assert clock == "wall"
        report = profile_stages(trees, clock="wall")
        stage_names = {s.name for s in report.stages}
        assert {"handle", "detection", "queue_wait"} <= stage_names
        assert report.root_total > 0.0
        # The acceptance target is >= 95% on a full-size replay; this
        # floor only guards against structural attribution regressions
        # (it must hold even on a loaded CI box with tiny spans).
        assert report.attributed_fraction > 0.75

    def test_queue_delay_gauges_exported(self, recorded):
        result = _replay(recorded, executor="thread", queue_depth=16)
        wall = result.metrics.series(
            "repro_ingress_queue_delay_ewma_seconds"
        )
        event = result.metrics.series(
            "repro_ingress_queue_delay_ewma_event_seconds"
        )
        assert len(wall) == 2 and len(event) == 2
        # Sorted per-lane streams never run behind their own event
        # clock: the deterministic estimate is exactly zero.
        assert all(p.value == 0.0 for p in event)
        predicted = result.metrics.series(
            "repro_ingress_queue_delay_predicted_seconds"
        )
        assert len(predicted) == 2

    def test_event_domain_estimate_is_deterministic(self, recorded):
        runs = [
            _replay(recorded, executor=executor, queue_depth=16)
            for executor in ("serial", "thread")
        ]
        values = [
            sorted(
                (p.key, p.value)
                for p in run.metrics.series(
                    "repro_ingress_queue_delay_ewma_event_seconds"
                )
            )
            for run in runs
        ]
        assert values[0] == values[1]


class TestSamplerBudgetsInPipeline:
    def test_budget_bounds_hold_per_lane(self, recorded):
        budget = SpanConfig.uniform(2)
        records, probes = recorded
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=2,
            instrument_enabled=False,
        )
        engine = TraceReplayEngine(
            network,
            ReplayConfig(
                assume_sorted=True, spans=budget, executor="serial"
            ),
        )
        result = engine.replay(list(records), probes=list(probes))
        # Per lane: head 2 + slow 2 + robot 4 + error 2 + finish 1.
        per_lane: dict[int, int] = {}
        for tree in result.spans:
            per_lane[tree.lane] = per_lane.get(tree.lane, 0) + 1
        assert set(per_lane) == {0, 1}
        for count in per_lane.values():
            assert count <= 2 + 2 + 4 + 2 + 1
