"""LaneQueue semantics: order, bounds, backpressure, shedding, close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.ingress.queues import CLOSED, LaneQueue, QueueClosed


class TestLaneQueueBasics:
    def test_fifo_order(self):
        queue = LaneQueue()
        for item in range(10):
            assert queue.put(item)
        assert [queue.get() for _ in range(10)] == list(range(10))

    def test_unbounded_never_sheds(self):
        queue = LaneQueue(depth=None)
        for item in range(10_000):
            assert queue.put(item, block=False)
        assert queue.shed == 0
        assert queue.enqueued == 10_000
        assert queue.high_watermark == 10_000

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            LaneQueue(depth=0)
        with pytest.raises(ValueError):
            LaneQueue(depth=-3)

    def test_len_and_watermark(self):
        queue = LaneQueue(depth=8)
        for item in range(5):
            queue.put(item)
        assert len(queue) == 5
        queue.get()
        assert len(queue) == 4
        assert queue.high_watermark == 5


class TestShedding:
    def test_full_queue_sheds_when_not_blocking(self):
        queue = LaneQueue(depth=2)
        assert queue.put("a", block=False)
        assert queue.put("b", block=False)
        assert not queue.put("c", block=False)
        assert not queue.put("d", block=False)
        assert queue.shed == 2
        assert queue.enqueued == 2
        # Shed items are refused, never enqueued: order is preserved.
        assert queue.get() == "a"
        assert queue.put("e", block=False)
        assert [queue.get(), queue.get()] == ["b", "e"]


class TestBackpressure:
    def test_blocking_put_waits_for_space(self):
        queue = LaneQueue(depth=1)
        queue.put("first")
        admitted = []

        def producer():
            queue.put("second")  # blocks until the consumer takes one
            admitted.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not admitted  # still blocked
        assert queue.get() == "first"
        thread.join(timeout=5.0)
        assert admitted
        assert queue.get() == "second"
        assert queue.shed == 0


class TestClose:
    def test_get_drains_then_reports_closed(self):
        queue = LaneQueue()
        queue.put(1)
        queue.put(2)
        queue.close()
        assert queue.get() == 1
        assert queue.get() == 2
        assert queue.get() is CLOSED
        assert queue.get() is CLOSED

    def test_put_after_close_raises(self):
        queue = LaneQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(1)

    def test_close_unblocks_waiting_producer(self):
        queue = LaneQueue(depth=1)
        queue.put("only")
        errors = []

        def producer():
            try:
                queue.put("blocked")
            except QueueClosed:
                errors.append("closed")

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert errors == ["closed"]
