"""Micro-batcher: flush budgets, coalescing, and rotation handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.service import RequestOutcome
from repro.detection.session import SessionKey, SessionState
from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.ingress.batcher import MicroBatchConfig, MicroBatcher
from repro.ml.adaboost import AdaBoostModel
from repro.ml.stump import DecisionStump


def tiny_model(rounds: int = 12) -> AdaBoostModel:
    rng = np.random.default_rng(17)
    model = AdaBoostModel(n_features=12)
    for _ in range(rounds):
        model.stumps.append(
            DecisionStump(
                feature=int(rng.integers(12)),
                threshold=float(rng.uniform(0, 20)),
                polarity=int(rng.choice((-1, 1))),
            )
        )
        model.alphas.append(float(rng.uniform(0.1, 1.0)))
    model.compile()
    return model


def exchange(session: SessionState, path: str, timestamp: float):
    request = Request(
        method=Method.GET,
        url=Url.parse(f"http://site.example{path}"),
        client_ip=session.key.client_ip,
        headers=Headers([("User-Agent", session.key.user_agent)]),
        timestamp=timestamp,
    )
    response = Response(status=200, body=b"x" * 100)
    outcome = RequestOutcome(
        state=session, session_started=False, request_index=1, hit=None
    )
    return outcome, request, response


def session(ip: str, session_id: str = "s-1") -> SessionState:
    return SessionState(
        session_id=session_id,
        key=SessionKey(ip, "ua"),
        started_at=0.0,
    )


class TestFlushBudgets:
    def test_count_budget_triggers_flush(self):
        batcher = MicroBatcher(
            tiny_model(), MicroBatchConfig(max_batch=3, max_delay=1e9)
        )
        for index in range(3):
            state = session(f"10.0.0.{index}", f"s-{index}")
            batcher.observe(*exchange(state, "/a.html", float(index)))
        assert batcher.flushes == 1
        assert len(batcher.verdicts) == 3
        assert batcher.pending == 0

    def test_latency_budget_uses_virtual_time(self):
        batcher = MicroBatcher(
            tiny_model(), MicroBatchConfig(max_batch=1000, max_delay=60.0)
        )
        state = session("10.0.0.1")
        batcher.observe(*exchange(state, "/a.html", 10.0))
        batcher.observe(*exchange(state, "/b.html", 30.0))
        assert batcher.flushes == 0  # 20 virtual seconds elapsed
        batcher.observe(*exchange(state, "/c.html", 70.0))
        assert batcher.flushes == 1  # 60s budget reached

    def test_arrivals_coalesce_to_one_verdict_per_session(self):
        batcher = MicroBatcher(
            tiny_model(), MicroBatchConfig(max_batch=1000, max_delay=1e9)
        )
        state = session("10.0.0.1")
        for index in range(50):
            batcher.observe(*exchange(state, f"/p{index}.html", float(index)))
        batch = batcher.close()
        assert len(batch) == 1
        assert batch[0].session_id == "s-1"

    def test_rescored_across_flushes(self):
        batcher = MicroBatcher(
            tiny_model(), MicroBatchConfig(max_batch=1000, max_delay=1e9)
        )
        state = session("10.0.0.1")
        batcher.observe(*exchange(state, "/a.html", 0.0))
        batcher.flush()
        batcher.observe(*exchange(state, "/b.html", 1.0))
        batcher.flush()
        assert [v.session_id for v in batcher.verdicts] == ["s-1", "s-1"]

    def test_final_margin_independent_of_budgets(self):
        def run(config: MicroBatchConfig) -> dict[str, float]:
            batcher = MicroBatcher(tiny_model(), config)
            for index in range(40):
                state = session(f"10.0.0.{index % 4}", f"s-{index % 4}")
                batcher.observe(
                    *exchange(state, f"/p{index}.html", float(index))
                )
            batcher.close()
            return {v.session_id: v.margin for v in batcher.verdicts}

        small = run(MicroBatchConfig(max_batch=2, max_delay=5.0))
        large = run(MicroBatchConfig(max_batch=1000, max_delay=1e9))
        assert small == large


class TestLifecycle:
    def test_disabled_without_model(self):
        batcher = MicroBatcher(None)
        assert not batcher.enabled
        state = session("10.0.0.1")
        batcher.observe(*exchange(state, "/a.html", 0.0))
        assert batcher.close() == []
        assert batcher.verdicts == []

    def test_rotation_retires_accumulator_after_final_score(self):
        batcher = MicroBatcher(
            tiny_model(), MicroBatchConfig(max_batch=1000, max_delay=1e9)
        )
        first = session("10.0.0.1", "s-old")
        batcher.observe(*exchange(first, "/a.html", 0.0))
        replacement = session("10.0.0.1", "s-new")
        batcher.observe(*exchange(replacement, "/b.html", 4000.0))
        batcher.close()
        scored = {v.session_id for v in batcher.verdicts}
        assert scored == {"s-old", "s-new"}
        # The rotated session's accumulator is dropped after scoring.
        assert "s-old" not in batcher._accumulators

    def test_idle_sessions_evicted_after_final_score(self):
        """Memory stays bounded on million-session streams: a session
        idle past the timeout is dropped at the next flush (it already
        got its final score; the tracker would rotate it on return)."""
        batcher = MicroBatcher(
            tiny_model(),
            MicroBatchConfig(
                max_batch=1000, max_delay=50.0, idle_timeout=100.0
            ),
        )
        old = session("10.0.0.1", "s-old")
        batcher.observe(*exchange(old, "/a.html", 0.0))
        batcher.flush()
        assert "s-old" in batcher._accumulators
        # Another client keeps the stream moving past the idle horizon;
        # the latency budget trips a flush, which evicts the idler.
        other = session("10.0.0.2", "s-other")
        batcher.observe(*exchange(other, "/b.html", 120.0))
        batcher.observe(*exchange(other, "/c.html", 180.0))
        assert batcher.flushes == 2
        assert "s-old" not in batcher._accumulators
        assert "s-other" in batcher._accumulators
        # The evicted session was still scored exactly once.
        assert [v.session_id for v in batcher.verdicts].count("s-old") == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MicroBatchConfig(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchConfig(max_delay=0.0)
        with pytest.raises(ValueError):
            MicroBatchConfig(idle_timeout=0.0)
