"""Ingress determinism: executors and queue depths never change results.

The acceptance matrix: census, set-algebra summary, per-session verdicts
and network stats must be byte-identical across ``{serial, thread,
process}`` executors × queue depths ``{1, 16, unbounded}`` on the same
recorded trace — and identical to the synchronous replay loop.  Load
shedding must be visible in the stats, never silent.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pickle

import numpy as np
import pytest

from repro.detection.online import OnlineClassifier
from repro.ingress.batcher import MicroBatchConfig
from repro.ingress.frontend import AsyncIngress, ThreadedDriver
from repro.ingress.pipeline import (
    IngressConfig,
    IngressPipeline,
    replay_workers,
)
from repro.ingress.workers import PROBE_EVENT, REQUEST_EVENT
from repro.ml.adaboost import AdaBoostModel
from repro.ml.stump import DecisionStump
from repro.proxy.network import ProxyNetwork
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

N_SESSIONS = 50
SEED = 71


def _verdicts(result):
    classifier = OnlineClassifier()
    return {
        (s.key.client_ip, s.key.user_agent, s.started_at): (
            classifier.classify_final(s).label,
            s.request_count,
            s.true_label,
            s.agent_kind,
        )
        for s in result.sessions
    }


def _without_admission(stats):
    return dataclasses.replace(stats, queued=0, shed=0)


def _scorer_model() -> AdaBoostModel:
    rng = np.random.default_rng(23)
    model = AdaBoostModel(n_features=12)
    for _ in range(20):
        model.stumps.append(
            DecisionStump(
                feature=int(rng.integers(12)),
                threshold=float(rng.uniform(0, 40)),
                polarity=int(rng.choice((-1, 1))),
            )
        )
        model.alphas.append(float(rng.uniform(0.05, 1.0)))
    model.compile()
    return model


@pytest.fixture(scope="module")
def recorded(small_origin, small_site):
    """A recorded trace + probe journal shared by every matrix cell."""
    network = ProxyNetwork(
        origins={small_site.host: small_origin},
        rng=RngStream(SEED, "net"),
        n_nodes=3,
    )
    recorder = TraceRecorder()
    recorder.attach(network)
    result = WorkloadEngine(
        network,
        SMOKE,
        f"http://{small_site.host}{small_site.home_path}",
        RngStream(SEED, "wl"),
        WorkloadConfig(n_sessions=N_SESSIONS, captcha_enabled=False),
    ).run()
    recorder.detach(network)
    recorder.annotate_ground_truth(result.records)
    return recorder.sorted_records(), recorder.sorted_probes()


def _replay(recorded, **config_kwargs):
    records, probes = recorded
    network = ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=3,
        instrument_enabled=False,
    )
    engine = TraceReplayEngine(
        network, ReplayConfig(assume_sorted=True, **config_kwargs)
    )
    return engine.replay(list(records), probes=list(probes))


class TestExecutorDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self, recorded):
        return _replay(recorded)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("depth", [1, 16, None])
    def test_matrix_matches_synchronous_loop(
        self, recorded, baseline, executor, depth
    ):
        result = _replay(recorded, executor=executor, queue_depth=depth)
        assert result.summary == baseline.summary
        assert result.kind_census() == baseline.kind_census()
        assert _verdicts(result) == _verdicts(baseline)
        assert result.requests_replayed == baseline.requests_replayed
        assert result.probes_loaded == baseline.probes_loaded
        assert result.first_timestamp == baseline.first_timestamp
        assert result.last_timestamp == baseline.last_timestamp
        # Stats are byte-identical apart from the admission counters
        # the synchronous loop does not have.
        assert _without_admission(result.stats) == baseline.stats
        records, probes = recorded
        assert result.stats.queued == len(records) + len(probes)
        assert result.stats.shed == 0

    def test_sharded_lanes_agree_too(self, recorded, baseline):
        result = _replay(
            recorded, executor="process", queue_depth=16, shards=4
        )
        assert result.summary == baseline.summary
        assert result.kind_census() == baseline.kind_census()
        assert _verdicts(result) == _verdicts(baseline)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_micro_batched_scoring_deterministic(self, recorded, executor):
        model = _scorer_model()
        batch = MicroBatchConfig(max_batch=32, max_delay=1800.0)
        reference = _replay(
            recorded, executor="serial", scorer_model=model, batch=batch
        )
        assert reference.ml_verdicts  # the scorer actually ran
        result = _replay(
            recorded,
            executor=executor,
            queue_depth=16,
            scorer_model=model,
            batch=batch,
        )
        assert [
            (v.session_id, v.margin) for v in result.ml_verdicts
        ] == [(v.session_id, v.margin) for v in reference.ml_verdicts]


class TestLaneGranularity:
    """Per-shard lanes: lane count is a topology knob, never a
    behaviour knob.

    With ``lanes_per_node`` equal to the detection shard count, every
    ``(node, shard)`` pair becomes its own ingress lane carrying only
    its partition's state.  Results must stay byte-identical to the
    one-lane-per-node layout across every executor.
    """

    SHARDS = 4

    @pytest.fixture(scope="class")
    def reference(self, recorded):
        return _replay(
            recorded,
            shards=self.SHARDS,
            executor="serial",
            queue_depth=16,
            lanes_per_node=1,
        )

    @staticmethod
    def _latency_multiset(result):
        missing = -1
        return sorted(
            (
                missing if l.css_at is None else l.css_at,
                missing if l.beacon_js_at is None else l.beacon_js_at,
                missing if l.mouse_at is None else l.mouse_at,
            )
            for l in result.latencies
        )

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("lanes", [1, SHARDS])
    def test_lane_matrix_matches(
        self, recorded, reference, executor, lanes
    ):
        result = _replay(
            recorded,
            shards=self.SHARDS,
            executor=executor,
            queue_depth=16,
            lanes_per_node=lanes,
        )
        assert result.summary == reference.summary
        assert result.kind_census() == reference.kind_census()
        assert _verdicts(result) == _verdicts(reference)
        assert result.stats == reference.stats
        assert result.requests_replayed == reference.requests_replayed
        assert result.probes_loaded == reference.probes_loaded
        assert self._latency_multiset(result) == self._latency_multiset(
            reference
        )

    def test_deterministic_metrics_invariant_to_lane_count(
        self, recorded, reference
    ):
        # Lane-labeled series (queue waits, admission counters) are
        # queue-topology-scoped by definition, and sweep bookkeeping
        # runs on per-lane event clocks — everything else must be
        # byte-identical between one lane per node and one per shard.
        sweep_dependent = {
            "repro_cache_expired_total",
            "repro_ratelimit_evicted_total",
        }

        def comparable(snapshot):
            return {
                p.key: p
                for p in snapshot.deterministic().points
                if "lane" not in dict(p.labels)
                and p.name not in sweep_dependent
            }

        result = _replay(
            recorded,
            shards=self.SHARDS,
            executor="process",
            queue_depth=16,
            lanes_per_node=self.SHARDS,
        )
        assert comparable(result.metrics) == comparable(reference.metrics)

    def test_per_shard_lanes_outnumber_nodes(self):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=3,
            instrument_enabled=False,
        )
        network.shard_detection(self.SHARDS)
        config = IngressConfig(
            executor="serial", lanes_per_node=self.SHARDS
        )
        workers = replay_workers(network, config)
        assert len(workers) == 3 * self.SHARDS > len(network.nodes)
        pipeline = IngressPipeline(network, workers, config)
        try:
            from repro.state.partition import partition_index

            for i in range(64):
                ip = f"10.1.{i}.7"
                lane = pipeline.lane_for(ip)
                assert lane // self.SHARDS == network.node_index_for(ip)
                assert lane % self.SHARDS == partition_index(
                    ip, self.SHARDS
                )
        finally:
            pipeline.close()

    def test_lane_count_validation(self, recorded):
        with pytest.raises(ValueError):
            ReplayConfig(lanes_per_node=0)
        with pytest.raises(ValueError):  # needs a pipelined executor
            ReplayConfig(lanes_per_node=4)
        # Anything that is not 1 or the shard count cannot be a total
        # partition of a node's state.
        with pytest.raises(ValueError, match="lanes_per_node"):
            _replay(
                recorded,
                shards=self.SHARDS,
                executor="serial",
                lanes_per_node=3,
            )


class TestMetricsDeterminism:
    """Snapshot byte-identity: the observability acceptance matrix."""

    BATCH = MicroBatchConfig(max_batch=32, max_delay=1800.0)

    @pytest.fixture(scope="class")
    def reference(self, recorded):
        return _replay(
            recorded,
            executor="serial",
            scorer_model=_scorer_model(),
            batch=self.BATCH,
            flight_interval=3600.0,
        )

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("depth", [1, 16, None])
    def test_deterministic_snapshot_byte_identical(
        self, recorded, reference, executor, depth
    ):
        from repro.obs.export import to_json

        result = _replay(
            recorded,
            executor=executor,
            queue_depth=depth,
            scorer_model=_scorer_model(),
            batch=self.BATCH,
            flight_interval=3600.0,
        )
        assert to_json(result.metrics.deterministic()) == to_json(
            reference.metrics.deterministic()
        )
        # Flight frames sit on an absolute grid, so their deterministic
        # content is also byte-identical, frame by frame.
        assert [f.tick for f in result.flight] == [
            f.tick for f in reference.flight
        ]
        for ours, theirs in zip(result.flight, reference.flight):
            assert to_json(ours.metrics.deterministic()) == to_json(
                theirs.metrics.deterministic()
            )

    def test_snapshot_has_the_advertised_content(self, reference):
        snap = reference.metrics
        assert snap.get("repro_ingress_queue_wait_event_seconds",
                        {"lane": "0"}).count > 0
        assert sum(
            p.count for p in snap.series("repro_detection_seconds")
        ) > 0
        assert snap.total("repro_batch_flush_total") > 0
        assert sum(
            p.count for p in snap.series("repro_batch_flush_sessions")
        ) > 0
        assert snap.total("repro_captcha_offered_total") == 0  # replay
        assert reference.flight  # the recorder actually sampled

    def test_sync_loop_metrics_embed_in_pipelined(
        self, recorded, reference
    ):
        # The synchronous loop has no ingress/batch instruments, but
        # every deterministic point it does produce must appear with
        # the same value in the pipelined run's merged snapshot.
        sync = _replay(recorded)
        pipelined = {
            p.key: p for p in reference.metrics.deterministic().points
        }
        for point in sync.metrics.deterministic().points:
            assert pipelined[point.key] == point

    def test_process_lanes_refuse_metrics_listeners(self, recorded):
        records, probes = recorded
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=3,
            instrument_enabled=False,
        )
        network.nodes[0].metrics.add_listener(lambda frame: None)
        engine = TraceReplayEngine(
            network,
            ReplayConfig(assume_sorted=True, executor="process"),
        )
        with pytest.raises(ValueError, match="metrics listeners"):
            engine.replay(list(records), probes=list(probes))


class TestLoadShedding:
    def test_shed_is_counted_never_silent(self, recorded):
        records, probes = recorded
        result = _replay(
            recorded, executor="thread", queue_depth=1, shed=True
        )
        stats = result.stats
        # Every arrival is accounted for: queued xor shed...
        assert stats.queued + stats.shed == len(records) + len(probes)
        # ...and everything queued was actually handled.
        assert result.requests_replayed + result.probes_loaded == stats.queued
        # Probe-journal key material is never shed.
        assert result.probes_loaded == len(probes)

    def test_shed_requires_pipelined_executor(self):
        with pytest.raises(ValueError):
            ReplayConfig(shed=True)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReplayConfig(executor="fiber")
        with pytest.raises(ValueError):
            ReplayConfig(queue_depth=0)


class TestFrontends:
    def _pipeline(self, executor="thread", queue_depth=8):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=3,
            instrument_enabled=False,
        )
        config = IngressConfig(executor=executor, queue_depth=queue_depth)
        return IngressPipeline(
            network, replay_workers(network, config), config
        )

    @staticmethod
    def _events(recorded):
        """Timestamp-interleaved event stream (probes before requests
        at equal times), the order the replay engine admits in."""
        records, probes = recorded
        merged = [
            (probe.issued_at, 0, (PROBE_EVENT, probe), probe.client_ip)
            for probe in probes
        ] + [
            (record.timestamp, 1, (REQUEST_EVENT, record), record.client_ip)
            for record in records
        ]
        merged.sort(key=lambda entry: (entry[0], entry[1]))
        for _time, _priority, event, client_ip in merged:
            yield event, client_ip

    def test_async_frontend_matches_synchronous(self, recorded):
        baseline = _replay(recorded)

        async def drive():
            ingress = await AsyncIngress(self._pipeline()).start()
            for event, client_ip in self._events(recorded):
                await ingress.submit(event, client_ip)
            return await ingress.close()

        result = asyncio.run(drive())
        assert result.session_sets().summary() == baseline.summary
        assert result.handled == baseline.requests_replayed
        assert result.probes_loaded == baseline.probes_loaded

    def test_threaded_driver_matches_synchronous(self, recorded):
        baseline = _replay(recorded)
        driver = ThreadedDriver(self._pipeline(executor="serial"))
        result = driver.start(self._events(recorded)).join()
        assert result.session_sets().summary() == baseline.summary
        assert result.handled == baseline.requests_replayed

    def test_async_frontend_surfaces_worker_failure(self):
        """A pump-task death must raise, never strand producers on a
        full hand-off queue."""

        class ExplodingWorker:
            def process(self, event):
                raise RuntimeError("lane blew up")

            def finish(self):
                return None

        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=1,
            instrument_enabled=False,
        )
        config = IngressConfig(executor="serial")
        pipeline = IngressPipeline(network, [ExplodingWorker()], config)

        async def drive():
            ingress = await AsyncIngress(
                pipeline, max_pending=4
            ).start()
            for index in range(64):  # far beyond max_pending
                await ingress.submit(("request", index), "10.0.0.1")
            return await ingress.close()

        with pytest.raises(RuntimeError, match="admission failed"):
            asyncio.run(drive())

    def test_pipeline_rejects_double_close(self):
        pipeline = self._pipeline(executor="serial")
        pipeline.close()
        with pytest.raises(RuntimeError):
            pipeline.close()
        with pytest.raises(RuntimeError):
            pipeline.submit(("request", None), "10.0.0.1")


class TestBatcherTrackerAlignment:
    def test_eviction_window_clamped_to_tracker_timeout(self):
        """A batcher must never evict an accumulator for a session the
        tracker still considers live — else a returning session keeps
        its id but restarts from an empty feature history."""
        from repro.detection.service import DetectionService
        from repro.ingress.workers import ReplayLaneWorker
        from repro.instrument.keys import InstrumentationRegistry
        from repro.proxy.node import ProxyNode
        from repro.util.timeutil import HOUR

        node = ProxyNode(
            node_id="node-test",
            origins={},
            rng=RngStream(1, "node"),
            detection=DetectionService(
                InstrumentationRegistry(), idle_timeout=4 * HOUR
            ),
        )
        worker = ReplayLaneWorker(
            0,
            node,
            scorer_model=_scorer_model(),
            batch=MicroBatchConfig(idle_timeout=60.0),
        )
        assert worker._batcher._config.idle_timeout == 4 * HOUR


class TestPicklableLaneState:
    def test_node_with_live_shard_executor_pickles(
        self, small_origin, small_site
    ):
        network = ProxyNetwork(
            origins={small_site.host: small_origin},
            rng=RngStream(3, "net"),
            n_nodes=1,
            detection_shards=4,
        )
        node = network.nodes[0]
        network.shard_detection(4, max_workers=2)
        # Force the lazy thread pool into existence, then pickle.
        node.detection.map_shards(lambda shard: shard.tracker.live_count)
        assert node.detection._executor is not None
        clone = pickle.loads(pickle.dumps(node))
        assert clone.detection._executor is None
        assert clone.detection.n_shards == 4
        # The revived service still works (executor recreated lazily).
        assert clone.detection.map_shards(
            lambda shard: shard.tracker.live_count
        ) == [0, 0, 0, 0]
