"""Executor parity: serial, thread and process deliver identically.

Each lane's events must arrive at its worker in admission order under
every executor — that ordering is the foundation the ingress determinism
guarantees stand on — and worker failures must surface at close, never
vanish.
"""

from __future__ import annotations

import threading

import pytest

from repro.ingress.executors import (
    ProcessLaneExecutor,
    SerialLaneExecutor,
    ThreadLaneExecutor,
    build_executor,
)
from repro.ingress.queues import ShedPolicy


class RecordingWorker:
    """Collects its lane's events (picklable for the process executor)."""

    def __init__(self, lane: int) -> None:
        self.lane = lane
        self.events: list = []

    def process(self, event) -> None:
        self.events.append(event)

    def finish(self):
        return (self.lane, self.events)


class FailingWorker:
    """Raises on a marked event (picklable)."""

    def process(self, event) -> None:
        if event == "boom":
            raise RuntimeError("worker exploded")

    def finish(self):
        return "done"


class DyingWorker:
    """Kills its own process outright (picklable; process lanes only)."""

    def process(self, event) -> None:
        import os

        os._exit(3)

    def finish(self):  # pragma: no cover - never reached
        return "unreachable"


class GatedWorker:
    """Blocks in process() until released (thread executor only)."""

    def __init__(self) -> None:
        self.started = threading.Event()
        self.gate = threading.Event()
        self.events: list = []

    def process(self, event) -> None:
        self.started.set()
        self.gate.wait(timeout=10.0)
        self.events.append(event)

    def finish(self):
        return self.events


def _drive(executor_kind: str, n_lanes: int = 3, n_events: int = 200, **kwargs):
    workers = [RecordingWorker(lane) for lane in range(n_lanes)]
    executor = build_executor(executor_kind, workers, **kwargs)
    for event in range(n_events):
        executor.submit(event % n_lanes, ("ev", event))
    results, telemetry = executor.close()
    return results, telemetry


class TestExecutorParity:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    @pytest.mark.parametrize("depth", [1, 7, None])
    def test_per_lane_admission_order(self, kind, depth):
        results, telemetry = _drive(kind, depth=depth)
        baseline, _ = _drive("serial")
        assert results == baseline
        assert sum(t.enqueued for t in telemetry) == 200
        assert sum(t.shed for t in telemetry) == 0

    def test_results_ordered_by_lane(self):
        results, _ = _drive("process", n_lanes=4, n_events=40)
        assert [lane for lane, _events in results] == [0, 1, 2, 3]

    def test_process_chunking_invisible(self):
        small, _ = _drive("process", chunk_size=1)
        large, _ = _drive("process", chunk_size=1024)
        assert small == large

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_executor("fiber", [RecordingWorker(0)])

    def test_no_workers_rejected(self):
        with pytest.raises(ValueError):
            SerialLaneExecutor([])


class TestShedPolicy:
    def test_thread_shed_is_counted_and_bounded(self):
        worker = GatedWorker()
        executor = ThreadLaneExecutor(
            [worker], depth=2, policy=ShedPolicy.SHED
        )
        # First event is pulled by the consumer, which then blocks on
        # the gate — from here on the queue alone absorbs admissions.
        assert executor.submit(0, "e0")
        assert worker.started.wait(timeout=5.0)
        assert executor.submit(0, "e1")
        assert executor.submit(0, "e2")
        assert not executor.submit(0, "e3")  # queue full: shed
        assert not executor.submit(0, "e4")
        worker.gate.set()
        results, telemetry = executor.close()
        assert results == [["e0", "e1", "e2"]]
        assert telemetry[0].enqueued == 3
        assert telemetry[0].shed == 2

    def test_forced_events_bypass_shedding(self):
        worker = GatedWorker()
        worker.gate.set()  # never actually blocks
        executor = ThreadLaneExecutor(
            [worker], depth=1, policy=ShedPolicy.SHED
        )
        for index in range(20):
            assert executor.submit(0, index, force=True)
        results, telemetry = executor.close()
        assert results == [list(range(20))]
        assert telemetry[0].shed == 0


class TestFailurePropagation:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_worker_error_raises_at_close(self, kind):
        executor = build_executor(kind, [FailingWorker()])
        executor.submit(0, "ok")
        executor.submit(0, "boom")
        executor.submit(0, "after")  # producer never deadlocks
        with pytest.raises(RuntimeError, match="lane 0"):
            executor.close()

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_failed_lane_keeps_draining_bounded_queue(self, kind):
        """A dead consumer on a bounded pipe must not wedge admission."""
        executor = build_executor(kind, [FailingWorker()], depth=4,
                                  chunk_size=2)
        executor.submit(0, "boom")
        for index in range(200):  # far beyond the queue bound
            executor.submit(0, index)
        with pytest.raises(RuntimeError, match="lane 0"):
            executor.close()

    def test_killed_child_process_raises_instead_of_hanging(self):
        """A lane child that dies outright (OOM, segfault) must surface
        as an error from admission or close — never an eternal block on
        the full event pipe."""
        executor = build_executor(
            "process", [DyingWorker()], depth=2, chunk_size=1
        )
        with pytest.raises(RuntimeError, match="lane 0"):
            # Child exits on the first chunk; the bounded pipe fills,
            # then the liveness-checking put raises.  If the child
            # lingers long enough to drain some puts, close() catches
            # the missing result instead.
            for index in range(50):
                executor.submit(0, index)
            executor.close()
