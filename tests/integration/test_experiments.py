"""Integration: every experiment module runs end to end and renders."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import figure2, figure3, figure4, overhead, table1, table2


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "figure2", "figure3", "figure4", "overhead"
        }

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure9")


class TestTable1:
    def test_runs_and_renders(self):
        result = table1.run(n_sessions=150, seed=31)
        text = result.render()
        assert "Downloaded CSS" in text
        assert "paper vs measured" in text
        measured = result.measured_percentages()
        assert set(measured) == set(table1.PAPER_TABLE1)
        assert all(0.0 <= v <= 100.0 for v in measured.values())

    def test_cache_reuses_run(self):
        a = table1.run_codeen_week_cached(150, 31)
        b = table1.run_codeen_week_cached(150, 31)
        assert a is b


class TestFigure2:
    def test_runs_and_renders(self):
        result = figure2.run(n_sessions=150, seed=31)
        text = result.render()
        assert "CDF" in text
        readings = result.readings()
        assert ("mouse", 20) in readings
        quantiles = result.quantiles()
        assert "css" in quantiles and "mouse" in quantiles


class TestFigure3:
    def test_runs_and_renders(self):
        result = figure3.run(n_sessions=150, seed=31)
        text = result.render()
        assert "Jan" in text and "Robot" in text
        assert 0.5 < result.measured_suppression <= 1.0

    def test_timeline_shape(self):
        result = figure3.run(n_sessions=150, seed=31)
        timeline = result.timeline
        assert timeline.peak_month().robot >= max(
            timeline.robot_series[8:12]
        )


class TestFigure4AndTable2:
    def test_runs_and_renders(self):
        result = figure4.run(
            n_sessions=160, seed=77, rounds=40,
            checkpoints=(20, 40),
        )
        assert len(result.evaluations) == 2
        for evaluation in result.evaluations:
            assert 0.7 <= evaluation.test_accuracy <= 1.0
            assert evaluation.train_accuracy >= evaluation.test_accuracy - 0.08
        assert "Accuracy" in result.render()

    def test_table2_contributions(self):
        result = table2.run(n_sessions=160, seed=77, checkpoint=160)
        text = result.render()
        assert "REFERRER%" in text
        weights = dict(result.contributions)
        assert sum(weights.values()) == pytest.approx(1.0, abs=1e-6)

    def test_table2_requires_trained_checkpoint(self):
        with pytest.raises(ValueError):
            table2.run(n_sessions=160, seed=77, checkpoint=999)


class TestOverhead:
    def test_generation_measurement(self):
        mean_seconds, mean_bytes = overhead.measure_generation(samples=30)
        # ~1KB script in well under a millisecond on any modern machine.
        assert mean_seconds < 0.01
        assert 500 < mean_bytes < 4000

    def test_runs_and_renders(self):
        result = overhead.run(n_sessions=150, seed=31)
        text = result.render()
        assert "µs" in text
        assert 0.0 < result.bandwidth_fraction < 0.05
