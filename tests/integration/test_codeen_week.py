"""Integration: the CoDeeN-week deployment reproduces §3.1's structure.

These tests run against the shared 400-session workload (see conftest).
Tolerances are wide — the assertions pin the *shape* the paper reports,
not exact percentages, which need the benchmark-scale runs.
"""

from __future__ import annotations

from repro.analysis.cdf import detection_cdfs
from repro.detection.online import OnlineClassifier
from repro.detection.verdict import Label


class TestTable1Census:
    def test_all_sessions_analyzable(self, codeen_result):
        assert codeen_result.summary.total_sessions > 300

    def test_census_fractions_near_paper(self, codeen_result):
        s = codeen_result.summary
        assert 0.22 <= s.fraction("css_downloads") <= 0.36     # paper 28.9%
        assert 0.20 <= s.fraction("js_executions") <= 0.34     # paper 27.1%
        assert 0.15 <= s.fraction("mouse_movements") <= 0.29   # paper 22.3%
        assert 0.05 <= s.fraction("captcha_passes") <= 0.14    # paper  9.1%
        assert 0.001 <= s.fraction("hidden_link_follows") <= 0.04   # 1.0%
        assert 0.0 <= s.fraction("ua_mismatches") <= 0.03      # paper  0.7%

    def test_set_ordering_matches_paper(self, codeen_result):
        """CSS ⊇-ish JS ⊇-ish mouse: the paper's ordering of Table 1 rows."""
        s = codeen_result.summary
        assert s.css_downloads >= s.js_executions >= s.mouse_movements

    def test_bounds_and_fpr(self, codeen_result):
        s = codeen_result.summary
        assert s.lower_bound <= s.upper_bound
        assert 0.005 <= s.bound_gap <= 0.05          # paper 1.9%
        assert s.max_false_positive_rate <= 0.06     # paper 2.4%

    def test_captcha_cross_check(self, codeen_result):
        """§3.1: 95.8% of passers ran JS, 99.2% fetched CSS."""
        check = codeen_result.captcha_check
        assert check.passers > 10
        assert check.js_fraction > 0.85
        assert check.css_fraction > 0.95
        assert check.js_disabled_fraction < 0.12    # paper 3.4%

    def test_ground_truth_agreement(self, codeen_result):
        """The set algebra agrees with ground truth for ~all sessions."""
        classifier = OnlineClassifier()
        correct = 0
        total = 0
        for state in codeen_result.sessions:
            if not state.true_label:
                continue
            total += 1
            verdict = classifier.classify_final(state)
            expected = (
                Label.HUMAN if state.true_label == "human" else Label.ROBOT
            )
            if verdict.label is expected:
                correct += 1
        assert total > 300
        assert correct / total > 0.93

    def test_mouse_evidence_never_on_true_robots(self, codeen_result):
        """No robot in the mix can forge the keyed mouse event."""
        for state in codeen_result.sessions:
            if state.true_label == "robot":
                assert not state.in_mouse_set, state.agent_kind


class TestFigure2Latencies:
    def test_curves_present(self, codeen_result):
        cdfs = detection_cdfs(codeen_result.latencies)
        assert cdfs.css is not None
        assert cdfs.beacon_js is not None
        assert cdfs.mouse is not None

    def test_css_faster_than_mouse(self, codeen_result):
        """§3.1: browser testing is quick, activity detection needs more
        requests."""
        cdfs = detection_cdfs(codeen_result.latencies)
        assert cdfs.css.quantile(0.95) <= cdfs.mouse.quantile(0.95)

    def test_mouse_cdf_anchors(self, codeen_result):
        cdfs = detection_cdfs(codeen_result.latencies)
        assert cdfs.mouse.fraction_at_or_below(20) > 0.6   # paper 80%
        assert cdfs.mouse.fraction_at_or_below(57) > 0.85  # paper 95%

    def test_css_cdf_anchors(self, codeen_result):
        cdfs = detection_cdfs(codeen_result.latencies)
        assert cdfs.css.fraction_at_or_below(19) > 0.85    # paper 95%
        assert cdfs.css.fraction_at_or_below(48) > 0.95    # paper 99%

    def test_js_tracks_css(self, codeen_result):
        """'The clients who downloaded JavaScript files show similar
        characteristics to the CSS file case.'"""
        cdfs = detection_cdfs(codeen_result.latencies)
        assert abs(
            cdfs.beacon_js.quantile(0.95) - cdfs.css.quantile(0.95)
        ) <= 12


class TestOverheadAccounting:
    def test_beacon_bandwidth_is_small(self, codeen_result):
        """§3.2: probe objects ≈ 0.3% of bandwidth (same order here)."""
        fraction = codeen_result.stats.beacon_bandwidth_fraction
        assert 0.0 < fraction < 0.03

    def test_instrumented_page_count(self, codeen_result):
        assert codeen_result.stats.pages_instrumented > 500

    def test_policy_blocked_some_robots(self, codeen_result):
        assert codeen_result.stats.policy_blocked > 0
