"""Tests for repro.analysis: CDFs, tables, ASCII plots."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import bar_chart, line_chart
from repro.analysis.cdf import detection_cdfs
from repro.analysis.tables import format_table, render_table1
from repro.detection.online import DetectionLatency
from repro.detection.set_algebra import SetAlgebraSummary


def _latency(i, css=None, js=None, mouse=None):
    return DetectionLatency(
        session_id=f"s{i}", css_at=css, beacon_js_at=js, mouse_at=mouse
    )


class TestDetectionCdfs:
    def test_curves_built_from_present_signals(self):
        latencies = [
            _latency(0, css=3, js=4, mouse=10),
            _latency(1, css=5),
            _latency(2),
        ]
        cdfs = detection_cdfs(latencies)
        assert cdfs.css.n == 2
        assert cdfs.beacon_js.n == 1
        assert cdfs.mouse.n == 1

    def test_missing_curves_are_none(self):
        cdfs = detection_cdfs([_latency(0)])
        assert cdfs.css is None
        assert cdfs.mouse is None

    def test_series_shape(self):
        cdfs = detection_cdfs([_latency(0, css=3), _latency(1, css=9)])
        series = cdfs.series(max_requests=10, step=1)
        assert "CSS files" in series
        xs = [x for x, _ in series["CSS files"]]
        assert xs == list(range(11))
        values = [v for _, v in series["CSS files"]]
        assert values[0] == 0.0
        assert values[-1] == 1.0


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(
            ["Name", "Count"], [["a", "1"], ["bb", "22"]], align_right={1}
        )
        lines = out.splitlines()
        assert lines[0].startswith("Name")
        assert lines[2].endswith("1")

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["A"], [["1", "2"]])

    def test_render_table1_layout(self):
        summary = SetAlgebraSummary(
            total_sessions=1000,
            css_downloads=289,
            js_executions=271,
            mouse_movements=223,
            captcha_passes=91,
            hidden_link_follows=10,
            ua_mismatches=7,
            human_upper_count=242,
        )
        out = render_table1(summary)
        assert "Downloaded CSS" in out
        assert "28.9" in out
        assert "Total sessions" in out
        assert "max false positive rate" in out


class TestAsciiPlots:
    def test_line_chart_renders(self):
        chart = line_chart(
            {"a": [(0, 0.0), (10, 1.0)], "b": [(0, 1.0), (10, 0.0)]},
            width=40,
            height=10,
        )
        assert "*" in chart and "+" in chart
        assert "a" in chart and "b" in chart

    def test_line_chart_requires_data(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_bar_chart_renders(self):
        chart = bar_chart(
            ["Jan", "Feb"], {"Robot": [3, 9], "Human": [1, 0]}
        )
        assert "Jan" in chart and "Feb" in chart
        assert "Robot" in chart

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["Jan"], {"Robot": [1, 2]})

    def test_bar_chart_all_zero(self):
        chart = bar_chart(["Jan"], {"Robot": [0]})
        assert "Jan" in chart
