"""Flight recorder: grid alignment, emission rules, lane merging."""

from __future__ import annotations

import pytest

from repro.obs.flight import FlightFrame, FlightRecorder, merge_flight
from repro.obs.registry import MetricsRegistry, MetricsSnapshot


def _snap(value: float) -> MetricsSnapshot:
    reg = MetricsRegistry()
    reg.counter("events_total").set(value)
    return reg.snapshot()


class TestRecorder:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            FlightRecorder(0.0, MetricsRegistry())

    def test_frames_sit_on_absolute_grid(self):
        reg = MetricsRegistry()
        recorder = FlightRecorder(10.0, reg)
        for ts in (3.0, 7.0, 12.0, 13.0, 47.0):
            recorder.tick(ts)
        assert [f.tick for f in recorder.frames] == [0.0, 10.0, 40.0]

    def test_frame_excludes_the_triggering_event(self):
        # tick() is called before applying the event, so the frame at
        # boundary b never includes events stamped >= b.
        reg = MetricsRegistry()
        counter = reg.counter("events_total")
        recorder = FlightRecorder(10.0, reg)
        for ts in (1.0, 2.0, 11.0, 21.0):
            recorder.tick(ts)
            counter.inc()
        by_tick = {f.tick: f.metrics.get("events_total").value
                   for f in recorder.frames}
        assert by_tick == {0.0: 0.0, 10.0: 2.0, 20.0: 3.0}

    def test_prepare_runs_before_each_sample(self):
        reg = MetricsRegistry()
        calls = []
        recorder = FlightRecorder(
            5.0, reg, prepare=lambda: calls.append(len(reg.snapshot().points))
        )
        recorder.tick(0.0)
        recorder.tick(5.0)
        recorder.tick(6.0)  # same boundary: no frame, no prepare
        assert len(calls) == 2
        assert len(recorder.frames) == 2

    def test_listeners_observe_emitted_frames(self):
        reg = MetricsRegistry()
        seen: list[FlightFrame] = []
        reg.add_listener(seen.append)
        recorder = FlightRecorder(10.0, reg)
        recorder.tick(1.0)
        recorder.tick(1.5)
        assert [f.tick for f in seen] == [0.0]


class TestMergeFlight:
    def test_alignment_validated(self):
        with pytest.raises(ValueError, match="align"):
            merge_flight([[]], [])

    def test_empty_lanes_produce_no_frames(self):
        assert merge_flight([[], []], [_snap(1), _snap(2)]) == []

    def test_union_of_ticks_with_stale_and_final_fallbacks(self):
        # Lane 0 saw boundaries {0, 10}; lane 1 only {10}.  At t=0 lane 1
        # contributes nothing (its traffic hadn't started); at t=20 lane 0
        # has no later frame, so its final snapshot stands in.
        lane0 = [
            FlightFrame(0.0, _snap(1)),
            FlightFrame(10.0, _snap(3)),
        ]
        lane1 = [
            FlightFrame(10.0, _snap(5)),
            FlightFrame(20.0, _snap(8)),
        ]
        merged = merge_flight(
            [lane0, lane1], [_snap(4), _snap(9)]
        )
        values = {
            f.tick: f.metrics.get("events_total").value for f in merged
        }
        assert values == {
            0.0: 1.0,        # lane 0 only
            10.0: 3.0 + 5.0,  # both lanes' frames at the boundary
            20.0: 4.0 + 8.0,  # lane 0 falls back to its final snapshot
        }

    def test_single_lane_merge_is_identity(self):
        frames = [FlightFrame(0.0, _snap(1)), FlightFrame(30.0, _snap(2))]
        merged = merge_flight([frames], [_snap(2)])
        assert [f.tick for f in merged] == [0.0, 30.0]
        assert merged[0].metrics == frames[0].metrics
        assert merged[1].metrics == frames[1].metrics
