"""Causal tracing: tracer mechanics, tail sampling, export, profiling.

Wall clocks are injected everywhere, so every assertion below is exact
— no sleeps, no tolerance bands.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs.spans import (
    TRACE_EVENT_SCHEMA,
    ProfileReport,
    QueueDelayEstimator,
    Span,
    SpanConfig,
    SpanTracer,
    SpanTree,
    TailSampler,
    merge_traces,
    profile_stages,
    to_trace_events,
    trace_trees_from_json,
)


class FakeClock:
    """A wall clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now

    def __call__(self) -> float:
        return self.now


def make_tracer(lane: int = 0, config: SpanConfig | None = None):
    clock = FakeClock()
    tracer = SpanTracer(lane, TailSampler(config), wall_clock=clock)
    return tracer, clock


class TestSpanTracer:
    def test_builds_one_tree_with_creation_order_ids(self):
        tracer, clock = make_tracer()
        tracer.begin("request", 100.0)
        clock.advance(0.010)
        with tracer.span("handle", 100.0):
            clock.advance(0.005)
            with tracer.span("detection", 100.0):
                clock.advance(0.002)
        tree = tracer.end()

        assert tree.trace_id == "0:0"
        assert [s.span_id for s in tree.spans] == [0, 1, 2]
        assert [s.parent_id for s in tree.spans] == [None, 0, 1]
        assert [s.name for s in tree.spans] == [
            "request", "handle", "detection",
        ]
        root, handle, detection = tree.spans
        assert root.wall_duration == pytest.approx(0.017)
        assert handle.wall_duration == pytest.approx(0.007)
        assert detection.wall_duration == pytest.approx(0.002)

    def test_record_backdates_and_root_covers_children_virtually(self):
        tracer, clock = make_tracer()
        clock.advance(1.0)
        tracer.begin("request", 50.0, wall_start=0.25)
        tracer.record(
            "queue_wait", 50.0, 53.0, wall_duration=0.75, wall_end=1.0
        )
        tree = tracer.end()

        wait = tree.spans[1]
        assert wait.wall_start == pytest.approx(0.25)
        assert wait.wall_duration == pytest.approx(0.75)
        assert wait.virtual_duration == pytest.approx(3.0)
        # The root's virtual end is extended over the recorded child.
        assert tree.root.virtual_end == pytest.approx(53.0)

    def test_trace_ids_count_per_lane(self):
        tracer, _ = make_tracer(lane=3)
        for seq in range(3):
            tracer.begin("request", float(seq))
            tree = tracer.end()
            assert tree.trace_id == f"3:{seq}"

    def test_span_without_open_trace_is_noop(self):
        tracer, _ = make_tracer()
        with tracer.span("orphan", 0.0):
            pass
        tracer.record("orphan", 0.0, 1.0)
        assert tracer.end() is None
        assert len(tracer.sampler.traces()) == 0

    def test_misuse_raises(self):
        tracer, _ = make_tracer()
        tracer.begin("a", 0.0)
        with pytest.raises(RuntimeError, match="still open"):
            tracer.begin("b", 0.0)
        handle = tracer.span("child", 0.0)
        with handle:
            with pytest.raises(RuntimeError, match="child spans"):
                tracer.end()
        tracer.end()

    def test_flag_tags_the_open_trace(self):
        tracer, _ = make_tracer(config=SpanConfig(head=0))
        tracer.begin("request", 0.0)
        tracer.flag("robot")
        tracer.end()
        [tree] = tracer.sampler.traces()
        assert "robot" in tree.categories

    def test_pickles_between_traces_but_not_mid_trace(self):
        tracer, _ = make_tracer()
        tracer.begin("request", 0.0)
        with pytest.raises(RuntimeError, match="mid-trace"):
            pickle.dumps(tracer)
        tracer.end()
        clone = pickle.loads(pickle.dumps(tracer))
        clone.begin("request", 1.0)
        assert clone.end().trace_id == "0:1"

    def test_trees_pickle_roundtrip(self):
        tracer, clock = make_tracer()
        tracer.begin("request", 9.0)
        clock.advance(0.25)
        with tracer.span("handle", 9.0):
            clock.advance(0.5)
        tracer.end(flags=("robot",))
        traces = tracer.traces()
        assert pickle.loads(pickle.dumps(traces)) == traces


class TestTailSampler:
    @staticmethod
    def _tree(seq: int, duration: float = 0.0, lane: int = 0) -> SpanTree:
        root = Span(
            name="request", span_id=0, parent_id=None,
            virtual_start=float(seq), virtual_end=float(seq),
            wall_start=0.0, wall_end=duration,
        )
        return SpanTree(
            trace_id=f"{lane}:{seq}", lane=lane, seq=seq, spans=[root]
        )

    def test_budgets_bound_every_category(self):
        cfg = SpanConfig(head=2, slow=0, robot=1, error=1, shed=1)
        sampler = TailSampler(cfg)
        for seq in range(6):
            sampler.offer(self._tree(seq))
        for seq in range(6, 12):
            sampler.offer(self._tree(seq), flags=("robot",))
        for seq in range(12, 18):
            sampler.offer(self._tree(seq), flags=("error",))
        for seq in range(18, 24):
            sampler.offer(self._tree(seq), flags=("shed",))
        kept = sampler.traces()
        assert sampler.offered == 24
        by_cat: dict[str, int] = {}
        for tree in kept:
            for cat in tree.categories:
                by_cat[cat] = by_cat.get(cat, 0) + 1
        assert by_cat == {"head": 2, "robot": 1, "error": 1, "shed": 1}
        # First-offered wins within each deterministic category.
        assert [t.seq for t in kept] == [0, 1, 6, 12, 18]

    def test_finish_always_retained(self):
        sampler = TailSampler(SpanConfig(head=0, slow=0))
        for seq in range(5):
            sampler.offer(self._tree(seq), flags=("finish",))
        assert [t.categories for t in sampler.traces()] == [
            ("finish",)
        ] * 5

    def test_slow_keeps_top_k_by_root_wall_duration(self):
        sampler = TailSampler(SpanConfig(head=0, slow=2))
        durations = [0.030, 0.010, 0.050, 0.020, 0.040]
        for seq, duration in enumerate(durations):
            sampler.offer(self._tree(seq, duration=duration))
        kept = sampler.traces()
        assert [t.seq for t in kept] == [2, 4]
        assert all(t.categories == ("slow",) for t in kept)

    def test_shed_traces_never_rank_as_slow(self):
        sampler = TailSampler(SpanConfig(head=0, slow=4, shed=0))
        sampler.offer(self._tree(0, duration=9.0), flags=("shed",))
        sampler.offer(self._tree(1, duration=0.001))
        assert [t.seq for t in sampler.traces()] == [1]

    def test_dual_retention_deduplicates(self):
        sampler = TailSampler(SpanConfig(head=0, slow=1, robot=1))
        sampler.offer(self._tree(0, duration=1.0), flags=("robot",))
        kept = sampler.traces()
        assert len(kept) == 1
        assert kept[0].categories == ("robot", "slow")
        assert len(sampler) == 1

    def test_bounded_under_load(self):
        cfg = SpanConfig.uniform(4)
        sampler = TailSampler(cfg)
        for seq in range(1000):
            flags = ("robot",) if seq % 3 == 0 else ()
            sampler.offer(self._tree(seq, duration=seq * 1e-6), flags)
        # head + slow + robot budgets, minus any dual retention.
        assert len(sampler.traces()) <= 4 + 4 + 8
        assert sampler.offered == 1000

    def test_merge_traces_orders_by_lane_then_seq(self):
        a = [self._tree(0, lane=1), self._tree(2, lane=1)]
        b = [self._tree(1, lane=0)]
        merged = merge_traces([a, b])
        assert [(t.lane, t.seq) for t in merged] == [
            (0, 1), (1, 0), (1, 2),
        ]


class TestQueueDelayEstimator:
    def test_first_sample_seeds_then_ewma(self):
        est = QueueDelayEstimator(alpha=0.5)
        est.observe_wall(2.0)
        assert est.wall_seconds == pytest.approx(2.0)
        est.observe_wall(4.0)
        assert est.wall_seconds == pytest.approx(3.0)
        est.observe_wall(4.0)
        assert est.wall_seconds == pytest.approx(3.5)

    def test_converges_after_a_burst(self):
        est = QueueDelayEstimator(alpha=0.2)
        for _ in range(50):
            est.observe_event(0.0)
        assert est.event_seconds == pytest.approx(0.0)
        # A burst drives the estimate up...
        for _ in range(50):
            est.observe_event(5.0)
        assert est.event_seconds == pytest.approx(5.0, abs=1e-3)
        # ...and drains back down once the queue empties.
        for _ in range(50):
            est.observe_event(0.0)
        assert est.event_seconds == pytest.approx(0.0, abs=1e-3)

    def test_domains_are_independent(self):
        est = QueueDelayEstimator()
        est.observe_wall(1.0)
        assert est.event_seconds == 0.0
        assert est.event_samples == 0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            QueueDelayEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            QueueDelayEstimator(alpha=1.5)


def _sample_traces() -> list[SpanTree]:
    """Two lanes, three traces, virtual and wall data, mixed flags."""
    groups: list[list[SpanTree]] = []
    plans = {0: [(), ("robot",)], 1: [()]}
    for lane, flag_runs in plans.items():
        clock = FakeClock()
        clock.advance(lane + 1.0)
        tracer = SpanTracer(lane, TailSampler(), wall_clock=clock)
        for seq, flags in enumerate(flag_runs):
            ts = 10.0 * (seq + 1)
            tracer.begin("request", ts)
            tracer.record("queue_wait", ts, ts + 0.5, wall_duration=0.125)
            clock.advance(0.010)
            with tracer.span("handle", ts):
                clock.advance(0.040)
                with tracer.span("detection", ts):
                    clock.advance(0.030)
            tracer.end(flags=flags)
        groups.append(tracer.traces())
    return merge_traces(groups)


class TestTraceEventExport:
    def test_schema_and_shape(self):
        document = json.loads(to_trace_events(_sample_traces()))
        assert document["otherData"]["schema"] == TRACE_EVENT_SCHEMA
        assert document["otherData"]["clock"] == "wall"
        events = document["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in metas] == ["lane 0", "lane 1"]
        for event in events:
            assert set(event) >= {"name", "ph", "pid", "tid"}
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "trace" in event["args"]
                assert "span" in event["args"]
                assert "virtual_ts" in event["args"]

    def test_canonical_bytes(self):
        traces = _sample_traces()
        text = to_trace_events(traces, clock="virtual")
        assert text == to_trace_events(_sample_traces(), clock="virtual")
        assert "\n" not in text
        parsed = json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )
        assert parsed == text

    def test_wall_normalizes_per_lane_origin(self):
        document = json.loads(to_trace_events(_sample_traces()))
        for lane in (0, 1):
            starts = [
                e["ts"]
                for e in document["traceEvents"]
                if e["ph"] == "X" and e["tid"] == lane
            ]
            assert min(starts) == 0.0

    def test_virtual_export_has_no_wall_data(self):
        traces = _sample_traces()
        # Tag one tree with a wall-only category: it must be dropped.
        traces[-1].categories = ("slow",)
        traces[0].categories = ("head",)
        traces[1].categories = ("robot",)
        document = json.loads(to_trace_events(traces, clock="virtual"))
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        kept_traces = {e["args"]["trace"] for e in xs}
        assert kept_traces == {"0:0", "0:1"}
        waits = [e for e in xs if e["name"] == "queue_wait"]
        assert all(e["dur"] == pytest.approx(5e5) for e in waits)

    def test_roundtrip_preserves_tree_structure(self):
        traces = _sample_traces()
        trees, clock = trace_trees_from_json(to_trace_events(traces))
        assert clock == "wall"
        assert [t.trace_id for t in trees] == [
            t.trace_id for t in traces
        ]
        for parsed, original in zip(trees, traces):
            assert [
                (s.name, s.span_id, s.parent_id) for s in parsed.spans
            ] == [
                (s.name, s.span_id, s.parent_id) for s in original.spans
            ]
            for a, b in zip(parsed.spans, original.spans):
                assert a.wall_duration == pytest.approx(
                    b.wall_duration, abs=1e-9
                )

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="schema"):
            trace_trees_from_json(json.dumps({"traceEvents": []}))


def _synthetic_profile_tree() -> SpanTree:
    spans = [
        Span("request", 0, None, 0.0, 0.0, wall_start=0.0, wall_end=1.0),
        Span("handle", 1, 0, 0.0, 0.0, wall_start=0.02, wall_end=0.98),
        Span("detection", 2, 1, 0.0, 0.0, wall_start=0.10, wall_end=0.70),
        Span("forward", 3, 1, 0.0, 0.0, wall_start=0.70, wall_end=0.90),
    ]
    return SpanTree(trace_id="0:0", lane=0, seq=0, spans=spans)


class TestProfile:
    def test_self_time_subtracts_direct_children(self):
        report = profile_stages([_synthetic_profile_tree()])
        stages = {s.name: s for s in report.stages}
        assert stages["request"].total == pytest.approx(1.0)
        assert stages["request"].self_total == pytest.approx(0.04)
        assert stages["handle"].self_total == pytest.approx(0.16)
        assert stages["detection"].self_total == pytest.approx(0.60)
        assert report.root_total == pytest.approx(1.0)
        assert report.attributed_fraction == pytest.approx(0.96)
        # Sorted by self time, descending.
        assert [s.name for s in report.stages] == [
            "detection", "forward", "handle", "request",
        ]

    def test_quantiles_nearest_rank(self):
        report = profile_stages(
            [_synthetic_profile_tree() for _ in range(4)]
        )
        stage = {s.name: s for s in report.stages}["detection"]
        assert stage.count == 4
        assert stage.quantile(0.5) == pytest.approx(0.6)
        assert stage.quantile(0.95) == pytest.approx(0.6)

    def test_render_lists_every_quantile_column(self):
        text = profile_stages([_synthetic_profile_tree()]).render()
        header = text.splitlines()[1]
        for column in ("stage", "count", "total", "self", "p50", "p95",
                       "p99", "share"):
            assert column in header
        assert "attributed to named stages: 96.0%" in text

    def test_render_limit_truncates_stages(self):
        text = profile_stages([_synthetic_profile_tree()]).render(limit=1)
        assert "detection" in text
        assert "forward" not in text

    def test_empty_report(self):
        report = profile_stages([])
        assert isinstance(report, ProfileReport)
        assert report.attributed_fraction == 1.0
        assert "0 traces" in report.render()

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="clock"):
            profile_stages([], clock="cpu")
