"""Tests for repro.obs.sockets: the serve instrument family."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.sockets import SERVE_STAGES, ServeMetrics


class TestServeMetrics:
    def test_instruments_live_in_wall_domain(self):
        metrics = ServeMetrics()
        metrics.connections.inc()
        metrics.observe_stage("handle", 0.01)
        metrics.note_request(200)
        metrics.note_parse_error(431)
        snapshot = metrics.snapshot()
        point = snapshot.get("repro_serve_connections_total")
        assert point is not None and point.value == 1
        assert point.wall
        assert snapshot.get(
            "repro_serve_requests_total", {"class": "2xx"}
        ).value == 1
        assert snapshot.get(
            "repro_serve_parse_errors_total", {"status": "431"}
        ).value == 1
        # The whole family vanishes from the deterministic domain.
        assert snapshot.deterministic().points == []

    def test_every_stage_has_a_histogram(self):
        metrics = ServeMetrics()
        for stage in SERVE_STAGES:
            metrics.observe_stage(stage, 0.001)
        points = metrics.snapshot().series("repro_serve_stage_seconds")
        assert {dict(p.labels)["stage"] for p in points} == set(SERVE_STAGES)
        assert all(p.count == 1 for p in points)

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError):
            ServeMetrics().observe_stage("teleport", 0.1)

    def test_status_class_counters_are_cached(self):
        metrics = ServeMetrics()
        metrics.note_request(200)
        metrics.note_request(204)
        metrics.note_request(404)
        snapshot = metrics.snapshot()
        assert snapshot.get(
            "repro_serve_requests_total", {"class": "2xx"}
        ).value == 2
        assert snapshot.get(
            "repro_serve_requests_total", {"class": "4xx"}
        ).value == 1
        assert snapshot.total("repro_serve_requests_total") == 3

    def test_shared_registry(self):
        registry = MetricsRegistry()
        metrics = ServeMetrics(registry)
        metrics.shed.inc()
        point = registry.snapshot().get("repro_serve_shed_total")
        assert point is not None and point.value == 1
