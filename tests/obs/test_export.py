"""Exporter round-trips: canonical JSON, Prometheus text, the table."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    render_table,
    snapshot_from_json,
    to_json,
    to_prometheus,
)
from repro.obs.flight import FlightFrame
from repro.obs.registry import MetricsRegistry, MetricsSnapshot


@pytest.fixture()
def populated():
    reg = MetricsRegistry()
    reg.counter("repro_requests_total", {"node": "node-000"}).inc(7)
    reg.gauge("repro_depth", {"lane": "0"}, wall=True, agg="max").set(12)
    h = reg.histogram("repro_wait_seconds", (0.5, 1.0, 2.0), {"lane": "0"})
    for value in (0.1, 0.7, 1.5, 9.0):
        h.observe(value)
    return reg.snapshot()


class TestJson:
    def test_round_trip_preserves_snapshot(self, populated):
        restored, flight = snapshot_from_json(to_json(populated))
        assert restored == populated
        assert flight == []

    def test_canonical_bytes_are_stable(self, populated):
        # Re-serializing a parsed document must reproduce the bytes —
        # the property that lets artifacts be diffed across runs.
        text = to_json(populated)
        restored, _ = snapshot_from_json(text)
        assert to_json(restored) == text

    def test_flight_frames_round_trip(self, populated):
        frames = [
            FlightFrame(tick=0.0, metrics=MetricsSnapshot()),
            FlightFrame(tick=600.0, metrics=populated),
        ]
        restored, flight = snapshot_from_json(
            to_json(populated, flight=frames)
        )
        assert restored == populated
        assert [f.tick for f in flight] == [0.0, 600.0]
        assert flight[1].metrics == populated

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            snapshot_from_json(json.dumps({"points": []}))

    def test_empty_snapshot(self):
        restored, flight = snapshot_from_json(to_json(MetricsSnapshot()))
        assert restored == MetricsSnapshot()
        assert flight == []


class TestPrometheus:
    def test_histogram_exposition(self, populated):
        text = to_prometheus(populated)
        assert "# TYPE repro_wait_seconds histogram" in text
        # Cumulative bucket counts: 1 (<=0.5), 2 (<=1), 3 (<=2), 4 (+Inf)
        assert 'repro_wait_seconds_bucket{lane="0",le="0.5"} 1' in text
        assert 'repro_wait_seconds_bucket{lane="0",le="1"} 2' in text
        assert 'repro_wait_seconds_bucket{lane="0",le="2"} 3' in text
        assert 'repro_wait_seconds_bucket{lane="0",le="+Inf"} 4' in text
        assert 'repro_wait_seconds_count{lane="0"} 4' in text

    def test_scalar_exposition_and_types(self, populated):
        text = to_prometheus(populated)
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{node="node-000"} 7' in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_depth{lane="0"} 12' in text

    def test_type_line_emitted_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("x_total", {"lane": "0"}).inc()
        reg.counter("x_total", {"lane": "1"}).inc()
        text = to_prometheus(reg.snapshot())
        assert text.count("# TYPE x_total counter") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", {"path": 'a"b\\c'}).inc()
        text = to_prometheus(reg.snapshot())
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsSnapshot()) == ""


class TestTable:
    def test_marks_domains_and_summarizes(self, populated):
        text = render_table(populated)
        assert "[det ] repro_requests_total" in text
        assert "[wall] repro_depth" in text
        assert "count=4" in text
        assert "p50<=" in text
