"""Unit tests for the repro.obs instrument and snapshot model."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.registry import (
    EVENT_SECONDS_BUCKETS,
    SIZE_BUCKETS,
    WALL_SECONDS_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)


class TestCounter:
    def test_inc_and_set(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", {"node": "a"})
        c.inc()
        c.inc(3)
        assert c.point().value == 4.0
        c.set(9)
        assert c.point().value == 9.0

    def test_same_key_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", {"node": "a"})
        b = reg.counter("hits_total", {"node": "a"})
        assert a is b
        assert reg.counter("hits_total", {"node": "b"}) is not a

    def test_label_insertion_order_is_canonicalized(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"b": "2", "a": "1"})
        b = reg.counter("x", {"a": "1", "b": "2"})
        assert a is b
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="not a gauge"):
            reg.gauge("x")


class TestGauge:
    def test_set_and_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", agg="max")
        g.set(4)
        g.set_max(2)
        assert g.point().value == 4.0
        g.set_max(7)
        assert g.point().value == 7.0

    @pytest.mark.parametrize(
        "agg,expected", [("sum", 9.0), ("max", 6.0), ("min", 3.0)]
    )
    def test_merge_honours_aggregation(self, agg, expected):
        a = MetricsRegistry().gauge("g", agg=agg)
        b = MetricsRegistry().gauge("g", agg=agg)
        a.set(3)
        b.set(6)
        assert a.point().merged(b.point()).value == expected


class TestHistogram:
    def test_bucket_edges_are_upper_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 2.0, 3.0, 100.0):
            h.observe(value)
        point = h.point()
        # counts: <=1, <=2, <=4, +Inf
        assert point.counts == (2, 1, 1, 1)
        assert point.count == 5
        assert point.sum == pytest.approx(106.5)

    def test_merge_adds_bucket_counts(self):
        a = MetricsRegistry().histogram("h", (1.0, 2.0))
        b = MetricsRegistry().histogram("h", (1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        merged = a.point().merged(b.point())
        assert merged.counts == (1, 1, 1)
        assert merged.count == 3
        assert merged.sum == pytest.approx(11.0)

    def test_merge_rejects_mismatched_layouts(self):
        a = MetricsRegistry().histogram("h", (1.0, 2.0))
        b = MetricsRegistry().histogram("h", (1.0, 4.0))
        with pytest.raises(ValueError, match="bucket layouts differ"):
            a.point().merged(b.point())

    def test_registry_rejects_relayout(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="buckets differ"):
            reg.histogram("h", (1.0, 4.0))

    @pytest.mark.parametrize(
        "buckets",
        [WALL_SECONDS_BUCKETS, EVENT_SECONDS_BUCKETS, SIZE_BUCKETS],
    )
    def test_stock_layouts_strictly_increasing(self, buckets):
        assert list(buckets) == sorted(set(buckets))


class TestSnapshot:
    def test_points_sorted_and_order_independent(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", {"x": "2"}).inc()
        reg.counter("a", {"x": "1"}).inc()
        snap = reg.snapshot()
        assert [p.key for p in snap.points] == sorted(
            p.key for p in snap.points
        )

    def test_deterministic_drops_wall_points(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc()
        reg.histogram("lat", (1.0,), wall=True).observe(0.5)
        det = reg.snapshot().deterministic()
        assert [p.name for p in det.points] == ["events_total"]

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        snap = reg.snapshot()
        c.inc(10)
        assert snap.get("x").value == 1.0

    def test_get_series_total(self):
        reg = MetricsRegistry()
        reg.counter("x", {"lane": "0"}).inc(2)
        reg.counter("x", {"lane": "1"}).inc(3)
        snap = reg.snapshot()
        assert snap.get("x", {"lane": "1"}).value == 3.0
        assert snap.get("x", {"lane": "9"}) is None
        assert len(snap.series("x")) == 2
        assert snap.total("x") == 5.0

    def test_merge_snapshots_union_and_reduce(self):
        a = MetricsRegistry()
        a.counter("shared").inc(1)
        a.counter("only_a").inc(5)
        b = MetricsRegistry()
        b.counter("shared").inc(2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.get("shared").value == 3.0
        assert merged.get("only_a").value == 5.0

    def test_merge_empty_iterable(self):
        assert merge_snapshots([]) == MetricsSnapshot()


class TestAbsorbAndPickle:
    def test_absorb_accumulates_into_live_instruments(self):
        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.histogram("h", (1.0, 2.0)).observe(0.5)
        child = MetricsRegistry()
        child.counter("c").inc(2)
        child.histogram("h", (1.0, 2.0)).observe(1.5)
        parent.absorb(child.snapshot())
        snap = parent.snapshot()
        assert snap.get("c").value == 3.0
        assert snap.get("h").counts == (1, 1, 0)

    def test_absorb_rejects_layout_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("h", (1.0,))
        child = MetricsRegistry()
        child.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            parent.absorb(child.snapshot())

    def test_registry_pickles_and_drops_listeners(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        reg.add_listener(lambda frame: None)
        assert reg.has_listeners
        clone = pickle.loads(pickle.dumps(reg))
        assert not clone.has_listeners
        assert clone.snapshot() == reg.snapshot()

    def test_pickle_preserves_shared_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        clone_reg, clone_c = pickle.loads(pickle.dumps((reg, c)))
        clone_c.inc(7)
        assert clone_reg.snapshot().get("c").value == 7.0


class TestSpans:
    def test_span_records_duration_and_count(self):
        reg = MetricsRegistry()
        with reg.span("parse"):
            pass
        snap = reg.snapshot()
        seconds = snap.get("repro_stage_seconds", {"stage": "parse"})
        total = snap.get("repro_stage_total", {"stage": "parse"})
        assert seconds.count == 1
        assert seconds.wall
        assert total.value == 1.0

    def test_timer_context_observes(self):
        reg = MetricsRegistry()
        with reg.timer("t_seconds"):
            pass
        point = reg.snapshot().get("t_seconds")
        assert point.count == 1
        assert point.wall
